//! Vendored raw-syscall networking for the flor query service.
//!
//! Provides exactly what the epoll event loop in `registry::server` needs —
//! nonblocking TCP/Unix listeners and connections, an epoll poller with
//! u64 tokens, and an eventfd waker for cross-thread wakeups — with zero
//! external dependencies: every syscall is issued via `std::arch::asm!`
//! following the `chkpt::mmap` precedent (no libc, no tokio).
//!
//! On platforms without the raw-syscall backend (anything that is not
//! Linux x86_64/aarch64) every constructor returns
//! [`std::io::ErrorKind::Unsupported`], and callers fall back to the
//! stdin serve mode. Check [`supported`] first.

#![warn(missing_docs)]

use std::fmt;
use std::io;
use std::net::Ipv4Addr;
use std::path::PathBuf;
use std::sync::Arc;

mod sys;

pub use sys::supported;

fn unsupported() -> io::Error {
    io::Error::new(
        io::ErrorKind::Unsupported,
        "flor-net: raw-syscall networking requires linux x86_64/aarch64",
    )
}

// ---- addresses ----------------------------------------------------------

/// A server or client address: TCP (IPv4) or a Unix-domain socket path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// IPv4 TCP endpoint. Port 0 asks the kernel for an ephemeral port;
    /// the bound [`Listener`] reports the resolved one.
    Tcp(Ipv4Addr, u16),
    /// Unix-domain stream socket at this filesystem path.
    Unix(PathBuf),
}

impl Endpoint {
    /// Parses `unix:<path>`, `tcp:<ip>:<port>`, or bare `<ip>:<port>`
    /// (`localhost` is accepted for `127.0.0.1`).
    pub fn parse(s: &str) -> io::Result<Endpoint> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "empty unix socket path",
                ));
            }
            return Ok(Endpoint::Unix(PathBuf::from(path)));
        }
        let s = s.strip_prefix("tcp:").unwrap_or(s);
        let (host, port) = s.rsplit_once(':').ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("bad endpoint {s:?}: expected ip:port or unix:path"),
            )
        })?;
        let ip: Ipv4Addr = if host == "localhost" {
            Ipv4Addr::LOCALHOST
        } else {
            host.parse().map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("bad IPv4 address {host:?}"),
                )
            })?
        };
        let port: u16 = port.parse().map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidInput, format!("bad port {port:?}"))
        })?;
        Ok(Endpoint::Tcp(ip, port))
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Tcp(ip, port) => write!(f, "tcp:{ip}:{port}"),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// Encodes a `sockaddr_in` (16 bytes, network byte order for port/addr).
fn sockaddr_in(ip: Ipv4Addr, port: u16) -> Vec<u8> {
    let mut sa = vec![0u8; 16];
    sa[0..2].copy_from_slice(&(sys::AF_INET as u16).to_ne_bytes());
    sa[2..4].copy_from_slice(&port.to_be_bytes());
    sa[4..8].copy_from_slice(&ip.octets());
    sa
}

/// Encodes a `sockaddr_un` for a pathname socket (family + NUL-terminated
/// path). Errors when the path exceeds the kernel's 107-byte limit.
#[cfg(unix)]
fn sockaddr_un(path: &std::path::Path) -> io::Result<Vec<u8>> {
    use std::os::unix::ffi::OsStrExt;
    let bytes = path.as_os_str().as_bytes();
    if bytes.is_empty() || bytes.len() > 107 || bytes.contains(&0) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("bad unix socket path {:?} (1..=107 bytes, no NUL)", path),
        ));
    }
    let mut sa = vec![0u8; 2 + bytes.len() + 1];
    sa[0..2].copy_from_slice(&(sys::AF_UNIX as u16).to_ne_bytes());
    sa[2..2 + bytes.len()].copy_from_slice(bytes);
    Ok(sa)
}

#[cfg(not(unix))]
fn sockaddr_un(_path: &std::path::Path) -> io::Result<Vec<u8>> {
    Err(unsupported())
}

/// NUL-terminated byte path for `unlinkat`.
#[cfg(unix)]
fn c_path(path: &std::path::Path) -> Vec<u8> {
    use std::os::unix::ffi::OsStrExt;
    let mut p = path.as_os_str().as_bytes().to_vec();
    p.push(0);
    p
}

#[cfg(not(unix))]
fn c_path(_path: &std::path::Path) -> Vec<u8> {
    vec![0]
}

// ---- fd ownership -------------------------------------------------------

/// Owned file descriptor, closed on drop.
#[derive(Debug)]
pub struct Fd(i32);

impl Fd {
    /// The raw descriptor number (still owned by this `Fd`).
    pub fn raw(&self) -> i32 {
        self.0
    }
}

impl Drop for Fd {
    fn drop(&mut self) {
        // Best-effort: nothing useful to do with a close error at drop.
        let _ = sys::check(sys::close(self.0));
    }
}

/// Disables Nagle on a TCP socket. A line protocol answers small
/// requests with small writes; leaving Nagle on serializes every
/// round-trip behind the peer's delayed-ACK timer (~40ms of idle per
/// exchange).
fn set_nodelay(fd: i32) -> io::Result<()> {
    sys::check(sys::setsockopt(
        fd,
        sys::IPPROTO_TCP,
        sys::TCP_NODELAY,
        &1u32,
    ))
    .map(|_| ())
}

fn retry_eintr(mut call: impl FnMut() -> isize) -> io::Result<usize> {
    loop {
        match sys::check(call()) {
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            other => return other,
        }
    }
}

// ---- connections --------------------------------------------------------

/// A nonblocking, connected stream socket owned by the event loop.
#[derive(Debug)]
pub struct Conn {
    fd: Fd,
}

impl Conn {
    /// The raw descriptor, for poller registration.
    pub fn raw_fd(&self) -> i32 {
        self.fd.raw()
    }

    /// Nonblocking read: `Ok(Some(0))` is EOF, `Ok(None)` means no data
    /// available right now (EAGAIN).
    pub fn try_read(&self, buf: &mut [u8]) -> io::Result<Option<usize>> {
        match retry_eintr(|| sys::read(self.fd.raw(), buf)) {
            Ok(n) => Ok(Some(n)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Nonblocking write: `Ok(None)` means the socket buffer is full
    /// (EAGAIN). Sends with `MSG_NOSIGNAL`, so a vanished peer surfaces
    /// as `EPIPE`/`ECONNRESET`, never a signal.
    pub fn try_write(&self, buf: &[u8]) -> io::Result<Option<usize>> {
        match retry_eintr(|| sys::sendto_nosignal(self.fd.raw(), buf)) {
            Ok(n) => Ok(Some(n)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Shrinks the kernel send buffer (`SO_SNDBUF`). Makes a slow peer
    /// hit `EAGAIN` after `bytes` instead of after the default megabytes
    /// of kernel buffering — the knob that lets userspace backpressure
    /// (and its tests) observe a lagging reader promptly. The kernel
    /// clamps to its own floor and doubles the value for bookkeeping.
    pub fn set_send_buffer(&self, bytes: u32) -> io::Result<()> {
        sys::check(sys::setsockopt(
            self.fd.raw(),
            sys::SOL_SOCKET,
            sys::SO_SNDBUF,
            &bytes,
        ))
        .map(|_| ())
    }
}

/// A blocking client-side connection; implements [`io::Read`] and
/// [`io::Write`] so it composes with `BufReader`/`BufWriter`.
#[derive(Debug)]
pub struct ClientConn {
    fd: Fd,
}

impl ClientConn {
    /// Connects (blocking) to a server endpoint.
    pub fn connect(endpoint: &Endpoint) -> io::Result<ClientConn> {
        if !supported() {
            return Err(unsupported());
        }
        let (domain, sa) = match endpoint {
            Endpoint::Tcp(ip, port) => (sys::AF_INET, sockaddr_in(*ip, *port)),
            Endpoint::Unix(path) => (sys::AF_UNIX, sockaddr_un(path)?),
        };
        let fd =
            Fd(sys::check(sys::socket(domain, sys::SOCK_STREAM | sys::SOCK_CLOEXEC, 0))? as i32);
        sys::check(sys::connect(fd.raw(), &sa))?;
        if matches!(endpoint, Endpoint::Tcp(..)) {
            set_nodelay(fd.raw())?;
        }
        Ok(ClientConn { fd })
    }

    /// Half-closes the write side, signalling EOF to the server while
    /// keeping the read side open for remaining streamed lines.
    pub fn shutdown_write(&self) -> io::Result<()> {
        sys::check(sys::shutdown(self.fd.raw(), sys::SHUT_WR)).map(|_| ())
    }
}

impl io::Read for ClientConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        retry_eintr(|| sys::read(self.fd.raw(), buf))
    }
}

impl io::Write for ClientConn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        retry_eintr(|| sys::sendto_nosignal(self.fd.raw(), buf))
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl io::Read for &ClientConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        retry_eintr(|| sys::read(self.fd.raw(), buf))
    }
}

impl io::Write for &ClientConn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        retry_eintr(|| sys::sendto_nosignal(self.fd.raw(), buf))
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

// ---- listener -----------------------------------------------------------

/// A nonblocking listening socket (TCP or Unix). Unix sockets unlink
/// their path on drop.
#[derive(Debug)]
pub struct Listener {
    fd: Fd,
    local: Endpoint,
}

impl Listener {
    /// Binds and listens. TCP listeners set `SO_REUSEADDR`; Unix
    /// listeners unlink a stale socket file first. Bind to port 0 and
    /// read [`Listener::local_endpoint`] for the kernel-chosen port.
    pub fn bind(endpoint: &Endpoint) -> io::Result<Listener> {
        if !supported() {
            return Err(unsupported());
        }
        let (domain, sa) = match endpoint {
            Endpoint::Tcp(ip, port) => (sys::AF_INET, sockaddr_in(*ip, *port)),
            Endpoint::Unix(path) => {
                // A previous server instance may have left the socket
                // file behind; bind() would fail with EADDRINUSE.
                let _ = sys::check(sys::unlinkat(&c_path(path)));
                (sys::AF_UNIX, sockaddr_un(path)?)
            }
        };
        let fd = Fd(sys::check(sys::socket(
            domain,
            sys::SOCK_STREAM | sys::SOCK_NONBLOCK | sys::SOCK_CLOEXEC,
            0,
        ))? as i32);
        if domain == sys::AF_INET {
            sys::check(sys::setsockopt(
                fd.raw(),
                sys::SOL_SOCKET,
                sys::SO_REUSEADDR,
                &1u32,
            ))?;
        }
        sys::check(sys::bind(fd.raw(), &sa))?;
        sys::check(sys::listen(fd.raw(), 128))?;
        let local = match endpoint {
            Endpoint::Unix(path) => Endpoint::Unix(path.clone()),
            Endpoint::Tcp(ip, _) => {
                let mut buf = [0u8; 16];
                let mut len = buf.len() as u32;
                sys::check(sys::getsockname(fd.raw(), &mut buf, &mut len))?;
                let port = u16::from_be_bytes([buf[2], buf[3]]);
                Endpoint::Tcp(*ip, port)
            }
        };
        Ok(Listener { fd, local })
    }

    /// The bound address, with any ephemeral TCP port resolved.
    pub fn local_endpoint(&self) -> &Endpoint {
        &self.local
    }

    /// The raw descriptor, for poller registration.
    pub fn raw_fd(&self) -> i32 {
        self.fd.raw()
    }

    /// Accepts one pending connection (already nonblocking + cloexec);
    /// `Ok(None)` when the accept queue is empty.
    pub fn accept(&self) -> io::Result<Option<Conn>> {
        match retry_eintr(|| sys::accept4(self.fd.raw(), sys::SOCK_NONBLOCK | sys::SOCK_CLOEXEC)) {
            Ok(fd) => {
                let conn = Conn { fd: Fd(fd as i32) };
                if matches!(self.local, Endpoint::Tcp(..)) {
                    set_nodelay(conn.raw_fd())?;
                }
                Ok(Some(conn))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Endpoint::Unix(path) = &self.local {
            let _ = sys::check(sys::unlinkat(&c_path(path)));
        }
    }
}

// ---- poller -------------------------------------------------------------

/// One readiness record from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// Data (or a pending accept) is readable.
    pub readable: bool,
    /// The socket buffer drained below capacity; writes may proceed.
    pub writable: bool,
    /// Peer hung up or the descriptor errored; the connection is dead.
    pub hangup: bool,
}

/// Level-triggered epoll instance. Registrations start out watching for
/// input and peer hangup; write interest is toggled on only while a
/// connection has buffered output, and read interest is toggled off once
/// the peer half-closes (the standard level-triggered discipline — a
/// permanently-writable socket or a permanently-readable EOF would
/// otherwise busy-loop the poller).
#[derive(Debug)]
pub struct Poller {
    epfd: Fd,
}

impl Poller {
    /// Creates an epoll instance.
    pub fn new() -> io::Result<Poller> {
        if !supported() {
            return Err(unsupported());
        }
        let epfd = sys::check(sys::epoll_create1(sys::EFD_CLOEXEC))? as i32;
        Ok(Poller { epfd: Fd(epfd) })
    }

    fn interest(want_read: bool, want_write: bool) -> u32 {
        let mut ev = 0;
        if want_read {
            ev |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if want_write {
            ev |= sys::EPOLLOUT;
        }
        ev
    }

    /// Registers `fd` under `token`, watching for input and peer hangup
    /// (plus writability when `want_write`).
    pub fn add(&self, fd: i32, token: u64, want_write: bool) -> io::Result<()> {
        let ev = sys::EpollEvent {
            events: Self::interest(true, want_write),
            data: token,
        };
        sys::check(sys::epoll_ctl(
            self.epfd.raw(),
            sys::EPOLL_CTL_ADD,
            fd,
            Some(&ev),
        ))
        .map(|_| ())
    }

    /// Toggles write interest for an already-registered descriptor
    /// (read/hangup interest stays on).
    pub fn set_write_interest(&self, fd: i32, token: u64, want_write: bool) -> io::Result<()> {
        self.set_interest(fd, token, true, want_write)
    }

    /// Replaces both interests for an already-registered descriptor.
    /// Dropping read interest also drops `EPOLLRDHUP`: under level
    /// triggering a half-closed peer keeps both conditions asserted
    /// forever, so a connection that has seen EOF must stop watching them
    /// or every `wait` returns immediately. `EPOLLHUP`/`EPOLLERR` are
    /// still reported (the kernel always delivers those), so a fully
    /// closed or errored peer is not missed.
    pub fn set_interest(
        &self,
        fd: i32,
        token: u64,
        want_read: bool,
        want_write: bool,
    ) -> io::Result<()> {
        let ev = sys::EpollEvent {
            events: Self::interest(want_read, want_write),
            data: token,
        };
        sys::check(sys::epoll_ctl(
            self.epfd.raw(),
            sys::EPOLL_CTL_MOD,
            fd,
            Some(&ev),
        ))
        .map(|_| ())
    }

    /// Deregisters a descriptor (call before closing it).
    pub fn remove(&self, fd: i32) -> io::Result<()> {
        sys::check(sys::epoll_ctl(
            self.epfd.raw(),
            sys::EPOLL_CTL_DEL,
            fd,
            None,
        ))
        .map(|_| ())
    }

    /// Blocks up to `timeout_ms` (`-1` = forever) and appends ready
    /// events to `out` (cleared first). A signal interruption returns
    /// normally with zero events.
    pub fn wait(&self, out: &mut Vec<PollEvent>, timeout_ms: i32) -> io::Result<()> {
        out.clear();
        let mut events = [sys::EpollEvent::default(); 64];
        let n = match sys::check(sys::epoll_pwait(self.epfd.raw(), &mut events, timeout_ms)) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        for ev in events.iter().take(n) {
            // Copy out of the (packed on x86_64) struct before use.
            let bits = ev.events;
            let token = ev.data;
            out.push(PollEvent {
                token,
                readable: bits & sys::EPOLLIN != 0,
                writable: bits & sys::EPOLLOUT != 0,
                hangup: bits & (sys::EPOLLHUP | sys::EPOLLERR | sys::EPOLLRDHUP) != 0,
            });
        }
        Ok(())
    }
}

// ---- waker --------------------------------------------------------------

/// Cross-thread wakeup for a [`Poller`], backed by a nonblocking eventfd.
/// Clone freely; all clones share one descriptor. Register
/// [`Waker::raw_fd`] with the poller and call [`Waker::drain`] when its
/// token fires.
#[derive(Debug, Clone)]
pub struct Waker {
    fd: Arc<Fd>,
}

impl Waker {
    /// Creates the eventfd.
    pub fn new() -> io::Result<Waker> {
        if !supported() {
            return Err(unsupported());
        }
        let fd = sys::check(sys::eventfd2(0, sys::EFD_NONBLOCK | sys::EFD_CLOEXEC))? as i32;
        Ok(Waker {
            fd: Arc::new(Fd(fd)),
        })
    }

    /// The descriptor to register with the poller (read interest only).
    pub fn raw_fd(&self) -> i32 {
        self.fd.raw()
    }

    /// Makes the poller's next (or current) wait return. Safe from any
    /// thread; coalesces with pending wakes.
    pub fn wake(&self) {
        // An eventfd with a pending count is still writable; EAGAIN can
        // only mean the counter is near u64::MAX, which still wakes.
        let _ = retry_eintr(|| sys::write(self.fd.raw(), &1u64.to_ne_bytes()));
    }

    /// Clears pending wakes so level-triggered polling stops reporting
    /// the eventfd readable.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = retry_eintr(|| sys::read(self.fd.raw(), &mut buf));
    }
}

// ---- tests --------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn endpoint_parse_and_display() {
        assert_eq!(
            Endpoint::parse("127.0.0.1:7070").unwrap(),
            Endpoint::Tcp(Ipv4Addr::LOCALHOST, 7070)
        );
        assert_eq!(
            Endpoint::parse("tcp:localhost:0").unwrap(),
            Endpoint::Tcp(Ipv4Addr::LOCALHOST, 0)
        );
        assert_eq!(
            Endpoint::parse("unix:/tmp/flor.sock").unwrap(),
            Endpoint::Unix(PathBuf::from("/tmp/flor.sock"))
        );
        assert_eq!(
            Endpoint::parse("tcp:10.0.0.2:443").unwrap().to_string(),
            "tcp:10.0.0.2:443"
        );
        assert!(Endpoint::parse("nonsense").is_err());
        assert!(Endpoint::parse("nota.nip:80").is_err());
        assert!(Endpoint::parse("127.0.0.1:notaport").is_err());
        assert!(Endpoint::parse("unix:").is_err());
    }

    #[test]
    fn unsupported_is_reported_cleanly() {
        if supported() {
            return;
        }
        for err in [
            Poller::new().unwrap_err(),
            Waker::new().unwrap_err(),
            Listener::bind(&Endpoint::Tcp(Ipv4Addr::LOCALHOST, 0)).unwrap_err(),
        ] {
            assert_eq!(err.kind(), io::ErrorKind::Unsupported);
        }
    }

    /// Poller-driven echo server for one client; exercises accept, read,
    /// write-interest toggling, and hangup detection end to end.
    fn echo_roundtrip(endpoint: &Endpoint) {
        let listener = Listener::bind(endpoint).unwrap();
        let server_ep = listener.local_endpoint().clone();
        let client = std::thread::spawn(move || {
            let mut conn = ClientConn::connect(&server_ep).unwrap();
            conn.write_all(b"hello flor\n").unwrap();
            conn.shutdown_write().unwrap();
            let mut reply = String::new();
            conn.read_to_string(&mut reply).unwrap();
            reply
        });

        let poller = Poller::new().unwrap();
        poller.add(listener.raw_fd(), 1, false).unwrap();
        let mut events = Vec::new();
        let mut conn: Option<Conn> = None;
        let mut pending: Vec<u8> = Vec::new();
        let mut seen_eof = false;
        // Deadline measured in poll iterations, not wall time (200×50ms).
        for _ in 0..200 {
            poller.wait(&mut events, 50).unwrap();
            for ev in events.clone() {
                if ev.token == 1 {
                    if let Some(c) = listener.accept().unwrap() {
                        poller.add(c.raw_fd(), 2, false).unwrap();
                        conn = Some(c);
                    }
                } else if ev.token == 2 {
                    let c = conn.as_ref().unwrap();
                    if ev.readable || ev.hangup {
                        let mut buf = [0u8; 4096];
                        while let Some(n) = c.try_read(&mut buf).unwrap() {
                            if n == 0 {
                                seen_eof = true;
                                break;
                            }
                            pending.extend_from_slice(&buf[..n]);
                            poller.set_write_interest(c.raw_fd(), 2, true).unwrap();
                        }
                    }
                    if !pending.is_empty() {
                        if let Some(n) = c.try_write(&pending).unwrap() {
                            pending.drain(..n);
                        }
                        if pending.is_empty() {
                            poller.set_write_interest(c.raw_fd(), 2, false).unwrap();
                        }
                    }
                }
            }
            if seen_eof && pending.is_empty() {
                break;
            }
        }
        assert!(seen_eof, "server never saw client EOF");
        // Drop the connection to send EOF back to the client.
        if let Some(c) = conn.take() {
            poller.remove(c.raw_fd()).unwrap();
        }
        assert_eq!(client.join().unwrap(), "hello flor\n");
    }

    #[test]
    fn tcp_echo() {
        if !supported() {
            return;
        }
        echo_roundtrip(&Endpoint::Tcp(Ipv4Addr::LOCALHOST, 0));
    }

    /// A half-closed peer keeps `EPOLLIN|EPOLLRDHUP` asserted forever
    /// under level triggering; dropping read interest via `set_interest`
    /// must silence it so an event loop can idle while it finishes
    /// streaming to the still-open write side.
    #[test]
    fn set_interest_silences_a_half_closed_peer() {
        if !supported() {
            return;
        }
        let listener = Listener::bind(&Endpoint::Tcp(Ipv4Addr::LOCALHOST, 0)).unwrap();
        let client = ClientConn::connect(listener.local_endpoint()).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(listener.raw_fd(), 1, false).unwrap();
        let mut events = Vec::new();
        let mut conn = None;
        for _ in 0..200 {
            poller.wait(&mut events, 50).unwrap();
            if let Some(c) = listener.accept().unwrap() {
                conn = Some(c);
                break;
            }
        }
        let conn = conn.expect("client never accepted");
        poller.add(conn.raw_fd(), 2, false).unwrap();
        client.shutdown_write().unwrap();

        // The EOF becomes visible as a read-ready event…
        let mut saw_eof = false;
        for _ in 0..200 {
            poller.wait(&mut events, 50).unwrap();
            if events.iter().any(|e| e.token == 2) {
                let mut buf = [0u8; 16];
                assert_eq!(conn.try_read(&mut buf).unwrap(), Some(0));
                saw_eof = true;
                break;
            }
        }
        assert!(saw_eof, "poller never reported the half-close");
        // …and stays asserted: a zero-timeout wait still reports the fd.
        poller.wait(&mut events, 0).unwrap();
        assert!(events.iter().any(|e| e.token == 2), "{events:?}");

        // Dropping read interest silences it (EPOLLHUP/ERR would still
        // report a full close).
        poller.set_interest(conn.raw_fd(), 2, false, false).unwrap();
        poller.wait(&mut events, 100).unwrap();
        assert!(events.iter().all(|e| e.token != 2), "{events:?}");
        drop(client);
    }

    #[test]
    fn unix_echo_and_stale_socket_cleanup() {
        if !supported() {
            return;
        }
        let path = std::env::temp_dir().join(format!("flor-net-test-{}.sock", std::process::id()));
        let ep = Endpoint::Unix(path.clone());
        echo_roundtrip(&ep);
        // Re-bind over the leftover socket file to prove stale cleanup.
        echo_roundtrip(&ep);
        drop(ep);
        assert!(!path.exists(), "listener drop should unlink {path:?}");
    }

    #[test]
    fn waker_crosses_threads() {
        if !supported() {
            return;
        }
        let poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.add(waker.raw_fd(), 0, false).unwrap();
        let w2 = waker.clone();
        let t = std::thread::spawn(move || w2.wake());
        let mut events = Vec::new();
        poller.wait(&mut events, 5000).unwrap();
        t.join().unwrap();
        assert!(events.iter().any(|e| e.token == 0 && e.readable));
        waker.drain();
        // Drained: an immediate poll reports nothing.
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty());
    }
}
