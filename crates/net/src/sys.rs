//! Raw Linux syscalls for the event loop, issued via `std::arch::asm!`.
//!
//! The workspace vendors every dependency (no libc, no tokio), so the
//! socket/epoll/eventfd calls follow the `chkpt::mmap` precedent: the
//! syscall instruction is emitted directly on Linux x86_64/aarch64, and
//! every function returns a negated errno in `[-4095, -1]` on failure.
//! On other platforms each wrapper reports `Unsupported`, and the
//! higher-level server falls back to the stdin serve mode.

use std::io;

/// True when this build has a raw-syscall network backend.
pub fn supported() -> bool {
    cfg!(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))
}

/// Converts a raw syscall return into `io::Result<usize>` (negated-errno
/// convention, like `chkpt::mmap`).
pub(crate) fn check(ret: isize) -> io::Result<usize> {
    if (-4095..0).contains(&ret) {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

// ---- constants (Linux ABI, identical on x86_64 and aarch64) -------------

pub(crate) const AF_UNIX: usize = 1;
pub(crate) const AF_INET: usize = 2;
pub(crate) const SOCK_STREAM: usize = 1;
pub(crate) const SOCK_NONBLOCK: usize = 0o4000;
pub(crate) const SOCK_CLOEXEC: usize = 0o2000000;
pub(crate) const SOL_SOCKET: usize = 1;
pub(crate) const SO_REUSEADDR: usize = 2;
pub(crate) const SO_SNDBUF: usize = 7;
pub(crate) const IPPROTO_TCP: usize = 6;
pub(crate) const TCP_NODELAY: usize = 1;
pub(crate) const MSG_NOSIGNAL: usize = 0x4000;
pub(crate) const SHUT_WR: usize = 1;

pub(crate) const EPOLL_CTL_ADD: usize = 1;
pub(crate) const EPOLL_CTL_DEL: usize = 2;
pub(crate) const EPOLL_CTL_MOD: usize = 3;
pub(crate) const EPOLLIN: u32 = 0x001;
pub(crate) const EPOLLOUT: u32 = 0x004;
pub(crate) const EPOLLERR: u32 = 0x008;
pub(crate) const EPOLLHUP: u32 = 0x010;
pub(crate) const EPOLLRDHUP: u32 = 0x2000;

pub(crate) const EFD_NONBLOCK: usize = 0o4000;
pub(crate) const EFD_CLOEXEC: usize = 0o2000000;
pub(crate) const AT_FDCWD: isize = -100;

/// One epoll readiness record. The kernel packs this struct on x86_64
/// (12 bytes) and uses natural alignment elsewhere (16 bytes) — the cfg
/// mirrors the kernel's `EPOLL_PACKED` attribute exactly.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

/// See the x86_64 variant: unpacked layout on every other architecture.
#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    /// Per-architecture syscall numbers (asm-generic table on aarch64).
    #[cfg(target_arch = "x86_64")]
    pub(super) mod nr {
        pub const READ: usize = 0;
        pub const WRITE: usize = 1;
        pub const CLOSE: usize = 3;
        pub const SOCKET: usize = 41;
        pub const CONNECT: usize = 42;
        pub const SENDTO: usize = 44;
        pub const SHUTDOWN: usize = 48;
        pub const BIND: usize = 49;
        pub const LISTEN: usize = 50;
        pub const GETSOCKNAME: usize = 51;
        pub const SETSOCKOPT: usize = 54;
        pub const UNLINKAT: usize = 263;
        pub const EPOLL_PWAIT: usize = 281;
        pub const EPOLL_CTL: usize = 233;
        pub const ACCEPT4: usize = 288;
        pub const EVENTFD2: usize = 290;
        pub const EPOLL_CREATE1: usize = 291;
    }
    #[cfg(target_arch = "aarch64")]
    pub(super) mod nr {
        pub const READ: usize = 63;
        pub const WRITE: usize = 64;
        pub const CLOSE: usize = 57;
        pub const SOCKET: usize = 198;
        pub const CONNECT: usize = 203;
        pub const SENDTO: usize = 206;
        pub const SHUTDOWN: usize = 210;
        pub const BIND: usize = 200;
        pub const LISTEN: usize = 201;
        pub const GETSOCKNAME: usize = 204;
        pub const SETSOCKOPT: usize = 208;
        pub const UNLINKAT: usize = 35;
        pub const EPOLL_PWAIT: usize = 22;
        pub const EPOLL_CTL: usize = 21;
        pub const ACCEPT4: usize = 242;
        pub const EVENTFD2: usize = 19;
        pub const EPOLL_CREATE1: usize = 20;
    }

    /// Issues a 6-argument syscall; unused arguments pass 0. Returns the
    /// raw kernel return (negated errno in `[-4095, -1]` on failure).
    ///
    /// # Safety
    /// The caller must uphold the specific syscall's contract for every
    /// pointer/length argument.
    pub(super) unsafe fn syscall6(
        n: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        #[cfg(target_arch = "x86_64")]
        std::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        #[cfg(target_arch = "aarch64")]
        std::arch::asm!(
            "svc #0",
            inlateout("x0") a => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            in("x5") f,
            in("x8") n,
            options(nostack)
        );
        ret
    }
}

// ---- wrappers (Linux) ---------------------------------------------------
//
// Each wrapper is a thin, safe-shaped veneer: pointers come from slices or
// stack buffers owned by the caller for the duration of the call, so the
// only unsafety is the syscall instruction itself.

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod calls {
    use super::imp::{nr, syscall6};
    use super::EpollEvent;

    pub(crate) fn socket(domain: usize, ty: usize, protocol: usize) -> isize {
        // SAFETY: no pointer arguments.
        unsafe { syscall6(nr::SOCKET, domain, ty, protocol, 0, 0, 0) }
    }

    pub(crate) fn bind(fd: i32, addr: &[u8]) -> isize {
        // SAFETY: `addr` outlives the call; the kernel copies it.
        unsafe {
            syscall6(
                nr::BIND,
                fd as usize,
                addr.as_ptr() as usize,
                addr.len(),
                0,
                0,
                0,
            )
        }
    }

    pub(crate) fn listen(fd: i32, backlog: usize) -> isize {
        // SAFETY: no pointer arguments.
        unsafe { syscall6(nr::LISTEN, fd as usize, backlog, 0, 0, 0, 0) }
    }

    pub(crate) fn accept4(fd: i32, flags: usize) -> isize {
        // SAFETY: NULL addr/addrlen — peer address not requested.
        unsafe { syscall6(nr::ACCEPT4, fd as usize, 0, 0, flags, 0, 0) }
    }

    pub(crate) fn connect(fd: i32, addr: &[u8]) -> isize {
        // SAFETY: `addr` outlives the call; the kernel copies it.
        unsafe {
            syscall6(
                nr::CONNECT,
                fd as usize,
                addr.as_ptr() as usize,
                addr.len(),
                0,
                0,
                0,
            )
        }
    }

    pub(crate) fn getsockname(fd: i32, addr: &mut [u8], len: &mut u32) -> isize {
        // SAFETY: `addr`/`len` are caller-owned for the call's duration.
        unsafe {
            syscall6(
                nr::GETSOCKNAME,
                fd as usize,
                addr.as_mut_ptr() as usize,
                len as *mut u32 as usize,
                0,
                0,
                0,
            )
        }
    }

    pub(crate) fn setsockopt(fd: i32, level: usize, opt: usize, val: &u32) -> isize {
        // SAFETY: `val` outlives the call; the kernel copies 4 bytes.
        unsafe {
            syscall6(
                nr::SETSOCKOPT,
                fd as usize,
                level,
                opt,
                val as *const u32 as usize,
                4,
                0,
            )
        }
    }

    pub(crate) fn read(fd: i32, buf: &mut [u8]) -> isize {
        // SAFETY: `buf` is valid writable memory of `buf.len()` bytes.
        unsafe {
            syscall6(
                nr::READ,
                fd as usize,
                buf.as_mut_ptr() as usize,
                buf.len(),
                0,
                0,
                0,
            )
        }
    }

    pub(crate) fn write(fd: i32, buf: &[u8]) -> isize {
        // SAFETY: `buf` is valid readable memory of `buf.len()` bytes.
        unsafe {
            syscall6(
                nr::WRITE,
                fd as usize,
                buf.as_ptr() as usize,
                buf.len(),
                0,
                0,
                0,
            )
        }
    }

    pub(crate) fn sendto_nosignal(fd: i32, buf: &[u8]) -> isize {
        // SAFETY: `buf` is valid readable memory; NULL destination (the
        // socket is connected). MSG_NOSIGNAL turns peer-gone SIGPIPE into
        // an EPIPE return the caller handles.
        unsafe {
            syscall6(
                nr::SENDTO,
                fd as usize,
                buf.as_ptr() as usize,
                buf.len(),
                super::MSG_NOSIGNAL,
                0,
                0,
            )
        }
    }

    pub(crate) fn shutdown(fd: i32, how: usize) -> isize {
        // SAFETY: no pointer arguments.
        unsafe { syscall6(nr::SHUTDOWN, fd as usize, how, 0, 0, 0, 0) }
    }

    pub(crate) fn close(fd: i32) -> isize {
        // SAFETY: the caller owns `fd` and never reuses it after this.
        unsafe { syscall6(nr::CLOSE, fd as usize, 0, 0, 0, 0, 0) }
    }

    pub(crate) fn epoll_create1(flags: usize) -> isize {
        // SAFETY: no pointer arguments.
        unsafe { syscall6(nr::EPOLL_CREATE1, flags, 0, 0, 0, 0, 0) }
    }

    pub(crate) fn epoll_ctl(epfd: i32, op: usize, fd: i32, ev: Option<&EpollEvent>) -> isize {
        let ptr = ev.map(|e| e as *const EpollEvent as usize).unwrap_or(0);
        // SAFETY: `ev` (when present) outlives the call.
        unsafe { syscall6(nr::EPOLL_CTL, epfd as usize, op, fd as usize, ptr, 0, 0) }
    }

    pub(crate) fn epoll_pwait(epfd: i32, events: &mut [EpollEvent], timeout_ms: i32) -> isize {
        // SAFETY: `events` is caller-owned writable memory; NULL sigmask
        // (epoll_pwait with a null mask behaves exactly like epoll_wait —
        // aarch64 has no plain epoll_wait syscall).
        unsafe {
            syscall6(
                nr::EPOLL_PWAIT,
                epfd as usize,
                events.as_mut_ptr() as usize,
                events.len(),
                timeout_ms as isize as usize,
                0,
                0,
            )
        }
    }

    pub(crate) fn eventfd2(initval: usize, flags: usize) -> isize {
        // SAFETY: no pointer arguments.
        unsafe { syscall6(nr::EVENTFD2, initval, flags, 0, 0, 0, 0) }
    }

    pub(crate) fn unlinkat(path: &[u8]) -> isize {
        debug_assert_eq!(path.last(), Some(&0), "path must be NUL-terminated");
        // SAFETY: `path` is a NUL-terminated byte string owned by the
        // caller for the call's duration; AT_FDCWD resolves it like unlink.
        unsafe {
            syscall6(
                nr::UNLINKAT,
                super::AT_FDCWD as usize,
                path.as_ptr() as usize,
                0,
                0,
                0,
                0,
            )
        }
    }
}

// ---- wrappers (everywhere else): always `Unsupported` -------------------

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod calls {
    use super::EpollEvent;

    /// `-ENOSYS`: flows through [`super::check`] as an error, which the
    /// high-level constructors rewrite into `ErrorKind::Unsupported`.
    const UNSUPPORTED: isize = -38;

    pub(crate) fn socket(_: usize, _: usize, _: usize) -> isize {
        UNSUPPORTED
    }
    pub(crate) fn bind(_: i32, _: &[u8]) -> isize {
        UNSUPPORTED
    }
    pub(crate) fn listen(_: i32, _: usize) -> isize {
        UNSUPPORTED
    }
    pub(crate) fn accept4(_: i32, _: usize) -> isize {
        UNSUPPORTED
    }
    pub(crate) fn connect(_: i32, _: &[u8]) -> isize {
        UNSUPPORTED
    }
    pub(crate) fn getsockname(_: i32, _: &mut [u8], _: &mut u32) -> isize {
        UNSUPPORTED
    }
    pub(crate) fn setsockopt(_: i32, _: usize, _: usize, _: &u32) -> isize {
        UNSUPPORTED
    }
    pub(crate) fn read(_: i32, _: &mut [u8]) -> isize {
        UNSUPPORTED
    }
    pub(crate) fn write(_: i32, _: &[u8]) -> isize {
        UNSUPPORTED
    }
    pub(crate) fn sendto_nosignal(_: i32, _: &[u8]) -> isize {
        UNSUPPORTED
    }
    pub(crate) fn shutdown(_: i32, _: usize) -> isize {
        UNSUPPORTED
    }
    pub(crate) fn close(_: i32) -> isize {
        UNSUPPORTED
    }
    pub(crate) fn epoll_create1(_: usize) -> isize {
        UNSUPPORTED
    }
    pub(crate) fn epoll_ctl(_: i32, _: usize, _: i32, _: Option<&EpollEvent>) -> isize {
        UNSUPPORTED
    }
    pub(crate) fn epoll_pwait(_: i32, _: &mut [EpollEvent], _: i32) -> isize {
        UNSUPPORTED
    }
    pub(crate) fn eventfd2(_: usize, _: usize) -> isize {
        UNSUPPORTED
    }
    pub(crate) fn unlinkat(_: &[u8]) -> isize {
        UNSUPPORTED
    }
}

pub(crate) use calls::*;
