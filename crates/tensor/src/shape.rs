//! Tensor shapes: dimension lists with row-major stride math.

use std::fmt;

/// The dimensions of a [`crate::Tensor`], outermost first.
///
/// A scalar has an empty dimension list. Shapes are cheap to clone (they are
/// rarely more than 4 elements) and compare by value.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a dimension list.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape(dims.into())
    }

    /// Returns the dimension list.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions (rank). Scalars have rank 0.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements. The empty (scalar) shape has one element.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Size of dimension `d`.
    ///
    /// # Panics
    /// Panics if `d >= rank()`.
    pub fn dim(&self, d: usize) -> usize {
        self.0[d]
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-dimensional index.
    ///
    /// # Panics
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.0.len(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.0.len()
        );
        let mut off = 0;
        let mut stride = 1;
        for d in (0..self.0.len()).rev() {
            assert!(
                index[d] < self.0[d],
                "index {} out of bounds for dim {} of size {}",
                index[d],
                d,
                self.0[d]
            );
            off += index[d] * stride;
            stride *= self.0[d];
        }
        off
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape() {
        let s = Shape::new(Vec::new());
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.offset(&[]), 0);
    }

    #[test]
    fn numel_and_strides() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_row_major() {
        let s = Shape::from([2, 3]);
        assert_eq!(s.offset(&[0, 0]), 0);
        assert_eq!(s.offset(&[0, 2]), 2);
        assert_eq!(s.offset(&[1, 0]), 3);
        assert_eq!(s.offset(&[1, 2]), 5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_out_of_bounds_panics() {
        Shape::from([2, 3]).offset(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn offset_rank_mismatch_panics() {
        Shape::from([2, 3]).offset(&[1]);
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::from([2, 3]).to_string(), "(2, 3)");
        assert_eq!(Shape::new(Vec::new()).to_string(), "()");
    }
}
