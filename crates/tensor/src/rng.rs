//! Deterministic, serializable pseudo-random number generation.
//!
//! Replay in Flor must reproduce the recorded execution exactly: the deferred
//! correctness checks (paper §5.2.2) compare record and replay logs and treat
//! any divergence as an anomaly. That requires every source of randomness in a
//! training script — parameter init, data shuffling, synthetic noise — to be
//! (a) seeded, and (b) *checkpointable*, so a replay worker that jumps into
//! epoch `k` can restore the exact generator state the recorded run had at the
//! start of epoch `k`.
//!
//! [`Pcg64`] is a PCG-XSH-RR 64/32 generator ("pcg32" in O'Neill's naming;
//! 64-bit state, 32-bit output) extended with convenience samplers. Its entire
//! state is two `u64` words, exposed via [`Pcg64::state`] and
//! [`Pcg64::restore`].

/// A small, fast, deterministic PRNG with fully exposed state.
///
/// This is the PCG-XSH-RR generator (64-bit LCG state, 32-bit xorshift-rotate
/// output). It is *not* cryptographically secure; it exists to make training
/// runs reproducible and replayable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg64 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl Pcg64 {
    /// Creates a generator from a seed and stream id.
    ///
    /// Different `stream` values yield statistically independent sequences for
    /// the same seed, which lets e.g. the data loader and the weight
    /// initializer draw from one user seed without correlation.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg64 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Creates a generator from a seed on the default stream.
    pub fn seeded(seed: u64) -> Self {
        Self::new(seed, 0xda3e39cb94b95bdb)
    }

    /// Returns the raw `(state, inc)` words. Together with [`Pcg64::restore`]
    /// this makes the generator checkpointable.
    pub fn state(&self) -> (u64, u64) {
        (self.state, self.inc)
    }

    /// Rebuilds a generator from raw words previously returned by
    /// [`Pcg64::state`].
    pub fn restore(state: u64, inc: u64) -> Self {
        Pcg64 { state, inc }
    }

    /// Next 32 uniform random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniform random bits.
    pub fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        // 24 bits of mantissa; divide by 2^24.
        (self.next_u32() >> 8) as f32 * (1.0 / 16_777_216.0)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Standard normal sample (Box–Muller; one of the pair is discarded to
    /// keep the state stream simple and replayable).
    pub fn normal(&mut self) -> f32 {
        loop {
            let u1 = self.next_f32();
            if u1 <= f32::EPSILON {
                continue;
            }
            let u2 = self.next_f32();
            let r = (-2.0 * u1.ln()).sqrt();
            return r * (2.0 * std::f32::consts::PI * u2).cos();
        }
    }

    /// Uniform integer in `[0, bound)` without modulo bias (Lemire-style
    /// rejection).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "below() requires a positive bound");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u32();
            if r >= threshold {
                return r % bound;
            }
        }
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below((i + 1) as u32) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Pcg64::seeded(42);
        let mut b = Pcg64::seeded(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Pcg64::seeded(1);
        let mut b = Pcg64::seeded(2);
        let same = (0..100).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 5, "seeds 1 and 2 should produce different streams");
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = Pcg64::new(7, 1);
        let mut b = Pcg64::new(7, 2);
        let same = (0..100).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 5);
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = Pcg64::seeded(99);
        for _ in 0..37 {
            a.next_u32();
        }
        let (s, i) = a.state();
        let mut b = Pcg64::restore(s, i);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn next_f32_in_unit_interval() {
        let mut rng = Pcg64::seeded(3);
        for _ in 0..10_000 {
            let x = rng.next_f32();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = Pcg64::seeded(4);
        for _ in 0..10_000 {
            let x = rng.uniform(-2.5, 7.5);
            assert!((-2.5..7.5).contains(&x));
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = Pcg64::seeded(5);
        let n = 50_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut rng = Pcg64::seeded(6);
        let mut counts = [0usize; 5];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.below(5) as usize] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.2).abs() < 0.01, "bucket fraction {frac}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Pcg64::seeded(7);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn below_zero_panics() {
        Pcg64::seeded(1).below(0);
    }
}
