//! The dense tensor type: contiguous row-major `f32` storage over a
//! refcounted, copy-on-write slab.

use crate::shape::Shape;
use bytes::BufMut;
use std::fmt;
use std::sync::Arc;

/// A dense, contiguous, row-major `f32` tensor.
///
/// This is the unit of model state in flor-rs: weights, gradients, optimizer
/// moment buffers, activations and batches are all `Tensor`s. Checkpoints
/// serialize tensors with [`Tensor::to_bytes`] / [`Tensor::write_payload`].
///
/// Storage is a refcounted slab (`Arc<Vec<f32>>`) with **copy-on-write**
/// mutation: cloning a tensor is an `Arc` bump, and [`Tensor::data_mut`]
/// copies the slab only when another handle still references it. This is
/// the userspace analogue of the paper's `fork()` checkpointing — a
/// snapshot taken by the background materializer holds the slab for free,
/// and the training thread pays one copy per slab only if it mutates that
/// state while the snapshot is in flight. Value semantics are preserved:
/// mutation through one handle is never visible through another.
///
/// Operations allocate their results; in-place variants (`*_inplace`,
/// [`Tensor::axpy`]) exist for the optimizer hot path.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Arc<Vec<f32>>,
}

impl Tensor {
    /// Creates a tensor from a shape and backing data.
    ///
    /// # Panics
    /// Panics if `data.len() != shape.numel()`.
    pub fn new(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {} ({} elements)",
            data.len(),
            shape,
            shape.numel()
        );
        Tensor {
            shape,
            data: Arc::new(data),
        }
    }

    /// All-zeros tensor.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor {
            shape,
            data: Arc::new(vec![0.0; n]),
        }
    }

    /// All-ones tensor.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// Constant-filled tensor.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor {
            shape,
            data: Arc::new(vec![value; n]),
        }
    }

    /// Rank-0 (scalar) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::new(Vec::new()),
            data: Arc::new(vec![value]),
        }
    }

    /// 1-D tensor from a slice.
    pub fn from_slice(values: &[f32]) -> Self {
        Tensor {
            shape: Shape::from([values.len()]),
            data: Arc::new(values.to_vec()),
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the backing data (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing data (row-major). Copy-on-write: if a
    /// snapshot (or any other handle) still shares this slab, it is copied
    /// once here before mutation — the fork()-style page-copy moment.
    pub fn data_mut(&mut self) -> &mut [f32] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Element at a multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the element at a multi-dimensional index.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data_mut()[off] = value;
    }

    /// The single value of a scalar (rank-0 or one-element) tensor.
    ///
    /// # Panics
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.numel(),
            1,
            "item() on tensor with shape {}",
            self.shape
        );
        self.data[0]
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Panics
    /// Panics if element counts differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            self.numel(),
            "cannot reshape {} ({} elems) to {} ({} elems)",
            self.shape,
            self.numel(),
            shape,
            shape.numel()
        );
        Tensor {
            shape,
            data: self.data.clone(),
        }
    }

    // ---- elementwise -----------------------------------------------------

    /// Applies `f` elementwise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: Arc::new(self.data.iter().map(|&x| f(x)).collect()),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in self.data_mut() {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "elementwise op on mismatched shapes {} vs {}",
            self.shape, other.shape
        );
        Tensor {
            shape: self.shape.clone(),
            data: Arc::new(
                self.data
                    .iter()
                    .zip(other.data.iter())
                    .map(|(&a, &b)| f(a, b))
                    .collect(),
            ),
        }
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// `self += alpha * other`, the optimizer hot path (no allocation).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "axpy on mismatched shapes {} vs {}",
            self.shape, other.shape
        );
        for (x, &y) in self.data_mut().iter_mut().zip(other.data.iter()) {
            *x += alpha * y;
        }
    }

    /// Adds a bias vector to every row of a `[rows, cols]` matrix.
    ///
    /// # Panics
    /// Panics unless `self` is rank-2 and `bias` is rank-1 of length `cols`.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "add_row_broadcast requires a matrix");
        let (rows, cols) = (self.shape.dim(0), self.shape.dim(1));
        assert_eq!(
            bias.shape.dims(),
            &[cols],
            "bias shape {} incompatible with {} columns",
            bias.shape,
            cols
        );
        let mut data = self.data().to_vec();
        for r in 0..rows {
            for c in 0..cols {
                data[r * cols + c] += bias.data[c];
            }
        }
        Tensor {
            shape: self.shape.clone(),
            data: Arc::new(data),
        }
    }

    // ---- reductions ------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements; 0.0 for empty tensors.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// L2 norm of all elements. This is the quantity Alice probes in the
    /// paper's §2.1 scenario ("magnitudes of the weights and gradients").
    pub fn norm(&self) -> f32 {
        self.data
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Maximum element; `-inf` for empty tensors.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Column-wise sum of a `[rows, cols]` matrix, yielding a `[cols]` vector.
    /// Used by bias gradients.
    ///
    /// # Panics
    /// Panics unless `self` is rank-2.
    pub fn sum_rows(&self) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "sum_rows requires a matrix");
        let (rows, cols) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0f32; cols];
        for r in 0..rows {
            let row = &self.data[r * cols..(r + 1) * cols];
            for (o, &v) in out.iter_mut().zip(row) {
                *o += v;
            }
        }
        Tensor::new([cols], out)
    }

    /// Index of the maximum element in each row of a `[rows, cols]` matrix.
    ///
    /// # Panics
    /// Panics unless `self` is rank-2 with at least one column.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.shape.rank(), 2, "argmax_rows requires a matrix");
        let (rows, cols) = (self.shape.dim(0), self.shape.dim(1));
        assert!(cols > 0, "argmax_rows requires at least one column");
        (0..rows)
            .map(|r| {
                let row = &self.data[r * cols..(r + 1) * cols];
                // First index of the maximum (ties break low, like argmax).
                let mut best = 0;
                for (i, &v) in row.iter().enumerate().skip(1) {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    // ---- linear algebra ---------------------------------------------------

    /// Matrix product of `[m, k] × [k, n] → [m, n]`.
    ///
    /// # Panics
    /// Panics unless both operands are rank-2 with compatible inner dims.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "matmul lhs must be a matrix");
        assert_eq!(other.shape.rank(), 2, "matmul rhs must be a matrix");
        let (m, k) = (self.shape.dim(0), self.shape.dim(1));
        let (k2, n) = (other.shape.dim(0), other.shape.dim(1));
        assert_eq!(
            k, k2,
            "matmul inner dims differ: {} vs {}",
            self.shape, other.shape
        );
        let mut out = vec![0.0f32; m * n];
        // ikj loop order: streams over rhs rows, friendly to the cache.
        for i in 0..m {
            for p in 0..k {
                let a = self.data[i * k + p];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &other.data[p * n..(p + 1) * n];
                let out_row = &mut out[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Tensor::new([m, n], out)
    }

    /// Matrix transpose `[m, n] → [n, m]`.
    ///
    /// # Panics
    /// Panics unless `self` is rank-2.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "transpose requires a matrix");
        let (m, n) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::new([n, m], out)
    }

    // ---- serialization ----------------------------------------------------

    /// Exact length in bytes of the [`Tensor::to_bytes`] /
    /// [`Tensor::write_payload`] encoding, computed without serializing.
    pub fn payload_len(&self) -> usize {
        4 + self.shape.dims().len() * 4 + self.data.len() * 4
    }

    /// Appends the [`Tensor::to_bytes`] encoding to `out` — the
    /// `Bytes`-backed export path: the background materializer calls this
    /// with a pooled buffer, so the training thread only ever hands over a
    /// refcounted slab handle and never serializes. On little-endian
    /// targets the data section is a single `memcpy` of the slab.
    pub fn write_payload(&self, out: &mut impl BufMut) {
        let dims = self.shape.dims();
        out.put_u32_le(dims.len() as u32);
        for &d in dims {
            out.put_u32_le(d as u32);
        }
        #[cfg(target_endian = "little")]
        {
            let f: &[f32] = &self.data;
            // Sound: f32 has no padding or invalid bit patterns as bytes,
            // u8 alignment is 1, and on little-endian the in-memory bytes
            // are exactly the wire (LE) encoding.
            let raw: &[u8] = unsafe {
                std::slice::from_raw_parts(f.as_ptr() as *const u8, std::mem::size_of_val(f))
            };
            out.put_slice(raw);
        }
        #[cfg(not(target_endian = "little"))]
        for &x in self.data.iter() {
            out.put_slice(&x.to_le_bytes());
        }
    }

    /// Encodes the tensor as bytes: rank, dims (little-endian u32), then raw
    /// little-endian f32 data. Stable across platforms.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = bytes::BytesMut::with_capacity(self.payload_len());
        self.write_payload(&mut out);
        out.into_vec()
    }

    /// Decodes a tensor previously produced by [`Tensor::to_bytes`].
    ///
    /// Returns `None` if the buffer is truncated or inconsistent.
    pub fn from_bytes(bytes: &[u8]) -> Option<Tensor> {
        let mut pos = 0usize;
        let read_u32 = |bytes: &[u8], pos: &mut usize| -> Option<u32> {
            let end = pos.checked_add(4)?;
            let v = u32::from_le_bytes(bytes.get(*pos..end)?.try_into().ok()?);
            *pos = end;
            Some(v)
        };
        let rank = read_u32(bytes, &mut pos)? as usize;
        if rank > 8 {
            return None; // corrupt: we never build tensors this deep
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(read_u32(bytes, &mut pos)? as usize);
        }
        let shape = Shape::new(dims);
        let n = shape.numel();
        let need = n.checked_mul(4)?;
        let payload = bytes.get(pos..pos.checked_add(need)?)?;
        if pos + need != bytes.len() {
            return None; // trailing garbage
        }
        let data = payload
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Some(Tensor {
            shape,
            data: Arc::new(data),
        })
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        if self.numel() <= 8 {
            write!(f, "{:?}", self.data)
        } else {
            write!(
                f,
                "[{}, {}, … ({} elems), norm={:.4}]",
                self.data[0],
                self.data[1],
                self.numel(),
                self.norm()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::new([2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.at(&[0, 1]), 2.0);
        assert_eq!(t.at(&[1, 0]), 3.0);
        assert_eq!(t.numel(), 4);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn construction_length_mismatch_panics() {
        Tensor::new([2, 2], vec![1.0]);
    }

    #[test]
    fn zeros_ones_full_scalar() {
        assert_eq!(Tensor::zeros([3]).sum(), 0.0);
        assert_eq!(Tensor::ones([3]).sum(), 3.0);
        assert_eq!(Tensor::full([2], 2.5).sum(), 5.0);
        assert_eq!(Tensor::scalar(7.0).item(), 7.0);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::new([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::new([3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape().dims(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::new([2, 2], vec![3., -1., 4., 2.]);
        let eye = Tensor::new([2, 2], vec![1., 0., 0., 1.]);
        assert_eq!(a.matmul(&eye).data(), a.data());
        assert_eq!(eye.matmul(&a).data(), a.data());
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([2, 3]);
        a.matmul(&b);
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::new([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let t = a.transpose();
        assert_eq!(t.shape().dims(), &[3, 2]);
        assert_eq!(t.at(&[0, 1]), 4.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_slice(&[1., 2., 3.]);
        let b = Tensor::from_slice(&[4., 5., 6.]);
        assert_eq!(a.add(&b).data(), &[5., 7., 9.]);
        assert_eq!(b.sub(&a).data(), &[3., 3., 3.]);
        assert_eq!(a.mul(&b).data(), &[4., 10., 18.]);
        assert_eq!(a.scale(2.0).data(), &[2., 4., 6.]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_slice(&[1., 1., 1.]);
        let g = Tensor::from_slice(&[1., 2., 3.]);
        a.axpy(-0.5, &g);
        assert_eq!(a.data(), &[0.5, 0.0, -0.5]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::new([2, 2], vec![1., 2., 3., 4.]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.max(), 4.0);
        assert!((a.norm() - 30.0f32.sqrt()).abs() < 1e-6);
        assert_eq!(a.sum_rows().data(), &[4., 6.]);
    }

    #[test]
    fn argmax_rows_picks_first_max() {
        let a = Tensor::new([2, 3], vec![0.1, 0.9, 0.5, 0.7, 0.2, 0.7]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn add_row_broadcast() {
        let a = Tensor::new([2, 2], vec![1., 2., 3., 4.]);
        let b = Tensor::from_slice(&[10., 20.]);
        assert_eq!(a.add_row_broadcast(&b).data(), &[11., 22., 13., 24.]);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::new([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = a.reshape([3, 2]);
        assert_eq!(b.at(&[2, 1]), 6.0);
    }

    #[test]
    fn bytes_roundtrip() {
        let a = Tensor::new([2, 3], vec![1., -2.5, 3., 0., 5., 6.75]);
        let bytes = a.to_bytes();
        let b = Tensor::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(a, b);
    }

    #[test]
    fn from_bytes_rejects_truncation() {
        let a = Tensor::new([4], vec![1., 2., 3., 4.]);
        let bytes = a.to_bytes();
        for cut in 0..bytes.len() {
            assert!(Tensor::from_bytes(&bytes[..cut]).is_none(), "cut at {cut}");
        }
    }

    #[test]
    fn from_bytes_rejects_trailing_garbage() {
        let mut bytes = Tensor::from_slice(&[1.0]).to_bytes();
        bytes.push(0);
        assert!(Tensor::from_bytes(&bytes).is_none());
    }

    #[test]
    fn clone_is_copy_on_write() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let mut b = a.clone();
        // Clone shares the slab (no copy yet).
        assert!(std::ptr::eq(a.data().as_ptr(), b.data().as_ptr()));
        b.data_mut()[0] = 9.0;
        // Mutation through one handle never leaks into the other.
        assert_eq!(a.data(), &[1.0, 2.0, 3.0]);
        assert_eq!(b.data(), &[9.0, 2.0, 3.0]);
        assert!(!std::ptr::eq(a.data().as_ptr(), b.data().as_ptr()));
    }

    #[test]
    fn unshared_mutation_does_not_copy() {
        let mut a = Tensor::from_slice(&[1.0, 2.0]);
        let before = a.data().as_ptr();
        a.map_inplace(|x| x * 2.0);
        a.axpy(1.0, &Tensor::from_slice(&[1.0, 1.0]));
        assert!(
            std::ptr::eq(before, a.data().as_ptr()),
            "sole owner mutates in place"
        );
        assert_eq!(a.data(), &[3.0, 5.0]);
    }

    #[test]
    fn write_payload_matches_to_bytes() {
        let t = Tensor::new([2, 3], vec![1.0, -2.5, 3.0, 0.0, f32::MIN, 6.75]);
        let mut buf = bytes::BytesMut::new();
        t.write_payload(&mut buf);
        assert_eq!(buf.as_ref(), t.to_bytes().as_slice());
        assert_eq!(buf.len(), t.payload_len());
        // Appends — must not clear what's already in the buffer.
        t.write_payload(&mut buf);
        assert_eq!(buf.len(), 2 * t.payload_len());
    }

    #[test]
    fn tensor_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tensor>();
    }
}
