//! # flor-tensor
//!
//! Dense `f32` tensor math and a deterministic, serializable random number
//! generator. This crate is the numeric substrate underneath `flor-ml`'s
//! miniature deep-learning library, which in turn stands in for PyTorch in the
//! flor-rs reproduction of *Hindsight Logging for Model Training* (Garcia et
//! al., VLDB 2020).
//!
//! Two properties matter for hindsight logging and drive the design here:
//!
//! 1. **Determinism.** Flor's replay correctness story (deferred checks that
//!    diff record and replay logs) only works if re-executing a training loop
//!    from a checkpoint reproduces the original computation bit-for-bit. All
//!    randomness therefore flows through [`Pcg64`], whose state is a plain
//!    pair of `u64` words that is captured inside every checkpoint.
//! 2. **Serializability.** Checkpoints must be able to capture any tensor.
//!    [`Tensor`] exposes a stable little-endian byte encoding via
//!    [`Tensor::to_bytes`] / [`Tensor::from_bytes`].
//!
//! The tensor type is intentionally simple — contiguous row-major `Vec<f32>`
//! storage — because the paper's experiments stress checkpoint *volume* and
//! *timing*, not kernel speed.

#![warn(missing_docs)]

pub mod init;
pub mod ops;
pub mod rng;
pub mod shape;
pub mod tensor;

pub use rng::Pcg64;
pub use shape::Shape;
pub use tensor::Tensor;
