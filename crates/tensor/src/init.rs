//! Weight initialization schemes.
//!
//! All initializers draw from a caller-supplied [`Pcg64`] so that model
//! construction is deterministic given a seed — a precondition for Flor's
//! replay correctness checks.

use crate::rng::Pcg64;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Tensor with i.i.d. uniform entries in `[lo, hi)`.
pub fn uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut Pcg64) -> Tensor {
    let shape = shape.into();
    let n = shape.numel();
    Tensor::new(shape, (0..n).map(|_| rng.uniform(lo, hi)).collect())
}

/// Tensor with i.i.d. normal entries of the given mean and standard deviation.
pub fn normal(shape: impl Into<Shape>, mean: f32, std: f32, rng: &mut Pcg64) -> Tensor {
    let shape = shape.into();
    let n = shape.numel();
    Tensor::new(shape, (0..n).map(|_| mean + std * rng.normal()).collect())
}

/// Xavier/Glorot uniform initialization for a `[fan_in, fan_out]` weight
/// matrix: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut Pcg64) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform([fan_in, fan_out], -a, a, rng)
}

/// Kaiming/He normal initialization for ReLU networks:
/// `N(0, sqrt(2 / fan_in))`.
pub fn kaiming_normal(fan_in: usize, fan_out: usize, rng: &mut Pcg64) -> Tensor {
    let std = (2.0 / fan_in as f32).sqrt();
    normal([fan_in, fan_out], 0.0, std, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Pcg64::seeded(11);
        let mut b = Pcg64::seeded(11);
        assert_eq!(
            xavier_uniform(8, 4, &mut a).data(),
            xavier_uniform(8, 4, &mut b).data()
        );
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = Pcg64::seeded(12);
        let w = xavier_uniform(100, 100, &mut rng);
        let a = (6.0f32 / 200.0).sqrt();
        assert!(w.data().iter().all(|&x| x >= -a && x < a));
    }

    #[test]
    fn kaiming_std_is_plausible() {
        let mut rng = Pcg64::seeded(13);
        let w = kaiming_normal(50, 2000, &mut rng);
        let mean = w.mean();
        let std = (w
            .data()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / w.numel() as f32)
            .sqrt();
        let expect = (2.0f32 / 50.0).sqrt();
        assert!(
            (std - expect).abs() / expect < 0.05,
            "std {std} vs {expect}"
        );
    }

    #[test]
    fn normal_mean_shift() {
        let mut rng = Pcg64::seeded(14);
        let w = normal([10_000], 3.0, 0.5, &mut rng);
        assert!((w.mean() - 3.0).abs() < 0.02);
    }
}
