//! Neural-network math on tensors: activations, softmax, losses.
//!
//! These free functions operate on [`Tensor`]s and are the kernels `flor-ml`
//! layers are built from. Each forward kernel has a matching backward kernel
//! so layers can implement exact gradients (verified by finite differences in
//! `flor-ml`'s property tests).

use crate::tensor::Tensor;

/// Rectified linear unit, elementwise.
pub fn relu(x: &Tensor) -> Tensor {
    x.map(|v| v.max(0.0))
}

/// Gradient of [`relu`]: passes `grad` where the forward input was positive.
pub fn relu_backward(x: &Tensor, grad: &Tensor) -> Tensor {
    x.zip(grad, |xi, gi| if xi > 0.0 { gi } else { 0.0 })
}

/// Logistic sigmoid, elementwise.
pub fn sigmoid(x: &Tensor) -> Tensor {
    x.map(|v| 1.0 / (1.0 + (-v).exp()))
}

/// Gradient of [`sigmoid`] given the forward *output* `y`.
pub fn sigmoid_backward(y: &Tensor, grad: &Tensor) -> Tensor {
    y.zip(grad, |yi, gi| yi * (1.0 - yi) * gi)
}

/// Hyperbolic tangent, elementwise.
pub fn tanh(x: &Tensor) -> Tensor {
    x.map(f32::tanh)
}

/// Gradient of [`tanh`] given the forward *output* `y`.
pub fn tanh_backward(y: &Tensor, grad: &Tensor) -> Tensor {
    y.zip(grad, |yi, gi| (1.0 - yi * yi) * gi)
}

/// Gaussian error linear unit (tanh approximation), elementwise.
pub fn gelu(x: &Tensor) -> Tensor {
    x.map(|v| {
        0.5 * v * (1.0 + ((2.0 / std::f32::consts::PI).sqrt() * (v + 0.044715 * v * v * v)).tanh())
    })
}

/// Row-wise softmax of a `[rows, cols]` matrix, numerically stabilized by
/// subtracting the row max.
///
/// # Panics
/// Panics unless `x` is rank-2.
pub fn softmax_rows(x: &Tensor) -> Tensor {
    assert_eq!(x.shape().rank(), 2, "softmax_rows requires a matrix");
    let (rows, cols) = (x.shape().dim(0), x.shape().dim(1));
    let mut out = x.clone();
    let data = out.data_mut();
    for r in 0..rows {
        let row = &mut data[r * cols..(r + 1) * cols];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut z = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - m).exp();
            z += *v;
        }
        for v in row.iter_mut() {
            *v /= z;
        }
    }
    out
}

/// Mean cross-entropy loss of row-wise logits against integer class targets.
///
/// Returns `(loss, probs)` where `probs` is the softmax output, needed by
/// [`cross_entropy_backward`].
///
/// # Panics
/// Panics unless `logits` is rank-2 and `targets.len()` equals the row count.
pub fn cross_entropy(logits: &Tensor, targets: &[usize]) -> (f32, Tensor) {
    assert_eq!(x_rows(logits), targets.len(), "one target per logit row");
    let probs = softmax_rows(logits);
    let (rows, cols) = (probs.shape().dim(0), probs.shape().dim(1));
    let mut loss = 0.0f64;
    for (r, &t) in targets.iter().enumerate() {
        assert!(t < cols, "target class {t} out of range ({cols} classes)");
        let p = probs.data()[r * cols + t].max(1e-12);
        loss -= (p as f64).ln();
    }
    ((loss / rows as f64) as f32, probs)
}

/// Gradient of [`cross_entropy`] with respect to the logits:
/// `(probs - onehot(targets)) / rows`.
pub fn cross_entropy_backward(probs: &Tensor, targets: &[usize]) -> Tensor {
    let (rows, cols) = (probs.shape().dim(0), probs.shape().dim(1));
    let mut grad = probs.clone();
    let data = grad.data_mut();
    for (r, &t) in targets.iter().enumerate() {
        data[r * cols + t] -= 1.0;
    }
    let inv = 1.0 / rows as f32;
    for v in data.iter_mut() {
        *v *= inv;
    }
    grad
}

/// Mean squared error between predictions and targets.
///
/// # Panics
/// Panics on shape mismatch.
pub fn mse(pred: &Tensor, target: &Tensor) -> f32 {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let n = pred.numel().max(1) as f32;
    pred.data()
        .iter()
        .zip(target.data())
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum::<f32>()
        / n
}

/// Gradient of [`mse`] w.r.t. predictions: `2 (pred - target) / n`.
pub fn mse_backward(pred: &Tensor, target: &Tensor) -> Tensor {
    let n = pred.numel().max(1) as f32;
    pred.zip(target, move |p, t| 2.0 * (p - t) / n)
}

fn x_rows(x: &Tensor) -> usize {
    assert_eq!(x.shape().rank(), 2, "expected a matrix");
    x.shape().dim(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn relu_clamps_negatives() {
        let x = Tensor::from_slice(&[-1.0, 0.0, 2.0]);
        assert_eq!(relu(&x).data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks() {
        let x = Tensor::from_slice(&[-1.0, 0.5]);
        let g = Tensor::from_slice(&[10.0, 10.0]);
        assert_eq!(relu_backward(&x, &g).data(), &[0.0, 10.0]);
    }

    #[test]
    fn sigmoid_midpoint() {
        let y = sigmoid(&Tensor::from_slice(&[0.0]));
        assert!(close(y.data()[0], 0.5));
    }

    #[test]
    fn tanh_range() {
        let y = tanh(&Tensor::from_slice(&[-100.0, 0.0, 100.0]));
        assert!(close(y.data()[0], -1.0));
        assert!(close(y.data()[1], 0.0));
        assert!(close(y.data()[2], 1.0));
    }

    #[test]
    fn gelu_matches_known_values() {
        let y = gelu(&Tensor::from_slice(&[0.0, 1.0]));
        assert!(close(y.data()[0], 0.0));
        assert!((y.data()[1] - 0.8412).abs() < 1e-3);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::new([2, 3], vec![1., 2., 3., -1., 0., 1.]);
        let p = softmax_rows(&x);
        for r in 0..2 {
            let s: f32 = p.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!(close(s, 1.0));
        }
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let x = Tensor::new([1, 2], vec![1000.0, 1001.0]);
        let p = softmax_rows(&x);
        assert!(p.data().iter().all(|v| v.is_finite()));
        assert!(p.data()[1] > p.data()[0]);
    }

    #[test]
    fn cross_entropy_perfect_prediction_near_zero() {
        let logits = Tensor::new([1, 3], vec![100.0, 0.0, 0.0]);
        let (loss, _) = cross_entropy(&logits, &[0]);
        assert!(loss < 1e-4, "loss {loss}");
    }

    #[test]
    fn cross_entropy_uniform_is_log_k() {
        let logits = Tensor::new([1, 4], vec![0.0; 4]);
        let (loss, _) = cross_entropy(&logits, &[2]);
        assert!(close(loss, 4.0f32.ln()));
    }

    #[test]
    fn cross_entropy_grad_sums_to_zero_per_row() {
        let logits = Tensor::new([2, 3], vec![0.5, -0.2, 0.1, 1.0, 2.0, 3.0]);
        let (_, probs) = cross_entropy(&logits, &[0, 2]);
        let grad = cross_entropy_backward(&probs, &[0, 2]);
        for r in 0..2 {
            let s: f32 = grad.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_grad_matches_finite_difference() {
        let logits = Tensor::new([1, 3], vec![0.3, -0.1, 0.4]);
        let targets = [1usize];
        let (_, probs) = cross_entropy(&logits, &targets);
        let grad = cross_entropy_backward(&probs, &targets);
        let eps = 1e-3;
        for i in 0..3 {
            let mut plus = logits.clone();
            plus.data_mut()[i] += eps;
            let mut minus = logits.clone();
            minus.data_mut()[i] -= eps;
            let (lp, _) = cross_entropy(&plus, &targets);
            let (lm, _) = cross_entropy(&minus, &targets);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grad.data()[i]).abs() < 1e-3,
                "dim {i}: fd {fd} vs analytic {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn mse_and_backward() {
        let p = Tensor::from_slice(&[1.0, 2.0]);
        let t = Tensor::from_slice(&[0.0, 0.0]);
        assert!(close(mse(&p, &t), 2.5));
        let g = mse_backward(&p, &t);
        assert_eq!(g.data(), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "one target per logit row")]
    fn cross_entropy_target_count_mismatch() {
        cross_entropy(&Tensor::zeros([2, 3]), &[0]);
    }
}
