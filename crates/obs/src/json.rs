//! The workspace's one JSON serializer and parser.
//!
//! Vendored-deps-only means no serde; every machine-readable surface
//! (Chrome traces, `flor store stats --json`, `flor runs show --json`,
//! the `metrics` serve verb, `MetricSnapshot::to_json`) goes through
//! [`JsonWriter`], and tests/validators read it back with [`parse`] — one
//! serializer, so the pretty printers and the JSON forms cannot drift
//! apart structurally.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Incremental JSON writer: explicit `begin`/`end` for containers, comma
/// placement handled internally.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One entry per open container: true once it has a first element.
    has_elem: Vec<bool>,
}

impl JsonWriter {
    /// Empty writer.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    fn pre_value(&mut self) {
        if let Some(has) = self.has_elem.last_mut() {
            if *has {
                self.out.push(',');
            }
            *has = true;
        }
    }

    /// Opens an object (`{`).
    pub fn begin_obj(&mut self) {
        self.pre_value();
        self.out.push('{');
        self.has_elem.push(false);
    }

    /// Closes the innermost object.
    pub fn end_obj(&mut self) {
        self.has_elem.pop();
        self.out.push('}');
    }

    /// Opens an array (`[`).
    pub fn begin_arr(&mut self) {
        self.pre_value();
        self.out.push('[');
        self.has_elem.push(false);
    }

    /// Closes the innermost array.
    pub fn end_arr(&mut self) {
        self.has_elem.pop();
        self.out.push(']');
    }

    /// Writes an object key; follow with exactly one value call.
    pub fn key(&mut self, k: &str) {
        self.pre_value();
        write_escaped(&mut self.out, k);
        self.out.push(':');
        if let Some(has) = self.has_elem.last_mut() {
            // Suppress the comma the following value's pre_value would
            // otherwise add between ':' and the value.
            *has = false;
        }
    }

    /// String value.
    pub fn str_val(&mut self, v: &str) {
        self.pre_value();
        write_escaped(&mut self.out, v);
    }

    /// Unsigned integer value.
    pub fn u64_val(&mut self, v: u64) {
        self.pre_value();
        let _ = write!(self.out, "{v}");
    }

    /// Float value (finite; NaN/inf serialize as 0 — JSON has no spelling
    /// for them).
    pub fn f64_val(&mut self, v: f64) {
        self.pre_value();
        if v.is_finite() {
            let _ = write!(self.out, "{v}");
        } else {
            self.out.push('0');
        }
    }

    /// Bool value.
    pub fn bool_val(&mut self, v: bool) {
        self.pre_value();
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// `"k": <u64>` object field.
    pub fn field_u64(&mut self, k: &str, v: u64) {
        self.key(k);
        self.u64_val(v);
    }

    /// `"k": <f64>` object field.
    pub fn field_f64(&mut self, k: &str, v: f64) {
        self.key(k);
        self.f64_val(v);
    }

    /// `"k": "<str>"` object field.
    pub fn field_str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.str_val(v);
    }

    /// The serialized document.
    pub fn finish(self) -> String {
        self.out
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as f64, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion order lost; duplicate keys keep the last).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value truncated to u64.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|f| f as u64)
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {} (found {:?})",
            c as char,
            *pos,
            b.get(*pos).map(|&x| x as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos:?}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => return Err(format!("expected ',' or ']' , found {other:?}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            other => return Err(format!("expected ',' or '}}', found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_nests_and_parses_back() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.field_str("name", "flor \"obs\"\n");
        w.field_u64("count", 42);
        w.field_f64("ratio", 2.5);
        w.key("items");
        w.begin_arr();
        w.u64_val(1);
        w.u64_val(2);
        w.begin_obj();
        w.field_str("k", "v");
        w.end_obj();
        w.end_arr();
        w.key("empty");
        w.begin_obj();
        w.end_obj();
        w.end_obj();
        let text = w.finish();
        let v = parse(&text).expect("writer output parses");
        assert_eq!(v.get("name").and_then(Json::as_str), Some("flor \"obs\"\n"));
        assert_eq!(v.get("count").and_then(Json::as_u64), Some(42));
        assert_eq!(v.get("ratio").and_then(Json::as_f64), Some(2.5));
        let items = v.get("items").and_then(Json::as_arr).unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[2].get("k").and_then(Json::as_str), Some("v"));
        assert_eq!(v.get("empty"), Some(&Json::Obj(BTreeMap::new())));
    }

    #[test]
    fn parser_accepts_committed_bench_shape() {
        let text = r#"{
            "bench": "replay_sched", "quick": false,
            "schedule": {"skewed_steal_speedup": 2.08, "delta": -0.004},
            "lanes": [0, 1, 2]
        }"#;
        let v = parse(text).unwrap();
        assert_eq!(
            v.get("schedule")
                .and_then(|s| s.get("skewed_steal_speedup"))
                .and_then(Json::as_f64),
            Some(2.08)
        );
        assert_eq!(v.get("quick"), Some(&Json::Bool(false)));
        assert_eq!(
            v.get("lanes").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
