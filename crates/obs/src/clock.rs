//! The monotonic clock: nanoseconds since the process-wide epoch.
//!
//! Every duration in flor-rs is a difference of two [`now_ns`] readings,
//! so all subsystems (record timing, replay stats, spans, histograms)
//! share one timeline — that is what lets a Chrome trace line worker
//! ranges up against store commits. `tools/ci.sh` grep-lints raw
//! `Instant::now()` out of the hot-path crates; this module is the one
//! allowed call site.

use std::sync::OnceLock;
use std::time::Instant;

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Monotonic nanoseconds since the first call in this process.
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Nanoseconds elapsed since an earlier [`now_ns`] reading.
#[inline]
pub fn since_ns(t0: u64) -> u64 {
    now_ns().saturating_sub(t0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_and_ticks() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(since_ns(a) >= 2_000_000);
    }

    #[test]
    fn shared_epoch_across_threads() {
        let t0 = now_ns();
        let t1 = std::thread::spawn(now_ns).join().unwrap();
        // Same epoch: a later reading from another thread is later.
        assert!(t1 >= t0);
    }
}
