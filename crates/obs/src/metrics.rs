//! Always-on named counters and log-bucketed latency histograms.
//!
//! Subsystem stats used to be scattered, per-struct O(1) counters
//! (`ReplayStats`, `MaterializerStats`, `CompactionReport`, …) with no
//! shared snapshot. Counters and histograms registered here cost one
//! relaxed atomic RMW to update, and [`snapshot`] folds everything into a
//! [`MetricSnapshot`] — the struct behind `flor store stats --json`, the
//! `metrics` verb of `flor serve`, and the registry's service surface.
//!
//! Histograms bucket durations by power of two (bucket `i` holds values
//! in `[2^(i-1), 2^i)` ns), which keeps `observe` branch-free and allows
//! p50/p95/p99 estimates without storing samples. Hot call sites cache
//! the `&'static` handle via [`counter!`](crate::counter!) /
//! [`histogram!`](crate::histogram!) so the registry lock is off the
//! fast path.

use crate::json::JsonWriter;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// A monotonically increasing named count.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two buckets: covers 1ns .. ~2^62ns (~146 years).
const BUCKETS: usize = 63;

/// A log-bucketed latency histogram (nanosecond durations).
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

fn bucket_of(ns: u64) -> usize {
    ((64 - ns.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Upper bound (exclusive) of a bucket, used as its representative value
/// when estimating percentiles — a deliberate round-up so estimates never
/// undersell a latency.
fn bucket_ceiling(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i.min(62)
    }
}

impl Histogram {
    /// Records one duration.
    #[inline]
    pub fn observe(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy with percentile estimates.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let pct = |p: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((count as f64) * p).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, b) in buckets.iter().enumerate() {
                seen += b;
                if seen >= rank {
                    return bucket_ceiling(i);
                }
            }
            bucket_ceiling(BUCKETS - 1)
        };
        HistogramSnapshot {
            name: name.to_string(),
            count,
            sum_ns: self.sum.load(Ordering::Relaxed),
            p50_ns: pct(0.50),
            p95_ns: pct(0.95),
            p99_ns: pct(0.99),
            max_ns: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Percentile summary of one histogram. Percentiles are bucket ceilings
/// (upper bounds of the containing power-of-two bucket).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: String,
    /// Samples observed.
    pub count: u64,
    /// Sum of all observed durations, ns.
    pub sum_ns: u64,
    /// Median estimate, ns.
    pub p50_ns: u64,
    /// 95th-percentile estimate, ns.
    pub p95_ns: u64,
    /// 99th-percentile estimate, ns.
    pub p99_ns: u64,
    /// Largest observed value, exact, ns.
    pub max_ns: u64,
}

struct RegistryInner {
    counters: BTreeMap<&'static str, &'static Counter>,
    histograms: BTreeMap<&'static str, &'static Histogram>,
}

fn registry() -> &'static Mutex<RegistryInner> {
    static R: OnceLock<Mutex<RegistryInner>> = OnceLock::new();
    R.get_or_init(|| {
        Mutex::new(RegistryInner {
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
        })
    })
}

/// The counter registered as `name` (registers on first use). The handle
/// is `&'static`: leaked once per distinct name, bounded by the set of
/// metric names in the codebase.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    reg.counters
        .entry(name)
        .or_insert_with(|| Box::leak(Box::default()))
}

/// The histogram registered as `name` (registers on first use).
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    reg.histograms
        .entry(name)
        .or_insert_with(|| Box::leak(Box::default()))
}

/// Like [`counter`] but for names built at runtime (per-tenant metrics:
/// `tenant.<name>.queries`). The name is leaked once per distinct string —
/// bounded by the set of tenants a server process ever sees, the same
/// order of magnitude as its connection count.
pub fn counter_named(name: &str) -> &'static Counter {
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(c) = reg.counters.get(name) {
        return c;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    reg.counters
        .entry(leaked)
        .or_insert_with(|| Box::leak(Box::default()))
}

/// Like [`histogram`] but for names built at runtime (see
/// [`counter_named`] for the leak bound).
pub fn histogram_named(name: &str) -> &'static Histogram {
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(h) = reg.histograms.get(name) {
        return h;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    reg.histograms
        .entry(leaked)
        .or_insert_with(|| Box::leak(Box::default()))
}

/// Point-in-time copy of every registered metric, name-sorted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricSnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// Percentile summaries for every histogram.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Snapshots the whole registry.
pub fn snapshot() -> MetricSnapshot {
    snapshot_filtered(|_| true)
}

/// Snapshots only the metrics whose name starts with `prefix` — the
/// per-tenant `metrics <tenant>` view (`prefix = "tenant.<name>."`).
pub fn snapshot_prefixed(prefix: &str) -> MetricSnapshot {
    snapshot_filtered(|name| name.starts_with(prefix))
}

fn snapshot_filtered(keep: impl Fn(&str) -> bool) -> MetricSnapshot {
    let reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    MetricSnapshot {
        counters: reg
            .counters
            .iter()
            .filter(|(n, _)| keep(n))
            .map(|(n, c)| (n.to_string(), c.get()))
            .collect(),
        histograms: reg
            .histograms
            .iter()
            .filter(|(n, _)| keep(n))
            .map(|(n, h)| h.snapshot(n))
            .collect(),
    }
}

impl MetricSnapshot {
    /// Serializes via the shared [`JsonWriter`] — the same serializer the
    /// `--json` CLI surfaces use, so formats cannot drift.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("counters");
        w.begin_obj();
        for (name, v) in &self.counters {
            w.field_u64(name, *v);
        }
        w.end_obj();
        w.key("histograms");
        w.begin_obj();
        for h in &self.histograms {
            w.key(&h.name);
            w.begin_obj();
            w.field_u64("count", h.count);
            w.field_u64("sum_ns", h.sum_ns);
            w.field_u64("p50_ns", h.p50_ns);
            w.field_u64("p95_ns", h.p95_ns);
            w.field_u64("p99_ns", h.p99_ns);
            w.field_u64("max_ns", h.max_ns);
            w.end_obj();
        }
        w.end_obj();
        w.end_obj();
        w.finish()
    }

    /// Human-readable rendering (the `flor serve` pretty form), derived
    /// from the same snapshot the JSON form serializes.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "{name:<40} {v}");
        }
        for h in &self.histograms {
            let _ = writeln!(
                out,
                "{:<40} n={} p50={}ns p95={}ns p99={}ns max={}ns",
                h.name, h.count, h.p50_ns, h.p95_ns, h.p99_ns, h.max_ns
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = counter("test.metrics.counter_a");
        let before = c.get();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), before + 5);
        let snap = snapshot();
        assert!(snap
            .counters
            .iter()
            .any(|(n, v)| n == "test.metrics.counter_a" && *v >= before + 5));
    }

    #[test]
    fn same_name_returns_same_handle() {
        let a = counter("test.metrics.same") as *const Counter;
        let b = counter("test.metrics.same") as *const Counter;
        assert_eq!(a, b);
    }

    #[test]
    fn histogram_percentiles_bracket_observations() {
        let h = histogram("test.metrics.hist");
        // 90 fast ops (~1µs), 10 slow (~1ms).
        for _ in 0..90 {
            h.observe(1_000);
        }
        for _ in 0..10 {
            h.observe(1_000_000);
        }
        let s = h.snapshot("test.metrics.hist");
        assert_eq!(s.count, 100);
        assert_eq!(s.max_ns, 1_000_000);
        // p50 lands in the 1µs bucket (ceiling 1024), p99 in the 1ms one.
        assert!(s.p50_ns >= 1_000 && s.p50_ns < 4_096, "p50={}", s.p50_ns);
        assert!(s.p99_ns >= 1_000_000, "p99={}", s.p99_ns);
        assert!(s.p95_ns >= s.p50_ns && s.p99_ns >= s.p95_ns);
    }

    #[test]
    fn zero_and_huge_observations_stay_in_range() {
        let h = Histogram::default();
        h.observe(0);
        h.observe(u64::MAX);
        let s = h.snapshot("edge");
        assert_eq!(s.count, 2);
        assert_eq!(s.max_ns, u64::MAX);
    }

    #[test]
    fn named_metrics_register_once_and_filter_by_prefix() {
        let tenant = "tenant.acme-metrics-test.";
        let a = counter_named(&format!("{tenant}queries")) as *const Counter;
        let b = counter_named(&format!("{tenant}queries")) as *const Counter;
        assert_eq!(a, b, "dynamic names must not re-leak per lookup");
        counter_named(&format!("{tenant}queries")).add(3);
        histogram_named(&format!("{tenant}job_ns")).observe(42);
        counter("test.metrics.other_tenant_noise").inc();
        let snap = snapshot_prefixed(tenant);
        assert_eq!(snap.counters.len(), 1);
        assert!(snap.counters[0].0.ends_with("queries") && snap.counters[0].1 >= 3);
        assert_eq!(snap.histograms.len(), 1);
        assert!(snap.histograms[0].count >= 1);
    }

    #[test]
    fn snapshot_json_roundtrips() {
        counter("test.metrics.json").add(7);
        histogram("test.metrics.json_hist").observe(123);
        let snap = snapshot();
        let parsed = crate::json::parse(&snap.to_json()).expect("snapshot JSON parses");
        let counters = parsed.get("counters").expect("counters object");
        assert!(counters.get("test.metrics.json").is_some());
        let hist = parsed
            .get("histograms")
            .and_then(|h| h.get("test.metrics.json_hist"))
            .expect("histogram object");
        assert!(hist.get("p99_ns").and_then(|v| v.as_f64()).is_some());
    }
}
