//! Spans and instants into per-thread lock-free ring buffers.
//!
//! The contract that keeps the 2µs submit path and the 1µs restore read
//! honest: with no [`TraceSession`] live, [`span`] and [`instant`] cost a
//! single `Relaxed` atomic load and return inert values — no clock read,
//! no thread-local access, no allocation. With a session live, each
//! thread records fixed-size [`Event`]s into its own SPSC ring (this
//! thread writes, the session's `finish` drains), so workers never
//! contend on a lock in the replay inner loop. Rings that fill drop
//! events and count them ([`Trace::dropped`]) instead of blocking.

use crate::clock;
use std::cell::{Cell, UnsafeCell};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Events a thread can buffer before the ring drops (and counts) the
/// overflow. 16Ki × 64B = 1MiB per traced thread, allocated lazily on the
/// thread's first recorded event.
const RING_CAP: usize = 1 << 14;

/// Auto-assigned lanes start here so explicit lanes (replay worker pids,
/// the merger/driver, materializer workers) never collide with them.
const AUTO_LANE_BASE: u32 = 1 << 16;

/// Lane of the replay driver thread (runs the streaming merger). Replay
/// workers claim their pid as lane, so role lanes start well above any
/// realistic worker count.
pub const LANE_DRIVER: u32 = 1000;
/// First lane of the background materializer pool (worker `i` gets
/// `LANE_MATERIALIZER_BASE + i`).
pub const LANE_MATERIALIZER_BASE: u32 = 2000;
/// First lane of the registry scheduler pool.
pub const LANE_SCHEDULER_BASE: u32 = 3000;

/// What a span or instant was doing — the `cat` field of the Chrome
/// trace, and the unit the acceptance tests count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Category {
    /// Executing a block body and deciding/submitting its checkpoint
    /// (record mode), or re-executing it for hindsight output (replay —
    /// the logical log re-generation is literally re-recording).
    #[default]
    Record,
    /// Durable writes: store write-batch commits, background group
    /// commits, query-cache fills.
    Commit,
    /// Physical recovery: checkpoint restores and delta-chain walks.
    RestoreChain,
    /// A replay worker executing a micro-range (init + work phases).
    RangeExec,
    /// A range moving between replay workers.
    Steal,
    /// The streaming merger emitting a record-order prefix.
    StreamMerge,
    /// Waiting on (or being served by) the checkpoint prefetcher.
    Prefetch,
    /// Segment compaction / GC.
    Compact,
    /// Scheduler job lifecycle (queued → running → terminal).
    Job,
    /// The discrete-event simulator's phases.
    Sim,
    /// Lowering a program to bytecode (one span per compiled module).
    Compile,
    /// Bytecode VM executing a range of instructions.
    VmExec,
    /// Backward program slicing: computing the dependency cone of the
    /// query's log statements before lowering.
    Slice,
    /// Tiered-storage movement: cold-tier demotions, spool shipping, and
    /// spool fault-backs.
    Tier,
    /// Query-service event loop: connection accepts, socket reads,
    /// protocol dispatch, and backpressured writes.
    Serve,
}

impl Category {
    /// All categories, for exporters and tests.
    pub const ALL: [Category; 15] = [
        Category::Record,
        Category::Commit,
        Category::RestoreChain,
        Category::RangeExec,
        Category::Steal,
        Category::StreamMerge,
        Category::Prefetch,
        Category::Compact,
        Category::Job,
        Category::Sim,
        Category::Compile,
        Category::VmExec,
        Category::Slice,
        Category::Tier,
        Category::Serve,
    ];

    /// Stable name used in exports (`cat` in Chrome traces).
    pub fn as_str(self) -> &'static str {
        match self {
            Category::Record => "record",
            Category::Commit => "commit",
            Category::RestoreChain => "restore-chain",
            Category::RangeExec => "range-exec",
            Category::Steal => "steal",
            Category::StreamMerge => "stream-merge",
            Category::Prefetch => "prefetch",
            Category::Compact => "compact",
            Category::Job => "job",
            Category::Sim => "sim",
            Category::Compile => "compile",
            Category::VmExec => "vm-exec",
            Category::Slice => "slice",
            Category::Tier => "tier",
            Category::Serve => "serve",
        }
    }
}

/// Complete span or point-in-time marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A duration (`ph: "X"` in Chrome traces).
    Complete,
    /// An instant (`ph: "i"`).
    Instant,
}

/// One recorded event. Fixed-size and `Copy` so ring slots never
/// allocate; `name` is `&'static str` by design (no formatting on the
/// hot path — put variable data in `args`).
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Category (the Chrome `cat`).
    pub cat: Category,
    /// Span name (the Chrome `name`).
    pub name: &'static str,
    /// Start, ns on the [`clock`] timeline.
    pub start_ns: u64,
    /// Duration ns (0 for instants).
    pub dur_ns: u64,
    /// Complete span or instant.
    pub kind: EventKind,
    /// Free-form numeric payload (range bounds, byte counts, job ids…).
    pub args: [u64; 2],
    /// Lane (Chrome `tid`): the replay worker pid or a role lane set via
    /// [`set_lane`]; auto-assigned per thread otherwise.
    pub lane: u32,
    /// Span nesting depth on this thread at record time (0 = top level).
    pub depth: u32,
}

impl Default for Event {
    fn default() -> Self {
        Event {
            cat: Category::Record,
            name: "",
            start_ns: 0,
            dur_ns: 0,
            kind: EventKind::Instant,
            args: [0; 2],
            lane: 0,
            depth: 0,
        }
    }
}

/// Per-thread SPSC ring: the owning thread appends, `drain_all` (under
/// the session lock, after disabling) consumes. `head` is published with
/// `Release` after the slot write, so a reader that `Acquire`-loads it
/// sees fully written events; the writer never overtakes `tail`.
struct ThreadBuf {
    slots: Box<[UnsafeCell<Event>]>,
    /// Next write position (monotonic; slot = head % RING_CAP).
    head: AtomicUsize,
    /// First unconsumed position (only the drainer advances it).
    tail: AtomicUsize,
    dropped: AtomicU64,
}

// SAFETY: the UnsafeCell slots follow the SPSC protocol above — a slot is
// written only by the owning thread before the Release store of `head`,
// and read only at positions below an Acquire load of `head`.
unsafe impl Sync for ThreadBuf {}
unsafe impl Send for ThreadBuf {}

impl ThreadBuf {
    fn new() -> Self {
        ThreadBuf {
            slots: (0..RING_CAP)
                .map(|_| UnsafeCell::new(Event::default()))
                .collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Append from the owning thread.
    fn push(&self, ev: Event) {
        let h = self.head.load(Ordering::Relaxed);
        if h.wrapping_sub(self.tail.load(Ordering::Acquire)) >= RING_CAP {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // SAFETY: slot h is unpublished (>= head) and unread (< tail+CAP).
        unsafe { *self.slots[h % RING_CAP].get() = ev };
        self.head.store(h.wrapping_add(1), Ordering::Release);
    }

    /// Consume everything published so far (drainer side).
    fn drain(&self, out: &mut Vec<Event>) -> u64 {
        let t = self.tail.load(Ordering::Relaxed);
        let h = self.head.load(Ordering::Acquire);
        let mut i = t;
        while i != h {
            // SAFETY: positions in [tail, head) are published and not
            // being written.
            out.push(unsafe { *self.slots[i % RING_CAP].get() });
            i = i.wrapping_add(1);
        }
        self.tail.store(h, Ordering::Release);
        self.dropped.swap(0, Ordering::Relaxed)
    }
}

/// The one flag the disabled path pays for.
static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_AUTO_LANE: AtomicU32 = AtomicU32::new(AUTO_LANE_BASE);

fn registry() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static R: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(Vec::new()))
}

fn lane_names() -> &'static Mutex<Vec<(u32, String)>> {
    static N: OnceLock<Mutex<Vec<(u32, String)>>> = OnceLock::new();
    N.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static TLS_BUF: UnsafeCell<Option<Arc<ThreadBuf>>> = const { UnsafeCell::new(None) };
    static TLS_LANE: Cell<u32> = const { Cell::new(u32::MAX) };
    static TLS_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// True while a [`TraceSession`] is live. One relaxed load — the whole
/// cost of instrumentation when tracing is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Names this thread's lane for exports: replay workers call
/// `set_lane(pid, "worker-N")`, the merge driver and materializer workers
/// claim role lanes. Unset threads get a distinct auto lane on first use.
pub fn set_lane(lane: u32, name: &str) {
    TLS_LANE.with(|l| l.set(lane));
    let mut names = lane_names().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(slot) = names.iter_mut().find(|(l, _)| *l == lane) {
        slot.1 = name.to_string();
    } else {
        names.push((lane, name.to_string()));
    }
}

fn current_lane() -> u32 {
    TLS_LANE.with(|l| {
        let v = l.get();
        if v != u32::MAX {
            return v;
        }
        let auto = NEXT_AUTO_LANE.fetch_add(1, Ordering::Relaxed);
        l.set(auto);
        auto
    })
}

fn record_event(mut ev: Event) {
    ev.lane = current_lane();
    TLS_BUF.with(|cell| {
        // SAFETY: TLS_BUF is only touched from this thread, and the
        // closure never re-enters record_event.
        let slot = unsafe { &mut *cell.get() };
        let buf = slot.get_or_insert_with(|| {
            let buf = Arc::new(ThreadBuf::new());
            registry()
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(buf.clone());
            buf
        });
        buf.push(ev);
    });
}

/// RAII span: records one [`EventKind::Complete`] event on drop. Inert
/// (and free beyond the construction-time flag check) when tracing is
/// disabled.
#[must_use = "a span measures the scope it is bound to"]
pub struct Span {
    start_ns: u64,
    cat: Category,
    name: &'static str,
    args: [u64; 2],
    active: bool,
}

impl Span {
    /// Attaches numeric arguments (range bounds, bytes, ids) to the span.
    #[inline]
    pub fn set_args(&mut self, a0: u64, a1: u64) {
        if self.active {
            self.args = [a0, a1];
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let depth = TLS_DEPTH.with(|d| {
            let v = d.get().saturating_sub(1);
            d.set(v);
            v
        });
        record_event(Event {
            cat: self.cat,
            name: self.name,
            start_ns: self.start_ns,
            dur_ns: clock::since_ns(self.start_ns),
            kind: EventKind::Complete,
            args: self.args,
            lane: 0,
            depth,
        });
    }
}

/// Opens a span; bind it (`let _span = …`) so it closes at scope exit.
#[inline]
pub fn span(cat: Category, name: &'static str) -> Span {
    if !enabled() {
        return Span {
            start_ns: 0,
            cat,
            name,
            args: [0; 2],
            active: false,
        };
    }
    TLS_DEPTH.with(|d| d.set(d.get() + 1));
    Span {
        start_ns: clock::now_ns(),
        cat,
        name,
        args: [0; 2],
        active: true,
    }
}

/// Records a point-in-time event (steal decisions, job transitions).
#[inline]
pub fn instant(cat: Category, name: &'static str, a0: u64, a1: u64) {
    if !enabled() {
        return;
    }
    record_event(Event {
        cat,
        name,
        start_ns: clock::now_ns(),
        dur_ns: 0,
        kind: EventKind::Instant,
        args: [a0, a1],
        lane: 0,
        depth: TLS_DEPTH.with(|d| d.get()),
    });
}

/// A drained trace: every thread's events, merged and time-sorted.
#[derive(Debug, Default)]
pub struct Trace {
    /// Events sorted by `(start_ns, -dur_ns)` so parents precede children.
    pub events: Vec<Event>,
    /// Events lost to ring overflow across all threads.
    pub dropped: u64,
    /// `(lane, name)` pairs registered via [`set_lane`].
    pub lane_names: Vec<(u32, String)>,
}

impl Trace {
    /// Distinct lanes observed, ascending.
    pub fn lanes(&self) -> Vec<u32> {
        let mut lanes: Vec<u32> = self.events.iter().map(|e| e.lane).collect();
        lanes.sort_unstable();
        lanes.dedup();
        lanes
    }

    /// Distinct categories observed, in [`Category::ALL`] order.
    pub fn categories(&self) -> Vec<Category> {
        Category::ALL
            .into_iter()
            .filter(|c| self.events.iter().any(|e| e.cat == *c))
            .collect()
    }

    /// Events on one lane, in the trace's time order.
    pub fn lane_events(&self, lane: u32) -> Vec<&Event> {
        self.events.iter().filter(|e| e.lane == lane).collect()
    }
}

/// A global tracing window. `start` resets all ring buffers and raises
/// the flag; `finish` lowers it and drains every thread's ring into a
/// [`Trace`]. Sessions serialize on a process-wide mutex (a second
/// `start` blocks until the first finishes), so concurrent tests or jobs
/// cannot interleave their events.
pub struct TraceSession {
    _guard: std::sync::MutexGuard<'static, ()>,
}

static SESSION: Mutex<()> = Mutex::new(());

impl Drop for TraceSession {
    fn drop(&mut self) {
        // A session abandoned without `finish` (error-path unwind) must
        // still lower the flag before releasing the session mutex.
        ENABLED.store(false, Ordering::Release);
    }
}

impl TraceSession {
    /// Opens the tracing window.
    pub fn start() -> TraceSession {
        let guard = SESSION.lock().unwrap_or_else(PoisonError::into_inner);
        // Discard anything buffered since the last session (spans that
        // closed after their session's drain, stale worker tails).
        let mut scratch = Vec::new();
        for buf in registry()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            scratch.clear();
            buf.drain(&mut scratch);
        }
        ENABLED.store(true, Ordering::Release);
        TraceSession { _guard: guard }
    }

    /// Closes the window and returns everything recorded inside it.
    /// Threads still running keep their rings (cheaply re-used by the
    /// next session); rings whose threads exited are garbage-collected.
    pub fn finish(self) -> Trace {
        ENABLED.store(false, Ordering::Release);
        let mut events = Vec::new();
        let mut dropped = 0u64;
        {
            let mut bufs = registry().lock().unwrap_or_else(PoisonError::into_inner);
            for buf in bufs.iter() {
                dropped += buf.drain(&mut events);
            }
            // Only the registry holds a ring whose thread is gone.
            bufs.retain(|b| Arc::strong_count(b) > 1);
        }
        events.sort_by_key(|e| (e.start_ns, u64::MAX - e.dur_ns));
        let lane_names = lane_names()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        Trace {
            events,
            dropped,
            lane_names,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_records_nothing() {
        let _ = span(Category::Record, "outside-session");
        instant(Category::Steal, "outside-session", 0, 0);
        let session = TraceSession::start();
        let trace = session.finish();
        assert!(
            trace.events.iter().all(|e| e.name != "outside-session"),
            "events recorded while disabled leaked into the session"
        );
    }

    #[test]
    fn session_captures_nested_spans_and_instants() {
        let session = TraceSession::start();
        {
            let mut outer = span(Category::RangeExec, "outer");
            outer.set_args(3, 9);
            instant(Category::Steal, "grab", 5, 7);
            let _inner = span(Category::RestoreChain, "inner");
        }
        let trace = session.finish();
        let outer = trace.events.iter().find(|e| e.name == "outer").unwrap();
        let inner = trace.events.iter().find(|e| e.name == "inner").unwrap();
        let grab = trace.events.iter().find(|e| e.name == "grab").unwrap();
        assert_eq!(outer.args, [3, 9]);
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(grab.kind, EventKind::Instant);
        assert_eq!(grab.args, [5, 7]);
        // Nesting: inner lies within outer on the shared timeline.
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
        assert_eq!(outer.lane, inner.lane);
    }

    #[test]
    fn cross_thread_events_get_distinct_lanes() {
        let session = TraceSession::start();
        let _main = span(Category::Record, "main-lane");
        std::thread::spawn(|| {
            set_lane(7, "worker-7");
            let _w = span(Category::RangeExec, "worker-lane");
        })
        .join()
        .unwrap();
        drop(_main);
        let trace = session.finish();
        let main_ev = trace.events.iter().find(|e| e.name == "main-lane").unwrap();
        let worker_ev = trace
            .events
            .iter()
            .find(|e| e.name == "worker-lane")
            .unwrap();
        assert_eq!(worker_ev.lane, 7);
        assert_ne!(main_ev.lane, worker_ev.lane);
        assert!(trace
            .lane_names
            .iter()
            .any(|(l, n)| *l == 7 && n == "worker-7"));
    }

    #[test]
    fn ring_overflow_drops_and_counts() {
        let session = TraceSession::start();
        for i in 0..(RING_CAP as u64 + 100) {
            instant(Category::Sim, "flood", i, 0);
        }
        let trace = session.finish();
        assert!(trace.dropped >= 100);
        assert!(trace.events.iter().filter(|e| e.name == "flood").count() <= RING_CAP);
    }

    #[test]
    fn disabled_path_overhead_is_noise() {
        // The contract the bench gates rely on: with tracing off, a span
        // is one relaxed load. Compare an instrumented spin loop against
        // a bare one; debug builds are slow, so the bound is generous —
        // the guard catches accidental clock reads or allocation (µs
        // scale), not nanosecond drift. Hold the session mutex so a
        // concurrent test cannot enable tracing mid-measurement.
        let _no_session = SESSION.lock().unwrap_or_else(PoisonError::into_inner);
        assert!(!enabled());
        let iters = 100_000u64;
        let spin = |instrumented: bool| -> u64 {
            let t0 = clock::now_ns();
            let mut acc = 0u64;
            for i in 0..iters {
                if instrumented {
                    let _s = span(Category::Record, "guard");
                }
                acc = acc.wrapping_add(i).rotate_left(7);
            }
            std::hint::black_box(acc);
            clock::since_ns(t0)
        };
        // Warm up, then take the best of 3 for each variant.
        let bare = (0..3).map(|_| spin(false)).min().unwrap();
        let instrumented = (0..3).map(|_| spin(true)).min().unwrap();
        let per_call = instrumented.saturating_sub(bare) / iters;
        assert!(
            per_call < 1_000,
            "disabled span costs {per_call}ns/call (bare {bare}ns, instrumented {instrumented}ns \
             for {iters} iters) — the disabled path must stay a single atomic load"
        );
    }
}
