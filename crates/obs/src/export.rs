//! Trace exporters: Chrome `trace_event` JSON and flamegraph-folded text.
//!
//! The Chrome format (load `chrome://tracing` or <https://ui.perfetto.dev>
//! and drop the file in) renders one horizontal lane per `tid`; we map
//! lanes to replay worker pids (plus role lanes for the merge driver and
//! materializer workers), so a traced query shows range execution, steals,
//! prefetch waits, chain restores, and group commits side by side on one
//! timeline. The folded form (`stack;frames;joined count`) feeds
//! `flamegraph.pl`-style tooling and sums *self* time per unique stack.

use crate::json::JsonWriter;
use crate::trace::{Event, EventKind, Trace};
use std::collections::BTreeMap;

impl Trace {
    /// Serializes as Chrome `trace_event` JSON (object form:
    /// `{"traceEvents": […]}` plus thread-name metadata per lane).
    pub fn to_chrome_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("traceEvents");
        w.begin_arr();
        // Lane metadata first: Chrome sorts and labels lanes from these.
        for (lane, name) in &self.lane_names {
            w.begin_obj();
            w.field_str("name", "thread_name");
            w.field_str("ph", "M");
            w.field_u64("pid", 1);
            w.field_u64("tid", u64::from(*lane));
            w.key("args");
            w.begin_obj();
            w.field_str("name", name);
            w.end_obj();
            w.end_obj();
        }
        for ev in &self.events {
            w.begin_obj();
            w.field_str("name", ev.name);
            w.field_str("cat", ev.cat.as_str());
            w.field_u64("pid", 1);
            w.field_u64("tid", u64::from(ev.lane));
            // Chrome timestamps are microseconds; keep ns precision with
            // fractional µs.
            w.field_f64("ts", ev.start_ns as f64 / 1000.0);
            match ev.kind {
                EventKind::Complete => {
                    w.field_str("ph", "X");
                    w.field_f64("dur", ev.dur_ns as f64 / 1000.0);
                }
                EventKind::Instant => {
                    w.field_str("ph", "i");
                    // Thread-scoped instant: draws on its lane only.
                    w.field_str("s", "t");
                }
            }
            w.key("args");
            w.begin_obj();
            w.field_u64("arg0", ev.args[0]);
            w.field_u64("arg1", ev.args[1]);
            w.field_u64("depth", u64::from(ev.depth));
            w.end_obj();
            w.end_obj();
        }
        w.end_arr();
        w.field_u64("droppedEvents", self.dropped);
        w.end_obj();
        w.finish()
    }

    /// Serializes as flamegraph-folded text: one `lane;frame;…;frame N`
    /// line per unique stack, where `N` is the stack's *self* time in ns
    /// (children subtracted). Stacks are reconstructed from span
    /// containment per lane; instants are skipped.
    pub fn to_folded(&self) -> String {
        // Self time per unique stack path. i128 because a child span can
        // transiently overdraw its parent before the parent's own
        // duration lands (clamped at emit).
        let mut self_ns: BTreeMap<String, i128> = BTreeMap::new();
        let mut lanes: BTreeMap<u32, Vec<&Event>> = BTreeMap::new();
        for ev in &self.events {
            if ev.kind == EventKind::Complete {
                lanes.entry(ev.lane).or_default().push(ev);
            }
        }
        for (lane, events) in &lanes {
            let label = self
                .lane_names
                .iter()
                .find(|(l, _)| l == lane)
                .map(|(_, n)| n.clone())
                .unwrap_or_else(|| format!("lane-{lane}"));
            // Events arrive sorted by (start, -dur): parents before their
            // children. Reconstruct stacks by interval containment.
            let mut stack: Vec<(u64, String)> = Vec::new(); // (end_ns, path)
            for ev in events {
                while let Some((end, _)) = stack.last() {
                    if *end <= ev.start_ns {
                        stack.pop();
                    } else {
                        break;
                    }
                }
                let path = match stack.last() {
                    Some((_, parent)) => format!("{parent};{}", ev.name),
                    None => format!("{label};{}", ev.name),
                };
                *self_ns.entry(path.clone()).or_insert(0) += i128::from(ev.dur_ns);
                if let Some((_, parent)) = stack.last() {
                    *self_ns.entry(parent.clone()).or_insert(0) -= i128::from(ev.dur_ns);
                }
                stack.push((ev.start_ns + ev.dur_ns, path));
            }
        }
        let mut out = String::new();
        for (path, ns) in &self_ns {
            out.push_str(path);
            out.push(' ');
            out.push_str(&ns.max(&0).to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};
    use crate::trace::Category;

    fn ev(
        lane: u32,
        name: &'static str,
        cat: Category,
        start: u64,
        dur: u64,
        kind: EventKind,
    ) -> Event {
        Event {
            cat,
            name,
            start_ns: start,
            dur_ns: dur,
            kind,
            args: [0; 2],
            lane,
            depth: 0,
        }
    }

    fn sample_trace() -> Trace {
        Trace {
            events: vec![
                ev(
                    0,
                    "range",
                    Category::RangeExec,
                    100,
                    1000,
                    EventKind::Complete,
                ),
                ev(
                    0,
                    "restore",
                    Category::RestoreChain,
                    200,
                    300,
                    EventKind::Complete,
                ),
                ev(1, "steal", Category::Steal, 450, 0, EventKind::Instant),
                ev(
                    1,
                    "range",
                    Category::RangeExec,
                    500,
                    400,
                    EventKind::Complete,
                ),
            ],
            dropped: 2,
            lane_names: vec![(0, "worker-0".into()), (1, "worker-1".into())],
        }
    }

    #[test]
    fn chrome_json_roundtrips_with_lanes_and_phases() {
        let trace = sample_trace();
        let v = parse(&trace.to_chrome_json()).expect("chrome JSON parses");
        let events = v.get("traceEvents").and_then(Json::as_arr).unwrap();
        // 2 thread_name metadata + 4 events.
        assert_eq!(events.len(), 6);
        let metas: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .collect();
        assert_eq!(metas.len(), 2);
        let complete: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(complete.len(), 3);
        // ns → fractional µs: 100ns start is ts 0.1.
        assert_eq!(complete[0].get("ts").and_then(Json::as_f64), Some(0.1));
        assert_eq!(complete[0].get("dur").and_then(Json::as_f64), Some(1.0));
        let instants: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("i"))
            .collect();
        assert_eq!(instants.len(), 1);
        assert_eq!(instants[0].get("tid").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("droppedEvents").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn folded_subtracts_child_self_time() {
        let trace = sample_trace();
        let folded = trace.to_folded();
        let lines: Vec<&str> = folded.lines().collect();
        // worker-0: range has restore nested inside → self 700, child 300.
        assert!(lines.contains(&"worker-0;range 700"), "folded:\n{folded}");
        assert!(
            lines.contains(&"worker-0;range;restore 300"),
            "folded:\n{folded}"
        );
        assert!(lines.contains(&"worker-1;range 400"), "folded:\n{folded}");
        // The instant contributes no folded line.
        assert_eq!(lines.len(), 3);
    }
}
