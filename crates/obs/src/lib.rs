//! Low-overhead observability for flor-rs: spans, metrics, trace export.
//!
//! The record hot path submits a checkpoint handle in ~2µs and the
//! segmented store serves a restore read in ~1µs — instrumentation that
//! costs a syscall (or even a clock read) per operation would show up in
//! the benches this repo gates on. This crate therefore splits the
//! problem:
//!
//! - [`trace`]: a span/event API behind one global flag. Disabled (the
//!   default), entering a span is a single relaxed atomic load — no clock,
//!   no allocation, no thread-local touch. Enabled (a
//!   [`TraceSession`](trace::TraceSession) is live), spans record into
//!   per-thread lock-free SPSC ring buffers and drain into a [`Trace`]
//!   that exports Chrome `trace_event` JSON (one lane per replay worker)
//!   or flamegraph-folded text.
//! - [`metrics`]: always-on named counters and log-bucketed latency
//!   histograms (O(1) relaxed atomic increments), snapshotted behind one
//!   [`MetricSnapshot`](metrics::MetricSnapshot).
//! - [`clock`]: the monotonic nanosecond clock every subsystem times with
//!   (`tools/ci.sh` lints raw `std::time::Instant` reads out of the hot
//!   paths).
//! - [`json`]: the one hand-rolled JSON writer/parser the exporters, the
//!   `--json` CLI surfaces, and the trace roundtrip tests share — the
//!   workspace is vendored-deps-only, so there is no serde.

#![warn(missing_docs)]

pub mod clock;
pub mod export;
pub mod json;
pub mod metrics;
pub mod trace;

pub use metrics::{HistogramSnapshot, MetricSnapshot};
pub use trace::{instant, set_lane, span, Category, Span, Trace, TraceSession};

/// Caches a `&'static` metric handle at the call site so hot paths skip
/// the registry lock after first use.
///
/// ```
/// let c = flor_obs::counter!("replay.restores");
/// c.add(1);
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __C: std::sync::OnceLock<&'static $crate::metrics::Counter> =
            std::sync::OnceLock::new();
        *__C.get_or_init(|| $crate::metrics::counter($name))
    }};
}

/// Caches a `&'static` histogram handle at the call site (see
/// [`counter!`]).
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __H: std::sync::OnceLock<&'static $crate::metrics::Histogram> =
            std::sync::OnceLock::new();
        *__H.get_or_init(|| $crate::metrics::histogram($name))
    }};
}
