//! One client's protocol session, independent of transport.
//!
//! The line protocol `flor serve` has always spoken on stdin/stdout is
//! handled here so the stdin adapter (`flor_cli::serve_io`) and the epoll
//! socket server ([`crate::server`]) share one implementation and cannot
//! drift byte-wise. A session owns its submitted jobs, its tenant
//! identity, its admission permits, and — for streamed queries — the
//! bounded per-job [`JobSink`]s that decouple replay workers from this
//! client's read pace.
//!
//! Verbs (one command per line, space-separated):
//!
//! - `runs` — list cataloged runs
//! - `query <run> <probed.flr> [priority]` — enqueue a replay job;
//!   results are reported by `drain`/`quit`
//! - `stream <run> <probed.flr> [priority]` — enqueue and stream results
//!   live as `+entry` / `+progress` / `+anomaly` / `+done <id> …` lines
//! - `watch <id>` — stream `+progress` / `+done` for an existing job
//! - `status <id>` / `cancel <id>` — poll or cancel (queued jobs cancel
//!   immediately; running jobs stop cooperatively mid-replay)
//! - `tenant <name>` — tag subsequent submissions for quotas + metrics
//! - `metrics [tenant]` — process-wide or per-tenant snapshot, one JSON
//!   line
//! - `drain` — block (stdin mode) or report-as-they-finish (socket mode)
//! - `quit` / EOF — drain, report, `# served N job(s)`, close
//!
//! # Trust model
//!
//! The protocol has no authentication and `query`/`stream` name probed
//! sources by *server-side filesystem path* — any peer that can connect
//! can submit work and learn whether a path it names is readable. The
//! service is built for analysts on the machine that holds the registry:
//! bind Unix sockets or loopback TCP (the defaults) and front anything
//! wider with an authenticating proxy. As a guard against a mistyped (or
//! hostile) path tying up the single dispatch thread, probed sources
//! larger than [`MAX_PROBED_SOURCE_BYTES`] are refused without reading.

use crate::admission::AdmissionController;
use crate::error::RegistryError;
use crate::scheduler::{
    CancelResult, JobEvent, JobId, JobSink, JobState, QueryJob, ReplayScheduler,
};
use crate::service::{QueryOutcome, Registry};
use std::collections::HashMap;
use std::sync::Arc;

/// Largest probed-source file `query`/`stream` will read. Probed training
/// scripts are kilobytes; the cap exists so a path pointing at a huge
/// file (datasets live next to registries) cannot stall the dispatch
/// thread or balloon server memory. Reads happen inline on the event
/// loop, so this bound is also the bound on dispatch latency.
pub const MAX_PROBED_SOURCE_BYTES: u64 = 1 << 20;

/// What the transport should do after a session call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionControl {
    /// Keep the connection open.
    Continue,
    /// The session is complete: flush pending output, then close.
    Quit,
}

struct JobView {
    sink: Arc<JobSink>,
    /// Emit `+entry` lines (the `stream` verb).
    emit_entries: bool,
    /// Emit `+progress`/`+anomaly`/`+done` lines (`stream` or `watch`).
    emit_events: bool,
    /// `+entry` lines written so far (catch-up index into the final log).
    entries_written: usize,
    /// Terminal state received from the sink, not yet fully rendered.
    pending_done: Option<JobState>,
    /// Terminal event fully rendered; nothing more will be emitted.
    finished: bool,
}

/// One client's protocol state machine (see the module docs).
pub struct ServeSession {
    registry: Arc<Registry>,
    scheduler: Arc<ReplayScheduler>,
    admission: Arc<AdmissionController>,
    wake: Arc<dyn Fn() + Send + Sync>,
    /// Stdin mode: `drain`/`quit` block on the scheduler and `stream`
    /// delivers after completion. Socket mode reports asynchronously via
    /// [`ServeSession::poll_events`].
    blocking: bool,
    /// Bound on each job sink's queued events (backpressure bucket).
    entry_cap: usize,
    tenant: String,
    submitted: Vec<JobId>,
    views: HashMap<JobId, JobView>,
    /// Jobs holding an admission slot, by submitting tenant.
    permits: HashMap<JobId, String>,
    reported: usize,
    /// `drain` was issued: report completions as they land (socket mode).
    draining: bool,
    quitting: bool,
    finished: bool,
}

impl ServeSession {
    /// Creates a session. `wake` fires whenever one of this session's job
    /// sinks receives an event — a socket server passes its poller waker,
    /// the stdin adapter a no-op.
    pub fn new(
        registry: Arc<Registry>,
        scheduler: Arc<ReplayScheduler>,
        admission: Arc<AdmissionController>,
        blocking: bool,
        entry_cap: usize,
        wake: impl Fn() + Send + Sync + 'static,
    ) -> ServeSession {
        ServeSession {
            registry,
            scheduler,
            admission,
            wake: Arc::new(wake),
            blocking,
            entry_cap: entry_cap.max(1),
            tenant: String::new(),
            submitted: Vec::new(),
            views: HashMap::new(),
            permits: HashMap::new(),
            reported: 0,
            draining: false,
            quitting: false,
            finished: false,
        }
    }

    /// The scheduler this session submits to.
    pub fn scheduler(&self) -> &Arc<ReplayScheduler> {
        &self.scheduler
    }

    /// Jobs this session submitted.
    pub fn submitted_jobs(&self) -> &[JobId] {
        &self.submitted
    }

    /// Handles one protocol line, appending output lines to `out`.
    pub fn handle_line(
        &mut self,
        line: &str,
        out: &mut Vec<String>,
    ) -> Result<SessionControl, RegistryError> {
        let _span = flor_obs::span(flor_obs::Category::Serve, "dispatch");
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            [] => {}
            ["quit"] | ["exit"] => {
                self.quitting = true;
                if self.blocking {
                    self.scheduler.drain();
                }
                return self.poll_events(out);
            }
            ["runs"] => {
                for r in self.registry.runs() {
                    out.push(format!(
                        "run {:?} gen {} iters {} ckpts {}",
                        r.run_id, r.generation, r.iterations, r.checkpoints
                    ));
                }
            }
            // Malformed commands report and keep serving: a typo from one
            // user must not kill a server with other users' jobs queued.
            ["query", run_id, path, rest @ ..] => {
                self.submit(run_id, path, rest, false, out)?;
            }
            ["stream", run_id, path, rest @ ..] => {
                self.submit(run_id, path, rest, true, out)?;
            }
            ["watch", id] => match id.parse::<JobId>() {
                Err(_) => out.push(format!("bad job id {id:?}")),
                Ok(id) => match self.views.get_mut(&id) {
                    None => out.push(format!("job {id}: unknown")),
                    Some(view) => {
                        view.emit_events = true;
                        out.push(format!("watching job {id}"));
                        if self.blocking {
                            self.scheduler.wait(id)?;
                            self.pump_job_to_end(id, out);
                        }
                    }
                },
            },
            ["tenant", name] => {
                if name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
                    && !name.is_empty()
                {
                    self.tenant = name.to_string();
                    out.push(format!("tenant set: {name:?}"));
                } else {
                    out.push(format!("bad tenant {name:?} (alphanumeric, '-', '_' only)"));
                }
            }
            ["metrics"] => {
                // One JSON line: counters and latency histograms for every
                // instrumented subsystem, via the shared serializer.
                out.push(self.registry.metrics_snapshot().to_json());
            }
            ["metrics", tenant] => {
                out.push(self.registry.tenant_metrics_snapshot(tenant).to_json());
            }
            ["status", id] => match id.parse::<JobId>() {
                Err(_) => out.push(format!("bad job id {id:?}")),
                Ok(id) => match self.scheduler.status(id) {
                    None => out.push(format!("job {id}: unknown")),
                    Some(JobState::Completed(o)) => {
                        out.push(format!("job {id}: completed ({} entries)", o.log.len()))
                    }
                    Some(JobState::Running) => {
                        let p = self.scheduler.progress(id).unwrap_or_default();
                        // Prose over the same `(name, value)` list
                        // `JobProgress::fields` exposes — a counter
                        // renamed or dropped there panics here instead
                        // of silently drifting between surfaces.
                        let fields = p.fields();
                        let f = |name: &str| -> u64 {
                            fields
                                .iter()
                                .find(|(n, _)| *n == name)
                                .map(|(_, v)| *v)
                                .unwrap_or_else(|| panic!("JobProgress::fields lost {name:?}"))
                        };
                        out.push(format!(
                            "job {id}: running ({}/{} iterations, {} steal(s), \
                             {} entries streamed, {} stmt(s) elided, {:.1}ms elapsed)",
                            f("iterations_done"),
                            f("iterations_total"),
                            f("steals"),
                            f("entries_streamed"),
                            f("statements_elided"),
                            f("wall_ns") as f64 / 1e6
                        ))
                    }
                    Some(s) => out.push(format!("job {id}: {s:?}")),
                },
            },
            ["cancel", id] => match id.parse::<JobId>() {
                Err(_) => out.push(format!("bad job id {id:?}")),
                Ok(id) => {
                    let verdict = match self.scheduler.cancel_job(id) {
                        CancelResult::Cancelled => "cancelled",
                        CancelResult::CancelRequested => "cancel requested",
                        CancelResult::NotCancellable => "not cancellable",
                    };
                    if !self.tenant.is_empty() {
                        flor_obs::metrics::counter_named(&format!(
                            "tenant.{}.cancels",
                            self.tenant
                        ))
                        .inc();
                    }
                    out.push(format!("job {id}: {verdict}"));
                }
            },
            ["drain"] => {
                self.draining = true;
                if self.blocking {
                    self.scheduler.drain();
                }
                // Blocking: every job is terminal, so this reports all of
                // them. Socket mode: reports what has finished so far and
                // the rest as completions land (poll_events).
                return self.poll_events(out);
            }
            other => out.push(format!("unknown command {:?}", other.join(" "))),
        }
        Ok(SessionControl::Continue)
    }

    /// Parses and submits a `query`/`stream` line.
    fn submit(
        &mut self,
        run_id: &str,
        path: &str,
        rest: &[&str],
        streaming: bool,
        out: &mut Vec<String>,
    ) -> Result<(), RegistryError> {
        let verb = if streaming { "stream" } else { "query" };
        let priority: i32 = match rest {
            [] => 0,
            [p] => match p.parse() {
                Ok(p) => p,
                Err(_) => {
                    out.push(format!("bad priority {p:?}"));
                    return Ok(());
                }
            },
            _ => {
                out.push(format!("{verb} takes at most 3 arguments"));
                return Ok(());
            }
        };
        match std::fs::metadata(path) {
            Ok(m) if m.len() > MAX_PROBED_SOURCE_BYTES => {
                out.push(format!(
                    "cannot read {path}: {} bytes exceeds the {} byte probed-source limit",
                    m.len(),
                    MAX_PROBED_SOURCE_BYTES
                ));
                return Ok(());
            }
            _ => {} // missing/unreadable paths error uniformly below
        }
        let probed_source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                out.push(format!("cannot read {path}: {e}"));
                return Ok(());
            }
        };
        if let Err(reason) = self.admission.try_admit(&self.tenant, &self.scheduler) {
            out.push(reason);
            return Ok(());
        }
        if !self.tenant.is_empty() {
            flor_obs::metrics::counter_named(&format!("tenant.{}.queries", self.tenant)).inc();
        }
        let wake = self.wake.clone();
        let sink = Arc::new(JobSink::new(streaming, self.entry_cap, move || wake()));
        let job = QueryJob {
            run_id: run_id.to_string(),
            probed_source,
            workers: 1,
            priority,
            tenant: self.tenant.clone(),
        };
        let id = match self.scheduler.submit_with_sink(job, sink.clone()) {
            Ok(id) => id,
            Err(e) => {
                // A full queue sheds this submission; the session lives on.
                self.admission.release(&self.tenant);
                out.push(format!("submit failed: {e}"));
                return Ok(());
            }
        };
        self.submitted.push(id);
        self.views.insert(
            id,
            JobView {
                sink,
                emit_entries: streaming,
                emit_events: streaming,
                entries_written: 0,
                pending_done: None,
                finished: false,
            },
        );
        self.permits.insert(id, self.tenant.clone());
        out.push(format!(
            "queued job {id}: run {run_id:?} priority {priority}"
        ));
        if streaming && self.blocking {
            // Stdin mode has no event loop: deliver the stream after the
            // job completes (record order is preserved either way).
            self.scheduler.wait(id)?;
            self.pump_job_to_end(id, out);
        }
        Ok(())
    }

    /// Blocking-mode delivery: the job is terminal, so repeated pumps
    /// (each capped at `entry_cap` catch-up entries) run to the `+done`
    /// line without an event loop to re-poll.
    fn pump_job_to_end(&mut self, id: JobId, out: &mut Vec<String>) {
        while self.views.get(&id).is_some_and(|v| !v.finished) {
            self.pump_job(id, out);
        }
    }

    /// Drains every job sink and the in-order completion report; returns
    /// `Quit` once a requested quit has nothing left to deliver. Socket
    /// transports call this whenever the session's waker fired (and on
    /// ticks); the stdin adapter reaches it via `drain`/`quit`.
    pub fn poll_events(&mut self, out: &mut Vec<String>) -> Result<SessionControl, RegistryError> {
        for i in 0..self.submitted.len() {
            let id = self.submitted[i];
            self.pump_job(id, out);
        }
        // In-order completion report (the `drain` / `quit` contract).
        if self.quitting || self.draining || self.blocking {
            while self.reported < self.submitted.len() {
                let id = self.submitted[self.reported];
                match self.scheduler.status(id) {
                    Some(JobState::Completed(o)) => out.push(format!(
                        "job {id} done: run {:?} {} ({}), {} entries, {} anomalies",
                        o.run_id,
                        o.key,
                        if o.cached { "cached" } else { "fresh" },
                        o.log.len(),
                        o.anomalies.len()
                    )),
                    Some(JobState::Failed(e)) => out.push(format!("job {id} FAILED: {e}")),
                    Some(JobState::Cancelled) => out.push(format!("job {id} cancelled")),
                    Some(JobState::Queued | JobState::Running) => break,
                    None => break,
                }
                self.note_terminal(id);
                self.reported += 1;
            }
        }
        if self.quitting
            && self.reported == self.submitted.len()
            && self.submitted.iter().all(|id| {
                self.views
                    .get(id)
                    .map(|v| v.finished || !v.emit_events)
                    .unwrap_or(true)
            })
        {
            if !self.finished {
                self.finished = true;
                out.push(format!("# served {} job(s)", self.submitted.len()));
            }
            return Ok(SessionControl::Quit);
        }
        Ok(SessionControl::Continue)
    }

    /// EOF on the input: same contract as `quit`.
    pub fn finish(&mut self, out: &mut Vec<String>) -> Result<SessionControl, RegistryError> {
        self.quitting = true;
        if self.blocking {
            self.scheduler.drain();
        }
        self.poll_events(out)
    }

    /// The connection died. Cancels this session's non-terminal jobs
    /// (queued ones immediately, running ones cooperatively) and returns
    /// every admission slot it still holds — a vanished client must not
    /// pin quota or burn replay workers.
    pub fn abort(&mut self) {
        for &id in &self.submitted {
            match self.scheduler.status(id) {
                Some(s) if s.is_terminal() => {}
                Some(_) => {
                    self.scheduler.cancel_job(id);
                }
                None => {}
            }
        }
        let permits: Vec<(JobId, String)> = self.permits.drain().collect();
        for (_, tenant) in permits {
            self.admission.release(&tenant);
        }
    }

    /// Releases the admission slot of a now-terminal job (idempotent).
    fn note_terminal(&mut self, id: JobId) {
        if let Some(tenant) = self.permits.remove(&id) {
            self.admission.release(&tenant);
        }
    }

    /// Drains one job's sink into protocol lines per its view flags.
    fn pump_job(&mut self, id: JobId, out: &mut Vec<String>) {
        let cap = self.entry_cap;
        let Some(view) = self.views.get_mut(&id) else {
            return;
        };
        if view.finished {
            return;
        }
        for ev in view.sink.drain() {
            match ev {
                JobEvent::Entries(chunk) => {
                    if view.emit_entries {
                        for e in &chunk {
                            out.push(format!("+entry {id} {e}"));
                        }
                        view.entries_written += chunk.len();
                    }
                }
                JobEvent::Progress(p) => {
                    if view.emit_events {
                        let kv: Vec<String> =
                            p.fields().iter().map(|(k, v)| format!("{k}={v}")).collect();
                        out.push(format!("+progress {id} {}", kv.join(" ")));
                    }
                }
                JobEvent::Anomaly(a) => {
                    if view.emit_events {
                        out.push(format!("+anomaly {id} {a}"));
                    }
                }
                JobEvent::Done(state) => {
                    view.pending_done = Some(state);
                }
            }
        }
        // Render a terminal state: catch up entries the bounded sink
        // dropped (at most `entry_cap` per poll, so one slow stream can't
        // flood the write buffer), then the `+done` line.
        if let Some(state) = view.pending_done.take() {
            let mut still_pending = false;
            if view.emit_entries {
                if let JobState::Completed(o) = &state {
                    let end = o.log.len().min(view.entries_written + cap);
                    for e in &o.log[view.entries_written.min(o.log.len())..end] {
                        out.push(format!("+entry {id} {e}"));
                    }
                    view.entries_written = end;
                    still_pending = end < o.log.len();
                }
            }
            if still_pending {
                view.pending_done = Some(state);
                // More catch-up next poll; re-fire the waker so the
                // transport comes back without waiting for a tick.
                (self.wake)();
            } else {
                if view.emit_events {
                    out.push(match &state {
                        JobState::Completed(o) => format!(
                            "+done {id} run {:?} {} ({}), {} entries, {} anomalies",
                            o.run_id,
                            o.key,
                            if o.cached { "cached" } else { "fresh" },
                            o.log.len(),
                            o.anomalies.len()
                        ),
                        JobState::Failed(e) => format!("+done {id} FAILED: {e}"),
                        JobState::Cancelled => format!("+done {id} cancelled"),
                        JobState::Queued | JobState::Running => {
                            unreachable!("Done carries a terminal state")
                        }
                    });
                }
                view.finished = true;
                self.note_terminal(id);
            }
        }
    }
}

/// First-entry helper shared by transports: the banner line `flor serve`
/// prints on startup (and the socket server on accept).
pub fn banner(registry_root: &std::path::Path, pool_size: usize) -> String {
    format!(
        "# serving registry {} with {} replay workers",
        registry_root.display(),
        pool_size
    )
}

/// Convenience used by tests and `QueryOutcome` consumers: the drain
/// report line for a completed job (the exact bytes `drain` emits).
pub fn done_line(id: JobId, o: &QueryOutcome) -> String {
    format!(
        "job {id} done: run {:?} {} ({}), {} entries, {} anomalies",
        o.run_id,
        o.key,
        if o.cached { "cached" } else { "fresh" },
        o.log.len(),
        o.anomalies.len()
    )
}
