//! The run catalog: a persistent, versioned index over many recorded runs.
//!
//! Storage is a single append-only `CATALOG` file at the registry root, in
//! the style of `flor_chkpt::store`'s MANIFEST: one record per line, each
//! line independently CRC-protected so corruption is detected at open
//! time instead of surfacing as wrong query answers later.
//!
//! ```text
//! R1<TAB><crc32 of payload><TAB><payload>
//! payload = run_id  generation  source_version  store_root  iterations
//!           checkpoints  raw_bytes  stored_bytes  record_overhead
//!           scaling_c          (tab-separated)
//! ```
//!
//! Re-registering a run id appends a new **generation** rather than
//! rewriting history — the catalog is a log, and `latest` resolves the
//! current view. A torn final line (a crash mid-append) fails its CRC and
//! is dropped on load; a bad CRC anywhere *before* the final line is real
//! corruption and refuses to load.

use crate::error::RegistryError;
use flor_chkpt::store::crc32;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// One cataloged run generation.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// User-facing run identifier.
    pub run_id: String,
    /// 0-based registration generation for this run id.
    pub generation: u64,
    /// Fingerprint of the recorded source (`flor_core::record::source_version`).
    pub source_version: String,
    /// Root directory of the run's checkpoint store.
    pub store_root: PathBuf,
    /// Main-loop iterations observed at record time.
    pub iterations: u64,
    /// Checkpoints materialized.
    pub checkpoints: u64,
    /// Uncompressed checkpoint bytes.
    pub raw_bytes: u64,
    /// Compressed bytes on disk.
    pub stored_bytes: u64,
    /// Adaptive-controller stat: cumulative record overhead.
    pub record_overhead: f64,
    /// Adaptive-controller stat: final restore/materialize scaling factor.
    pub scaling_c: f64,
}

impl RunRecord {
    /// String and numeric fields in presentation order — the single source
    /// both [`RunRecord::to_json`] and the CLI's pretty `runs show` iterate,
    /// so the two surfaces cannot drift.
    #[allow(clippy::type_complexity)]
    pub fn fields(&self) -> (Vec<(&'static str, String)>, Vec<(&'static str, f64)>) {
        (
            vec![
                ("run_id", self.run_id.clone()),
                ("source_version", self.source_version.clone()),
                ("store_root", self.store_root.display().to_string()),
            ],
            vec![
                ("generation", self.generation as f64),
                ("iterations", self.iterations as f64),
                ("checkpoints", self.checkpoints as f64),
                ("raw_bytes", self.raw_bytes as f64),
                ("stored_bytes", self.stored_bytes as f64),
                ("record_overhead", self.record_overhead),
                ("scaling_c", self.scaling_c),
            ],
        )
    }

    /// Serializes through the shared [`flor_obs::json::JsonWriter`] — the
    /// payload of `flor runs show --json`.
    pub fn to_json(&self) -> String {
        let mut w = flor_obs::json::JsonWriter::new();
        w.begin_obj();
        let (strings, nums) = self.fields();
        for (name, v) in &strings {
            w.field_str(name, v);
        }
        for (name, v) in &nums {
            w.field_f64(name, *v);
        }
        w.end_obj();
        w.finish()
    }

    fn to_payload(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            self.run_id,
            self.generation,
            self.source_version,
            self.store_root.display(),
            self.iterations,
            self.checkpoints,
            self.raw_bytes,
            self.stored_bytes,
            self.record_overhead,
            self.scaling_c,
        )
    }

    fn from_payload(payload: &str, line: usize) -> Result<Self, RegistryError> {
        let bad = |d: &str| RegistryError::Corrupt {
            line,
            detail: d.to_string(),
        };
        let parts: Vec<&str> = payload.split('\t').collect();
        if parts.len() != 10 {
            return Err(bad(&format!("expected 10 fields, got {}", parts.len())));
        }
        Ok(RunRecord {
            run_id: parts[0].to_string(),
            generation: parts[1].parse().map_err(|_| bad("bad generation"))?,
            source_version: parts[2].to_string(),
            store_root: PathBuf::from(parts[3]),
            iterations: parts[4].parse().map_err(|_| bad("bad iterations"))?,
            checkpoints: parts[5].parse().map_err(|_| bad("bad checkpoints"))?,
            raw_bytes: parts[6].parse().map_err(|_| bad("bad raw_bytes"))?,
            stored_bytes: parts[7].parse().map_err(|_| bad("bad stored_bytes"))?,
            record_overhead: parts[8].parse().map_err(|_| bad("bad record_overhead"))?,
            scaling_c: parts[9].parse().map_err(|_| bad("bad scaling_c"))?,
        })
    }
}

struct CatalogState {
    /// run_id → generations, in registration order.
    runs: BTreeMap<String, Vec<RunRecord>>,
    /// Total lines appended (for line numbers in later errors).
    lines: usize,
}

/// The persistent run catalog.
pub struct RunCatalog {
    path: PathBuf,
    state: Mutex<CatalogState>,
    /// True when load dropped a torn (CRC-failing) final line.
    recovered_torn_tail: bool,
}

impl RunCatalog {
    /// Opens (or creates) the catalog file at `path`.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, RegistryError> {
        let path = path.into();
        let mut runs: BTreeMap<String, Vec<RunRecord>> = BTreeMap::new();
        let mut lines = 0usize;
        let mut recovered_torn_tail = false;
        let mut tail_unterminated = false;
        if path.exists() {
            let text = fs::read_to_string(&path)?;
            let raw: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
            // A crash mid-append leaves a final line without its newline;
            // only such a tail is recoverable. A malformed complete line is
            // corruption.
            tail_unterminated = !text.is_empty() && !text.ends_with('\n');
            for (i, line) in raw.iter().enumerate() {
                let lineno = i + 1;
                let is_last = i + 1 == raw.len();
                match Self::parse_line(line, lineno) {
                    Ok(rec) => {
                        lines += 1;
                        runs.entry(rec.run_id.clone()).or_default().push(rec);
                    }
                    Err(e) => {
                        if is_last && tail_unterminated {
                            recovered_torn_tail = true;
                        } else {
                            return Err(e);
                        }
                    }
                }
            }
        }
        let catalog = RunCatalog {
            path,
            state: Mutex::new(CatalogState { runs, lines }),
            recovered_torn_tail,
        };
        // Repair whenever the tail lacks its newline — even if the final
        // line parsed (a crash can cut exactly at the newline). A later
        // append would otherwise concatenate onto the unterminated line and
        // turn recoverable damage into fatal interior corruption.
        if recovered_torn_tail || tail_unterminated {
            catalog.rewrite()?;
        }
        Ok(catalog)
    }

    /// Rewrites the catalog from memory, crash-safely (temp + rename).
    fn rewrite(&self) -> Result<(), RegistryError> {
        let mut text = String::new();
        {
            let state = self.state.lock();
            for gens in state.runs.values() {
                for rec in gens {
                    let payload = rec.to_payload();
                    text.push_str(&format!("R1\t{}\t{payload}\n", crc32(payload.as_bytes())));
                }
            }
        }
        flor_chkpt::store::write_atomic(&self.path, text.as_bytes())?;
        Ok(())
    }

    fn parse_line(line: &str, lineno: usize) -> Result<RunRecord, RegistryError> {
        let bad = |d: String| RegistryError::Corrupt {
            line: lineno,
            detail: d,
        };
        let rest = line
            .strip_prefix("R1\t")
            .ok_or_else(|| bad(format!("unknown record tag in {line:?}")))?;
        let (crc_str, payload) = rest
            .split_once('\t')
            .ok_or_else(|| bad("missing crc field".into()))?;
        let want: u32 = crc_str
            .parse()
            .map_err(|_| bad(format!("bad crc field {crc_str:?}")))?;
        let got = crc32(payload.as_bytes());
        if want != got {
            return Err(bad(format!("crc mismatch: stored {want}, computed {got}")));
        }
        RunRecord::from_payload(payload, lineno)
    }

    /// True when the last load dropped a torn trailing line (crash
    /// recovery happened).
    pub fn recovered_torn_tail(&self) -> bool {
        self.recovered_torn_tail
    }

    /// Appends a new generation for `record.run_id` and returns the record
    /// with its assigned generation. Fields containing reserved characters
    /// (tab, newline) are rejected.
    pub fn register(&self, mut record: RunRecord) -> Result<RunRecord, RegistryError> {
        for (what, s) in [
            ("run id", record.run_id.as_str()),
            ("source version", record.source_version.as_str()),
        ] {
            if s.is_empty() || s.contains(['\t', '\n']) {
                return Err(RegistryError::BadRegistration(format!(
                    "{what} {s:?} is empty or contains reserved characters"
                )));
            }
        }
        if record.store_root.to_string_lossy().contains(['\t', '\n']) {
            return Err(RegistryError::BadRegistration(
                "store root contains reserved characters".into(),
            ));
        }
        let mut state = self.state.lock();
        record.generation = state
            .runs
            .get(&record.run_id)
            .map(|gens| gens.len() as u64)
            .unwrap_or(0);
        let payload = record.to_payload();
        let line = format!("R1\t{}\t{payload}\n", crc32(payload.as_bytes()));
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        // One write_all of the whole line: O_APPEND keeps concurrent
        // registrations from interleaving; a crash mid-write leaves a torn
        // tail that the next open detects by CRC and drops.
        f.write_all(line.as_bytes())?;
        state.lines += 1;
        state
            .runs
            .entry(record.run_id.clone())
            .or_default()
            .push(record.clone());
        Ok(record)
    }

    /// Latest generation of `run_id`.
    pub fn latest(&self, run_id: &str) -> Option<RunRecord> {
        self.state
            .lock()
            .runs
            .get(run_id)
            .and_then(|g| g.last().cloned())
    }

    /// All generations of `run_id`, oldest first.
    pub fn history(&self, run_id: &str) -> Vec<RunRecord> {
        self.state
            .lock()
            .runs
            .get(run_id)
            .cloned()
            .unwrap_or_default()
    }

    /// Latest generation of every run, sorted by run id.
    pub fn runs(&self) -> Vec<RunRecord> {
        self.state
            .lock()
            .runs
            .values()
            .filter_map(|g| g.last().cloned())
            .collect()
    }

    /// Number of distinct run ids.
    pub fn len(&self) -> usize {
        self.state.lock().runs.len()
    }

    /// True when no runs are cataloged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Catalog file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Generations of `run_id` whose checkpoint stores a retention policy
    /// allows reclaiming, oldest first. The catalog itself is an
    /// append-only log and keeps every generation's *metadata*; retention
    /// governs which generations' *store directories* may be deleted
    /// (dropped generations are then rewritten out of disk by the
    /// registry's GC, the catalog's analogue of the store engine's
    /// compaction).
    pub fn prunable(&self, run_id: &str, policy: &RetentionPolicy) -> Vec<RunRecord> {
        let history = self.history(run_id);
        let keep = policy.keep_latest.max(1);
        if history.len() <= keep {
            return Vec::new();
        }
        history[..history.len() - keep].to_vec()
    }
}

/// Which generations of a run keep their checkpoint stores on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// Keep the newest `keep_latest` generations (at least 1 — the live
    /// generation is never prunable).
    pub keep_latest: usize,
}

impl Default for RetentionPolicy {
    /// Keep everything but the live generation's predecessors beyond one
    /// spare (the previous generation stays replayable for comparisons).
    fn default() -> Self {
        RetentionPolicy { keep_latest: 2 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "flor-catalog-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("CATALOG")
    }

    fn rec(id: &str, iters: u64) -> RunRecord {
        RunRecord {
            run_id: id.into(),
            generation: 0,
            source_version: "abcd0123abcd0123".into(),
            store_root: PathBuf::from(format!("/tmp/stores/{id}")),
            iterations: iters,
            checkpoints: iters,
            raw_bytes: 1000 * iters,
            stored_bytes: 100 * iters,
            record_overhead: 0.031,
            scaling_c: 1.7,
        }
    }

    #[test]
    fn prunable_generations_respect_the_retention_policy() {
        let cat = RunCatalog::open(tmpfile("prunable")).unwrap();
        for _ in 0..4 {
            cat.register(rec("alice", 6)).unwrap();
        }
        let policy = RetentionPolicy { keep_latest: 2 };
        let prunable = cat.prunable("alice", &policy);
        assert_eq!(
            prunable.iter().map(|r| r.generation).collect::<Vec<_>>(),
            vec![0, 1],
            "oldest first, newest two kept"
        );
        // The live generation is never prunable, even at keep_latest=0.
        let all_but_live = cat.prunable("alice", &RetentionPolicy { keep_latest: 0 });
        assert_eq!(all_but_live.len(), 3);
        // Unknown runs and short histories prune nothing.
        assert!(cat.prunable("nobody", &policy).is_empty());
        let cat2 = RunCatalog::open(tmpfile("prunable-short")).unwrap();
        cat2.register(rec("bob", 1)).unwrap();
        assert!(cat2.prunable("bob", &policy).is_empty());
    }

    #[test]
    fn register_then_reload_survives_restart() {
        let path = tmpfile("reload");
        {
            let cat = RunCatalog::open(&path).unwrap();
            cat.register(rec("alice", 6)).unwrap();
            cat.register(rec("bob", 12)).unwrap();
        }
        let cat = RunCatalog::open(&path).unwrap();
        assert_eq!(cat.len(), 2);
        let alice = cat.latest("alice").unwrap();
        assert_eq!(alice.iterations, 6);
        assert_eq!(alice.store_root, PathBuf::from("/tmp/stores/alice"));
        assert!((alice.record_overhead - 0.031).abs() < 1e-12);
    }

    #[test]
    fn reregistration_appends_generations() {
        let cat = RunCatalog::open(tmpfile("gens")).unwrap();
        let g0 = cat.register(rec("alice", 6)).unwrap();
        let g1 = cat.register(rec("alice", 9)).unwrap();
        assert_eq!(g0.generation, 0);
        assert_eq!(g1.generation, 1);
        assert_eq!(cat.latest("alice").unwrap().iterations, 9);
        assert_eq!(cat.history("alice").len(), 2);
        assert_eq!(cat.runs().len(), 1, "runs() reports one entry per id");
    }

    #[test]
    fn torn_final_line_is_dropped_not_fatal() {
        let path = tmpfile("torn");
        {
            let cat = RunCatalog::open(&path).unwrap();
            cat.register(rec("alice", 6)).unwrap();
            cat.register(rec("bob", 12)).unwrap();
        }
        // Simulate a crash mid-append: truncate the last line.
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() - 10]).unwrap();
        let cat = RunCatalog::open(&path).unwrap();
        assert!(cat.recovered_torn_tail());
        assert_eq!(cat.len(), 1, "torn bob record dropped");
        assert!(cat.latest("alice").is_some());
    }

    #[test]
    fn registration_after_torn_tail_recovery_stays_clean() {
        // The recovery rewrite must remove the torn fragment; otherwise the
        // next append concatenates onto it and the file becomes fatally
        // corrupt at its NEXT open.
        let path = tmpfile("torn-then-append");
        {
            let cat = RunCatalog::open(&path).unwrap();
            cat.register(rec("alice", 6)).unwrap();
            cat.register(rec("bob", 12)).unwrap();
        }
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() - 9]).unwrap();
        {
            let cat = RunCatalog::open(&path).unwrap();
            assert!(cat.recovered_torn_tail());
            cat.register(rec("carol", 3)).unwrap();
        }
        let cat = RunCatalog::open(&path).unwrap();
        assert!(!cat.recovered_torn_tail(), "file was repaired");
        assert_eq!(cat.len(), 2);
        assert!(cat.latest("alice").is_some());
        assert!(cat.latest("carol").is_some());
    }

    #[test]
    fn tail_cut_exactly_at_newline_is_repaired_before_next_append() {
        let path = tmpfile("newline-cut");
        {
            let cat = RunCatalog::open(&path).unwrap();
            cat.register(rec("alice", 6)).unwrap();
        }
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'));
        fs::write(&path, &text[..text.len() - 1]).unwrap();
        {
            let cat = RunCatalog::open(&path).unwrap();
            assert_eq!(cat.len(), 1, "parseable tail record kept");
            cat.register(rec("bob", 2)).unwrap();
        }
        let cat = RunCatalog::open(&path).unwrap();
        assert_eq!(cat.len(), 2);
        assert!(cat.latest("alice").is_some());
        assert!(cat.latest("bob").is_some());
    }

    #[test]
    fn interior_corruption_is_fatal() {
        let path = tmpfile("corrupt");
        {
            let cat = RunCatalog::open(&path).unwrap();
            cat.register(rec("alice", 6)).unwrap();
            cat.register(rec("bob", 12)).unwrap();
        }
        // Flip a byte inside the FIRST line's payload.
        let mut bytes = fs::read(&path).unwrap();
        let idx = 20;
        bytes[idx] = if bytes[idx] == b'0' { b'1' } else { b'0' };
        fs::write(&path, &bytes).unwrap();
        match RunCatalog::open(&path) {
            Err(RegistryError::Corrupt { line: 1, .. }) => {}
            other => panic!(
                "expected Corrupt at line 1, got {other:?}",
                other = other.err()
            ),
        }
    }

    #[test]
    fn reserved_characters_rejected() {
        let cat = RunCatalog::open(tmpfile("reserved")).unwrap();
        let mut bad = rec("with\ttab", 1);
        assert!(matches!(
            cat.register(bad.clone()),
            Err(RegistryError::BadRegistration(_))
        ));
        bad.run_id = String::new();
        assert!(matches!(
            cat.register(bad),
            Err(RegistryError::BadRegistration(_))
        ));
    }

    #[test]
    fn concurrent_registrations_all_land() {
        let cat = std::sync::Arc::new(RunCatalog::open(tmpfile("concurrent")).unwrap());
        let mut handles = Vec::new();
        for t in 0..4 {
            let cat = cat.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..8 {
                    cat.register(rec(&format!("run-{t}-{i}"), i)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cat.len(), 32);
        // And the file itself reloads cleanly.
        let reloaded = RunCatalog::open(cat.path()).unwrap();
        assert_eq!(reloaded.len(), 32);
        assert!(!reloaded.recovered_torn_tail());
    }
}
