//! Admission control for the multi-tenant query service.
//!
//! Replay is CPU-bound, so a serving deployment protects itself at the
//! door rather than at the worker pool: per-tenant token buckets bound
//! sustained submission rates, per-tenant concurrent-job limits keep one
//! tenant from monopolizing the scheduler, a global queue-depth cap
//! bounds memory, and backlog shedding — estimated as
//! `queued_jobs × p50(scheduler.job_ns)` from the live metrics — refuses
//! work that would sit in the queue longer than the configured budget.
//! Every rejection is a one-line protocol error to exactly one client;
//! admitted jobs are never preempted.

use crate::scheduler::ReplayScheduler;
use std::collections::HashMap;
use std::sync::Mutex;

/// Limits enforced by [`AdmissionController::try_admit`]. Zero disables
/// the corresponding check, so [`AdmissionPolicy::unlimited`] admits
/// everything — the stdin serve mode's byte-compatible default.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionPolicy {
    /// Maximum jobs waiting in the scheduler queue (0 = unlimited).
    pub max_queue_depth: usize,
    /// Maximum non-terminal jobs per tenant (0 = unlimited).
    pub max_tenant_jobs: usize,
    /// Token-bucket capacity per tenant: a tenant may burst this many
    /// submissions before the refill rate gates it (0 = unlimited).
    pub tenant_burst: u64,
    /// Token-bucket refill, tokens per second (with `tenant_burst > 0`).
    pub tenant_refill_per_sec: f64,
    /// Estimated queue backlog budget, ms: submissions are shed while
    /// `queued × p50(scheduler.job_ns)` exceeds it (0 = unlimited). Falls
    /// back to `replay.restore_ns`'s p50 before any job has completed,
    /// and admits when neither histogram has samples yet.
    pub max_backlog_ms: u64,
}

impl AdmissionPolicy {
    /// Admit everything (every limit disabled).
    pub fn unlimited() -> AdmissionPolicy {
        AdmissionPolicy {
            max_queue_depth: 0,
            max_tenant_jobs: 0,
            tenant_burst: 0,
            tenant_refill_per_sec: 0.0,
            max_backlog_ms: 0,
        }
    }
}

struct TenantState {
    tokens: f64,
    last_refill_ns: u64,
    active_jobs: usize,
}

/// Enforces an [`AdmissionPolicy`] over the tenants of one server.
pub struct AdmissionController {
    policy: AdmissionPolicy,
    tenants: Mutex<HashMap<String, TenantState>>,
}

impl AdmissionController {
    /// A controller enforcing `policy`.
    pub fn new(policy: AdmissionPolicy) -> AdmissionController {
        AdmissionController {
            policy,
            tenants: Mutex::new(HashMap::new()),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &AdmissionPolicy {
        &self.policy
    }

    /// Decides one submission from `tenant`. `Ok(())` consumes a token
    /// and claims a job slot — pair every success with exactly one
    /// [`AdmissionController::release`] when the job goes terminal.
    /// `Err` carries the one-line protocol reason; nothing is consumed.
    pub fn try_admit(&self, tenant: &str, scheduler: &ReplayScheduler) -> Result<(), String> {
        let queued = scheduler.queued_depth();
        if self.policy.max_queue_depth > 0 && queued >= self.policy.max_queue_depth {
            self.count_shed(tenant);
            return Err(format!(
                "admission denied: queue depth {queued} at limit {}",
                self.policy.max_queue_depth
            ));
        }
        if self.policy.max_backlog_ms > 0 {
            if let Some(est_ms) = backlog_estimate_ms(queued) {
                if est_ms > self.policy.max_backlog_ms {
                    self.count_shed(tenant);
                    return Err(format!(
                        "admission denied: estimated backlog {est_ms}ms over limit {}ms",
                        self.policy.max_backlog_ms
                    ));
                }
            }
        }
        let mut tenants = self.tenants.lock().unwrap();
        let now = flor_obs::clock::now_ns();
        let state = tenants.entry(tenant.to_string()).or_insert(TenantState {
            tokens: self.policy.tenant_burst as f64,
            last_refill_ns: now,
            active_jobs: 0,
        });
        if self.policy.max_tenant_jobs > 0 && state.active_jobs >= self.policy.max_tenant_jobs {
            drop(tenants);
            self.count_shed(tenant);
            return Err(format!(
                "admission denied: tenant {tenant:?} at concurrent-job limit {}",
                self.policy.max_tenant_jobs
            ));
        }
        if self.policy.tenant_burst > 0 {
            let elapsed_s = now.saturating_sub(state.last_refill_ns) as f64 / 1e9;
            state.tokens = (state.tokens + elapsed_s * self.policy.tenant_refill_per_sec)
                .min(self.policy.tenant_burst as f64);
            state.last_refill_ns = now;
            if state.tokens < 1.0 {
                drop(tenants);
                self.count_shed(tenant);
                return Err(format!(
                    "admission denied: tenant {tenant:?} out of tokens (refill {}/s)",
                    self.policy.tenant_refill_per_sec
                ));
            }
            state.tokens -= 1.0;
        }
        state.active_jobs += 1;
        Ok(())
    }

    /// Returns the job slot claimed by a successful
    /// [`AdmissionController::try_admit`].
    pub fn release(&self, tenant: &str) {
        let mut tenants = self.tenants.lock().unwrap();
        if let Some(state) = tenants.get_mut(tenant) {
            state.active_jobs = state.active_jobs.saturating_sub(1);
        }
    }

    /// Non-terminal jobs currently charged to `tenant`.
    pub fn active_jobs(&self, tenant: &str) -> usize {
        self.tenants
            .lock()
            .unwrap()
            .get(tenant)
            .map(|s| s.active_jobs)
            .unwrap_or(0)
    }

    fn count_shed(&self, tenant: &str) {
        flor_obs::counter!("serve.shed").inc();
        if !tenant.is_empty() {
            flor_obs::metrics::counter_named(&format!("tenant.{tenant}.shed")).inc();
        }
    }
}

/// Estimated time for the current queue to drain, ms — `queued` jobs at
/// the live p50 of `scheduler.job_ns` (falling back to
/// `replay.restore_ns` before the first job completes). `None` when
/// neither histogram has samples: with no evidence, admit.
fn backlog_estimate_ms(queued: usize) -> Option<u64> {
    for name in ["scheduler.job_ns", "replay.restore_ns"] {
        let snap = flor_obs::metrics::histogram_named(name).snapshot(name);
        if snap.count > 0 {
            return Some((queued as u64).saturating_mul(snap.p50_ns) / 1_000_000);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Registry;
    use std::sync::Arc;

    fn test_sched(tag: &str) -> (Arc<Registry>, ReplayScheduler) {
        let root = std::env::temp_dir().join(format!(
            "flor-admission-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let reg = Arc::new(Registry::open(&root).unwrap());
        let sched = ReplayScheduler::new(reg.clone(), 1);
        (reg, sched)
    }

    #[test]
    fn unlimited_policy_admits_everything() {
        let (_reg, sched) = test_sched("unlimited");
        let ctl = AdmissionController::new(AdmissionPolicy::unlimited());
        for _ in 0..100 {
            ctl.try_admit("anyone", &sched).unwrap();
        }
        assert_eq!(ctl.active_jobs("anyone"), 100);
    }

    #[test]
    fn concurrent_job_limit_frees_on_release() {
        let (_reg, sched) = test_sched("slots");
        let ctl = AdmissionController::new(AdmissionPolicy {
            max_tenant_jobs: 2,
            ..AdmissionPolicy::unlimited()
        });
        ctl.try_admit("a", &sched).unwrap();
        ctl.try_admit("a", &sched).unwrap();
        let err = ctl.try_admit("a", &sched).unwrap_err();
        assert!(err.contains("concurrent-job limit"), "{err}");
        // Another tenant is unaffected.
        ctl.try_admit("b", &sched).unwrap();
        ctl.release("a");
        ctl.try_admit("a", &sched).unwrap();
    }

    #[test]
    fn token_bucket_bounds_burst() {
        let (_reg, sched) = test_sched("tokens");
        let ctl = AdmissionController::new(AdmissionPolicy {
            tenant_burst: 3,
            tenant_refill_per_sec: 1000.0,
            ..AdmissionPolicy::unlimited()
        });
        for _ in 0..3 {
            ctl.try_admit("t", &sched).unwrap();
        }
        let err = ctl.try_admit("t", &sched).unwrap_err();
        assert!(err.contains("out of tokens"), "{err}");
        // Refill at 1000/s: a few ms restores a token.
        std::thread::sleep(std::time::Duration::from_millis(20));
        ctl.try_admit("t", &sched).unwrap();
    }

    #[test]
    fn queue_depth_cap_checks_live_depth() {
        let (_reg, sched) = test_sched("depth");
        let ctl = AdmissionController::new(AdmissionPolicy {
            max_queue_depth: 1,
            ..AdmissionPolicy::unlimited()
        });
        // Queue is empty: admitted (depth check reads the scheduler).
        ctl.try_admit("t", &sched).unwrap();
    }
}
