//! Epoll socket server for the serve protocol: many clients, one
//! event-loop thread, zero blocking on any client's pace.
//!
//! Transport is the vendored raw-syscall layer in `flor-net` (nonblocking
//! sockets + epoll + eventfd — no tokio, no libc). Each accepted
//! connection gets its own [`ServeSession`]; replay workers publish into
//! bounded per-job [`crate::scheduler::JobSink`]s and wake the loop
//! through an eventfd, so a slow reader stalls only its own stream:
//!
//! - its write buffer fills to the high-water mark → the loop stops
//!   draining its sinks (events coalesce/overflow in the bounded sink;
//!   entry drops are sticky, so what was delivered stays a contiguous
//!   log prefix and the rest catches up from the stored outcome at
//!   completion);
//! - if the peer accepts no bytes for `write_stall_timeout_ms`, the
//!   connection is dropped and its jobs cancelled — workers never wait.
//!
//! Admission control ([`crate::admission`]) runs at submit time inside
//! the session; the scheduler's bounded queue backstops it.

use crate::admission::{AdmissionController, AdmissionPolicy};
use crate::error::RegistryError;
use crate::scheduler::ReplayScheduler;
use crate::service::Registry;
use crate::session::{banner, ServeSession, SessionControl};
use flor_net::{Conn, Endpoint, Listener, PollEvent, Poller, Waker};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Longest accepted protocol line; longer input is a protocol error and
/// closes the connection (a defense against unframed garbage, not a real
/// limit — commands are tens of bytes).
const MAX_LINE: usize = 64 * 1024;

/// Tuning for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Endpoints to listen on (TCP port 0 picks a free port; resolved
    /// addresses are on the [`ServerHandle`]).
    pub endpoints: Vec<Endpoint>,
    /// Replay worker threads behind the scheduler.
    pub pool_workers: usize,
    /// Scheduler queue bound (0 = unbounded) — the backstop behind
    /// admission control.
    pub queue_limit: usize,
    /// Admission policy applied to every submission.
    pub admission: AdmissionPolicy,
    /// Per-job sink bound: queued event chunks beyond this are dropped
    /// and caught up from the stored outcome at completion.
    pub entry_queue_cap: usize,
    /// Per-connection write-buffer high-water mark, bytes: above it the
    /// loop stops generating output for that connection until the peer
    /// drains it.
    pub wrbuf_high_water: usize,
    /// Drop a connection whose peer accepts no bytes for this long while
    /// output is pending (0 = never).
    pub write_stall_timeout_ms: u64,
    /// Kernel send-buffer size per connection, bytes (0 = OS default).
    /// Small values make a lagging reader visible to userspace (and its
    /// stall timer) promptly instead of hiding behind kernel buffering.
    pub sndbuf: u32,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            endpoints: vec![Endpoint::Tcp(std::net::Ipv4Addr::LOCALHOST, 0)],
            pool_workers: 2,
            queue_limit: 0,
            admission: AdmissionPolicy::unlimited(),
            entry_queue_cap: 1024,
            wrbuf_high_water: 256 * 1024,
            write_stall_timeout_ms: 30_000,
            sndbuf: 0,
        }
    }
}

/// The running server. Construct with [`Server::start`].
pub struct Server;

/// Handle to a running server: resolved endpoints + shutdown.
pub struct ServerHandle {
    endpoints: Vec<Endpoint>,
    shutdown: Arc<AtomicBool>,
    waker: Waker,
    thread: Option<JoinHandle<()>>,
    scheduler: Arc<ReplayScheduler>,
}

impl Server {
    /// Binds every endpoint, spawns the scheduler pool and the event-loop
    /// thread, and returns immediately. Fails up front (not in the loop)
    /// if the platform lacks the vendored syscalls or a bind is refused.
    pub fn start(
        registry: Arc<Registry>,
        config: ServerConfig,
    ) -> Result<ServerHandle, RegistryError> {
        let mut listeners = Vec::new();
        let mut endpoints = Vec::new();
        for ep in &config.endpoints {
            let l = Listener::bind(ep)?;
            endpoints.push(l.local_endpoint().clone());
            listeners.push(l);
        }
        let poller = Poller::new()?;
        let waker = Waker::new()?;
        let scheduler = Arc::new(ReplayScheduler::with_queue_limit(
            registry.clone(),
            config.pool_workers,
            config.queue_limit,
        ));
        let admission = Arc::new(AdmissionController::new(config.admission));
        let shutdown = Arc::new(AtomicBool::new(false));
        let loop_state = EventLoop {
            registry,
            scheduler: scheduler.clone(),
            admission,
            config: config.clone(),
            poller,
            waker: waker.clone(),
            listeners,
            shutdown: shutdown.clone(),
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
        };
        let thread = std::thread::Builder::new()
            .name("flor-serve".into())
            .spawn(move || loop_state.run())
            .map_err(RegistryError::Io)?;
        Ok(ServerHandle {
            endpoints,
            shutdown,
            waker,
            thread: Some(thread),
            scheduler,
        })
    }
}

impl ServerHandle {
    /// The bound endpoints, with TCP port 0 resolved to the real port.
    pub fn local_endpoints(&self) -> &[Endpoint] {
        &self.endpoints
    }

    /// The scheduler behind the server (status/metrics surfaces).
    pub fn scheduler(&self) -> &Arc<ReplayScheduler> {
        &self.scheduler
    }

    /// Stops accepting, aborts live connections (cancelling their jobs),
    /// and joins the event-loop thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        self.waker.wake();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

const WAKER_TOKEN: u64 = 0;
const FIRST_CONN_TOKEN: u64 = 1 << 16;

struct ConnState {
    conn: Conn,
    session: ServeSession,
    rdbuf: Vec<u8>,
    wrbuf: Vec<u8>,
    /// Bytes of `wrbuf` already written to the socket.
    wr_pos: usize,
    /// Current epoll write-interest, to avoid redundant EPOLL_CTL_MOD.
    want_write: bool,
    /// Current epoll read-interest: dropped after EOF so a half-closed
    /// socket (level-triggered readable + RDHUP forever) stops waking the
    /// loop while the session's jobs finish streaming.
    want_read: bool,
    /// The session decided to quit: flush, then close.
    closing: bool,
    /// Peer saw progress (wrote bytes, or buffer empty) at this clock.
    last_progress_ns: u64,
    /// Read side reached EOF (client finished sending commands).
    read_eof: bool,
}

impl ConnState {
    fn pending(&self) -> usize {
        self.wrbuf.len() - self.wr_pos
    }

    fn push_lines(&mut self, lines: &mut Vec<String>) {
        for l in lines.drain(..) {
            self.wrbuf.extend_from_slice(l.as_bytes());
            self.wrbuf.push(b'\n');
        }
    }
}

struct EventLoop {
    registry: Arc<Registry>,
    scheduler: Arc<ReplayScheduler>,
    admission: Arc<AdmissionController>,
    config: ServerConfig,
    poller: Poller,
    waker: Waker,
    listeners: Vec<Listener>,
    shutdown: Arc<AtomicBool>,
    conns: HashMap<u64, ConnState>,
    next_token: u64,
}

impl EventLoop {
    fn run(mut self) {
        if self.setup().is_err() {
            return;
        }
        let mut events: Vec<PollEvent> = Vec::new();
        // 50ms tick: drives stall timeouts and catches any missed wake.
        while !self.shutdown.load(Ordering::Acquire) {
            if self.poller.wait(&mut events, 50).is_err() {
                break;
            }
            let mut dead: Vec<u64> = Vec::new();
            for ev in &events {
                match ev.token {
                    WAKER_TOKEN => self.waker.drain(),
                    t if (t as usize) <= self.listeners.len() && t >= 1 => {
                        self.accept_all(t as usize - 1);
                    }
                    t => {
                        let Some(cs) = self.conns.get_mut(&t) else {
                            continue;
                        };
                        if ev.hangup && !ev.readable {
                            dead.push(t);
                            continue;
                        }
                        // Past EOF there is nothing left to read (and the
                        // fd stays level-triggered readable forever).
                        if (ev.readable || ev.hangup) && !cs.read_eof && !Self::read_conn(cs) {
                            dead.push(t);
                            continue;
                        }
                        if ev.writable && !Self::flush_conn(cs) {
                            dead.push(t);
                        }
                    }
                }
            }
            for t in dead {
                self.drop_conn(t, true);
            }
            self.service_sessions();
        }
        // Shutdown: cancel every live session's jobs and return permits.
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for t in tokens {
            self.drop_conn(t, true);
        }
    }

    fn setup(&mut self) -> std::io::Result<()> {
        self.poller.add(self.waker.raw_fd(), WAKER_TOKEN, false)?;
        for (i, l) in self.listeners.iter().enumerate() {
            self.poller.add(l.raw_fd(), (i + 1) as u64, false)?;
        }
        Ok(())
    }

    fn accept_all(&mut self, listener: usize) {
        loop {
            let _span = flor_obs::span(flor_obs::Category::Serve, "accept");
            match self.listeners[listener].accept() {
                Ok(Some(conn)) => {
                    if self.config.sndbuf > 0 {
                        let _ = conn.set_send_buffer(self.config.sndbuf);
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    let wake = self.waker.clone();
                    let session = ServeSession::new(
                        self.registry.clone(),
                        self.scheduler.clone(),
                        self.admission.clone(),
                        false,
                        self.config.entry_queue_cap,
                        move || wake.wake(),
                    );
                    let mut cs = ConnState {
                        conn,
                        session,
                        rdbuf: Vec::new(),
                        wrbuf: Vec::new(),
                        wr_pos: 0,
                        want_write: false,
                        want_read: true,
                        closing: false,
                        last_progress_ns: flor_obs::clock::now_ns(),
                        read_eof: false,
                    };
                    cs.wrbuf.extend_from_slice(
                        banner(self.registry.root(), self.scheduler.pool_size()).as_bytes(),
                    );
                    cs.wrbuf.push(b'\n');
                    flor_obs::counter!("serve.accepted").inc();
                    if self.poller.add(cs.conn.raw_fd(), token, false).is_ok() {
                        self.conns.insert(token, cs);
                    }
                }
                Ok(None) => break,
                Err(_) => break,
            }
        }
    }

    /// Reads all available bytes and dispatches complete lines. Returns
    /// false if the connection must be dropped (error / oversized line).
    fn read_conn(cs: &mut ConnState) -> bool {
        let _span = flor_obs::span(flor_obs::Category::Serve, "read");
        let mut buf = [0u8; 16 * 1024];
        loop {
            match cs.conn.try_read(&mut buf) {
                Ok(Some(0)) => {
                    cs.read_eof = true;
                    break;
                }
                Ok(Some(n)) => cs.rdbuf.extend_from_slice(&buf[..n]),
                Ok(None) => break,
                Err(_) => return false,
            }
        }
        let mut out = Vec::new();
        let mut start = 0usize;
        while let Some(nl) = cs.rdbuf[start..].iter().position(|&b| b == b'\n') {
            let line = String::from_utf8_lossy(&cs.rdbuf[start..start + nl]).into_owned();
            start += nl + 1;
            match cs
                .session
                .handle_line(line.trim_end_matches('\r'), &mut out)
            {
                Ok(SessionControl::Continue) => {}
                Ok(SessionControl::Quit) => {
                    cs.closing = true;
                    break;
                }
                Err(e) => {
                    out.push(format!("error: {e}"));
                    cs.closing = true;
                    break;
                }
            }
        }
        cs.rdbuf.drain(..start);
        if cs.rdbuf.len() > MAX_LINE {
            out.push("error: line too long".into());
            cs.closing = true;
            cs.rdbuf.clear();
        }
        if cs.read_eof && !cs.closing {
            // A torn trailing fragment without its newline is dropped: it
            // was never a complete command. EOF itself means "quit".
            cs.rdbuf.clear();
            match cs.session.finish(&mut out) {
                Ok(SessionControl::Quit) => cs.closing = true,
                Ok(SessionControl::Continue) => {}
                Err(e) => {
                    out.push(format!("error: {e}"));
                    cs.closing = true;
                }
            }
        }
        cs.push_lines(&mut out);
        true
    }

    /// Writes as much buffered output as the socket accepts. Returns
    /// false if the connection must be dropped.
    fn flush_conn(cs: &mut ConnState) -> bool {
        let _span = flor_obs::span(flor_obs::Category::Serve, "write");
        while cs.wr_pos < cs.wrbuf.len() {
            match cs.conn.try_write(&cs.wrbuf[cs.wr_pos..]) {
                Ok(Some(0)) => return false,
                Ok(Some(n)) => {
                    cs.wr_pos += n;
                    cs.last_progress_ns = flor_obs::clock::now_ns();
                }
                Ok(None) => break,
                Err(_) => return false,
            }
        }
        if cs.wr_pos == cs.wrbuf.len() {
            cs.wrbuf.clear();
            cs.wr_pos = 0;
            cs.last_progress_ns = flor_obs::clock::now_ns();
        } else if cs.wr_pos > MAX_LINE {
            cs.wrbuf.drain(..cs.wr_pos);
            cs.wr_pos = 0;
        }
        true
    }

    /// Post-event pass over every connection: drain job sinks into write
    /// buffers (respecting the high-water mark), flush, update epoll
    /// write interest, enforce the stall timeout, close finished peers.
    fn service_sessions(&mut self) {
        let now = flor_obs::clock::now_ns();
        let stall_ns = self.config.write_stall_timeout_ms * 1_000_000;
        let high_water = self.config.wrbuf_high_water;
        let mut dead: Vec<(u64, bool)> = Vec::new();
        let mut out = Vec::new();
        for (&token, cs) in self.conns.iter_mut() {
            // Backpressure: generate no new output while the peer lags.
            if cs.pending() < high_water {
                out.clear();
                match cs.session.poll_events(&mut out) {
                    // Quit means the session has delivered everything it
                    // ever will (a `quit`/EOF was seen and all reports
                    // are out): flush and close regardless of how the
                    // quit was requested.
                    Ok(SessionControl::Quit) => cs.closing = true,
                    Ok(SessionControl::Continue) => {}
                    Err(e) => {
                        out.push(format!("error: {e}"));
                        cs.closing = true;
                    }
                }
                cs.push_lines(&mut out);
            }
            if !Self::flush_conn(cs) {
                dead.push((token, true));
                continue;
            }
            if cs.pending() == 0 && cs.closing {
                // Clean close: everything delivered.
                dead.push((token, false));
                continue;
            }
            if stall_ns > 0
                && cs.pending() > 0
                && now.saturating_sub(cs.last_progress_ns) > stall_ns
            {
                flor_obs::counter!("serve.stalled_drops").inc();
                dead.push((token, true));
                continue;
            }
            let want_write = cs.pending() > 0;
            // A half-closed socket stays EPOLLIN|EPOLLRDHUP-ready forever
            // under level triggering; keep watching only for writability
            // (EPOLLHUP/EPOLLERR still report) or the loop busy-spins
            // until the session's jobs complete.
            let want_read = !cs.read_eof;
            if want_write != cs.want_write || want_read != cs.want_read {
                if self
                    .poller
                    .set_interest(cs.conn.raw_fd(), token, want_read, want_write)
                    .is_err()
                {
                    dead.push((token, true));
                    continue;
                }
                cs.want_write = want_write;
                cs.want_read = want_read;
            }
        }
        for (t, aborted) in dead {
            self.drop_conn(t, aborted);
        }
    }

    fn drop_conn(&mut self, token: u64, aborted: bool) {
        if let Some(mut cs) = self.conns.remove(&token) {
            if aborted {
                // Client vanished mid-stream: cancel its jobs, return its
                // admission slots, count it.
                cs.session.abort();
                flor_obs::counter!("serve.aborted_conns").inc();
            }
            let _ = self.poller.remove(cs.conn.raw_fd());
        }
    }
}
