//! Registry-wide error type, composing with `?` across the workspace's
//! crate boundaries (`StoreError`, `FlorError`, `std::io::Error`).

use std::fmt;

/// Anything that can go wrong in the run catalog, the query service, or
/// the replay scheduler.
#[derive(Debug)]
pub enum RegistryError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A catalog line failed its CRC or structural validation.
    Corrupt {
        /// 1-based catalog line number.
        line: usize,
        /// Detail.
        detail: String,
    },
    /// The requested run id is not in the catalog.
    UnknownRun(String),
    /// A registration carried an invalid field (reserved characters, …).
    BadRegistration(String),
    /// Checkpoint-store failure while serving a query.
    Store(flor_chkpt::StoreError),
    /// Record/replay engine failure while serving a query.
    Engine(flor_core::FlorError),
    /// The scheduler rejected a job (shut down, or the job was cancelled).
    Scheduler(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Io(e) => write!(f, "registry io error: {e}"),
            RegistryError::Corrupt { line, detail } => {
                write!(f, "corrupt catalog line {line}: {detail}")
            }
            RegistryError::UnknownRun(id) => write!(f, "unknown run {id:?}"),
            RegistryError::BadRegistration(d) => write!(f, "bad run registration: {d}"),
            RegistryError::Store(e) => write!(f, "{e}"),
            RegistryError::Engine(e) => write!(f, "{e}"),
            RegistryError::Scheduler(d) => write!(f, "scheduler error: {d}"),
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Io(e) => Some(e),
            RegistryError::Store(e) => Some(e),
            RegistryError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for RegistryError {
    fn from(e: std::io::Error) -> Self {
        RegistryError::Io(e)
    }
}

impl From<flor_chkpt::StoreError> for RegistryError {
    fn from(e: flor_chkpt::StoreError) -> Self {
        RegistryError::Store(e)
    }
}

impl From<flor_core::FlorError> for RegistryError {
    fn from(e: flor_core::FlorError) -> Self {
        RegistryError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composes_across_crate_boundaries_with_question_mark() {
        fn store_op() -> Result<(), flor_chkpt::StoreError> {
            Err(flor_chkpt::StoreError::BadManifest("x".into()))
        }
        fn engine_op() -> Result<(), flor_core::FlorError> {
            Err(flor_core::error::rt("y"))
        }
        fn registry_op(which: u8) -> Result<(), RegistryError> {
            match which {
                0 => store_op()?,
                _ => engine_op()?,
            }
            Ok(())
        }
        assert!(matches!(registry_op(0), Err(RegistryError::Store(_))));
        assert!(matches!(registry_op(1), Err(RegistryError::Engine(_))));
    }

    #[test]
    fn display_and_source_chain() {
        let e = RegistryError::Store(flor_chkpt::StoreError::BadManifest("m".into()));
        assert!(e.to_string().contains("bad manifest"));
        assert!(std::error::Error::source(&e).is_some());
        let dyn_err: Box<dyn std::error::Error> = Box::new(RegistryError::UnknownRun("r".into()));
        assert!(dyn_err.to_string().contains("unknown run"));
    }
}
