//! Content-addressed caching of hindsight query results.
//!
//! A query is identified by the run it targets (id + generation + recorded
//! source version) and the probed source submitted — the cache key is a
//! 64-bit FNV-1a over that tuple, so repeated queries from many users hit
//! a single materialized file and are served without replaying anything.
//!
//! Each cache file carries its own CRC; a corrupt or torn file (the write
//! is temp+rename, so torn files only appear through outside interference)
//! reads as a **miss**, never as a wrong answer.

use flor_chkpt::store::crc32;
use flor_core::logstream::{LogEntry, LogStream};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A materialized, cacheable query result.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedResult {
    /// Probes the source diff detected.
    pub probes: u64,
    /// The materialized hindsight log stream, record-ordered.
    pub log: Vec<LogEntry>,
}

/// Content address of a query: `(run_id, generation, source_version,
/// probed_source)` → 16-hex-digit key. Fields are joined with a 0x1F
/// separator before hashing so `("ab","c")` and `("a","bc")` differ.
pub fn query_key(
    run_id: &str,
    generation: u64,
    source_version: &str,
    probed_source: &str,
) -> String {
    let mut buf = Vec::with_capacity(probed_source.len() + 64);
    for part in [
        run_id,
        &generation.to_string(),
        source_version,
        probed_source,
    ] {
        buf.extend_from_slice(part.as_bytes());
        buf.push(0x1f);
    }
    format!("{:016x}", flor_core::record::fnv1a64(&buf))
}

/// Content address of a *slice class* of queries: `(run_id, generation,
/// source_version, slice fingerprint)` → `"s"` + 16 hex digits. The
/// fingerprint ([`flor_core::replay::slice_fingerprint`]) hashes the
/// canonical print of the probed source's sliced instrumented program, so
/// textually different probes that slice to the same live cone share one
/// entry — the cross-query memo behind incremental replay. The `"s"`
/// prefix keeps these keys disjoint from the 16-hex raw-text keys of
/// [`query_key`] inside one cache directory.
pub fn slice_key(run_id: &str, generation: u64, source_version: &str, fingerprint: u64) -> String {
    let mut buf = Vec::with_capacity(64);
    for part in [
        run_id,
        &generation.to_string(),
        source_version,
        &format!("{fingerprint:016x}"),
    ] {
        buf.extend_from_slice(part.as_bytes());
        buf.push(0x1f);
    }
    format!("s{:016x}", flor_core::record::fnv1a64(&buf))
}

/// On-disk query-result cache rooted at one directory.
pub struct QueryCache {
    root: PathBuf,
}

impl QueryCache {
    /// Opens (creating if needed) a cache under `root`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(QueryCache { root })
    }

    fn file(&self, key: &str) -> PathBuf {
        self.root.join(key)
    }

    /// Looks up a key. Corrupt entries are dropped and read as a miss.
    pub fn get(&self, key: &str) -> Option<CachedResult> {
        let path = self.file(key);
        let text = fs::read_to_string(&path).ok()?;
        match Self::parse(&text) {
            Some(result) => Some(result),
            None => {
                // Self-heal: a bad entry must not keep serving misses
                // through repeated parse attempts.
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Stores a result under `key` (write-to-temp + rename, so readers
    /// never observe a partial entry).
    pub fn put(&self, key: &str, result: &CachedResult) -> io::Result<()> {
        let body = {
            let mut s = String::new();
            for e in &result.log {
                s.push_str(&e.to_string());
                s.push('\n');
            }
            s
        };
        let text = format!(
            "FLORQC v1\nprobes\t{}\nentries\t{}\ncrc\t{}\n---\n{body}",
            result.probes,
            result.log.len(),
            crc32(body.as_bytes()),
        );
        flor_chkpt::store::write_atomic(&self.file(key), text.as_bytes())?;
        Ok(())
    }

    fn parse(text: &str) -> Option<CachedResult> {
        let (header, body) = text.split_once("---\n")?;
        let mut lines = header.lines();
        if lines.next()? != "FLORQC v1" {
            return None;
        }
        let mut probes = None;
        let mut entries = None;
        let mut crc = None;
        for line in lines {
            let (k, v) = line.split_once('\t')?;
            match k {
                "probes" => probes = v.parse::<u64>().ok(),
                "entries" => entries = v.parse::<usize>().ok(),
                "crc" => crc = v.parse::<u32>().ok(),
                _ => {}
            }
        }
        if crc32(body.as_bytes()) != crc? {
            return None;
        }
        let log = LogStream::parse_text(body);
        if log.len() != entries? {
            return None;
        }
        Some(CachedResult {
            probes: probes?,
            log,
        })
    }

    /// Number of cached entries on disk.
    pub fn len(&self) -> usize {
        fs::read_dir(&self.root)
            .map(|d| d.filter_map(|e| e.ok()).count())
            .unwrap_or(0)
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache directory.
    pub fn root(&self) -> &Path {
        &self.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flor_core::logstream::Section;

    fn tmpcache(tag: &str) -> QueryCache {
        let dir = std::env::temp_dir().join(format!(
            "flor-qcache-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        QueryCache::open(dir).unwrap()
    }

    fn sample() -> CachedResult {
        CachedResult {
            probes: 2,
            log: vec![
                LogEntry {
                    key: "loss".into(),
                    value: "0.5".into(),
                    section: Section::Iter(0),
                },
                LogEntry {
                    key: "g".into(),
                    value: "1.25".into(),
                    section: Section::Iter(0),
                },
                LogEntry {
                    key: "acc".into(),
                    value: "0.9".into(),
                    section: Section::Post,
                },
            ],
        }
    }

    #[test]
    fn put_get_roundtrip() {
        let cache = tmpcache("roundtrip");
        let key = query_key("alice", 0, "feedbeef", "probed src");
        assert!(cache.get(&key).is_none());
        cache.put(&key, &sample()).unwrap();
        assert_eq!(cache.get(&key).unwrap(), sample());
    }

    #[test]
    fn keys_separate_runs_generations_and_sources() {
        let base = query_key("alice", 0, "v1", "src");
        assert_ne!(base, query_key("bob", 0, "v1", "src"));
        assert_ne!(base, query_key("alice", 1, "v1", "src"));
        assert_ne!(base, query_key("alice", 0, "v2", "src"));
        assert_ne!(base, query_key("alice", 0, "v1", "src2"));
        // Field boundaries matter: ("ab","c") != ("a","bc").
        assert_ne!(query_key("ab", 0, "c", "d"), query_key("a", 0, "bc", "d"));
    }

    #[test]
    fn slice_keys_are_disjoint_from_raw_keys() {
        let s = slice_key("alice", 0, "v1", 0xDEAD_BEEF);
        assert!(s.starts_with('s') && s.len() == 17, "{s}");
        assert_ne!(s, slice_key("alice", 0, "v1", 0xDEAD_BEE0));
        assert_ne!(s, slice_key("alice", 1, "v1", 0xDEAD_BEEF));
        assert_ne!(s, slice_key("bob", 0, "v1", 0xDEAD_BEEF));
        // Raw keys are exactly 16 hex chars — the "s" prefix cannot collide.
        assert_eq!(query_key("alice", 0, "v1", "src").len(), 16);
    }

    #[test]
    fn corrupt_entry_reads_as_miss_and_self_heals() {
        let cache = tmpcache("corrupt");
        let key = query_key("alice", 0, "v", "s");
        cache.put(&key, &sample()).unwrap();
        let path = cache.root().join(&key);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, text.replace("0.5", "9.9")).unwrap();
        assert!(cache.get(&key).is_none(), "tampered entry must miss");
        assert!(!path.exists(), "tampered entry removed");
    }

    #[test]
    fn truncated_entry_reads_as_miss() {
        let cache = tmpcache("trunc");
        let key = query_key("alice", 0, "v", "s");
        cache.put(&key, &sample()).unwrap();
        let path = cache.root().join(&key);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(cache.get(&key).is_none());
    }

    #[test]
    fn empty_log_roundtrips() {
        let cache = tmpcache("empty");
        let result = CachedResult {
            probes: 0,
            log: Vec::new(),
        };
        cache.put("k", &result).unwrap();
        assert_eq!(cache.get("k").unwrap(), result);
    }
}
