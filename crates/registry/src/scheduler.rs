//! The replay job scheduler: a bounded worker pool dispatching queued
//! hindsight queries.
//!
//! Replay is CPU-bound (each query re-executes probed SkipBlocks through
//! `core::parallel`'s worker plans), so a serving deployment must bound
//! how many replays run at once no matter how many users queue queries.
//! Jobs carry a priority (higher first, FIFO within a priority), can be
//! cancelled while queued, and expose a status API for polling; `wait`
//! blocks until a job reaches a terminal state.

use crate::error::RegistryError;
use crate::service::{QueryEvent, QueryOutcome, Registry};
use flor_core::logstream::LogEntry;
use flor_core::CancelToken;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Identifier of a submitted job.
pub type JobId = u64;

/// A queued hindsight query.
#[derive(Debug, Clone, Default)]
pub struct QueryJob {
    /// Target run id.
    pub run_id: String,
    /// Probed source to replay.
    pub probed_source: String,
    /// Replay workers for this job's worker plan.
    pub workers: usize,
    /// Scheduling priority: higher runs first.
    pub priority: i32,
    /// Submitting tenant ("" for anonymous/local callers). Tags the
    /// per-tenant `tenant.<name>.*` metrics and scopes admission-control
    /// quotas in the serving layer.
    pub tenant: String,
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone)]
pub enum JobState {
    /// Waiting in the priority queue.
    Queued,
    /// Executing on a pool worker.
    Running,
    /// Finished successfully.
    Completed(QueryOutcome),
    /// Finished with an error (message — `RegistryError` is not `Clone`).
    Failed(String),
    /// Cancelled before a worker picked it up.
    Cancelled,
}

impl JobState {
    /// True for `Completed` / `Failed` / `Cancelled`.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Completed(_) | JobState::Failed(_) | JobState::Cancelled
        )
    }
}

/// Live progress of a running (or finished) job, fed by the streaming
/// replay runtime — poll it with [`ReplayScheduler::progress`] while
/// [`ReplayScheduler::status`] still says `Running`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobProgress {
    /// Main-loop iterations completed across the job's replay workers.
    pub iterations_done: u64,
    /// Total main-loop iterations (0 until the replay learns it).
    pub iterations_total: u64,
    /// Micro-ranges stolen between the job's replay workers.
    pub steals: u64,
    /// Record-order log entries streamed out so far.
    pub entries_streamed: u64,
    /// Time until the job's replay emitted its first record-order entry,
    /// ns from job start (0 until the first chunk lands).
    pub stream_first_entry_ns: u64,
    /// Wall time the job has been executing, ns: live (updated on every
    /// streamed event) while running, final on completion.
    pub wall_ns: u64,
    /// Statements the backward slicer elided from the job's replay
    /// (final on completion; 0 while running or unsliced).
    pub statements_elided: u64,
    /// Live fraction of the sliced program in permille (0 = unsliced).
    pub slice_permille: u32,
    /// 1 when the job was answered from the cross-query slice cache.
    pub slice_cache_hits: u64,
}

impl JobProgress {
    /// Every counter as a `(name, value)` list — the single source both
    /// the prose status line and any JSON surface render from, so a field
    /// added here cannot silently drift between the two.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("iterations_done", self.iterations_done),
            ("iterations_total", self.iterations_total),
            ("steals", self.steals),
            ("entries_streamed", self.entries_streamed),
            ("stream_first_entry_ns", self.stream_first_entry_ns),
            ("wall_ns", self.wall_ns),
            ("statements_elided", self.statements_elided),
            ("slice_permille", u64::from(self.slice_permille)),
            ("slice_cache_hits", self.slice_cache_hits),
        ]
    }
}

/// What [`ReplayScheduler::cancel_job`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelResult {
    /// The job was still queued; it is now terminal `Cancelled`.
    Cancelled,
    /// The job was running; its cancellation token fired and the replay
    /// workers stop at their next iteration boundary. The terminal
    /// `Cancelled` state lands asynchronously (watch via `wait`/sink).
    CancelRequested,
    /// Unknown id or already terminal.
    NotCancellable,
}

/// One event pushed into a job's [`JobSink`].
#[derive(Debug, Clone)]
pub enum JobEvent {
    /// A record-order chunk of streamed log entries.
    Entries(Vec<LogEntry>),
    /// Updated progress counters (coalesced: a sink holds at most one
    /// pending progress event at its tail).
    Progress(JobProgress),
    /// A deferred-check anomaly.
    Anomaly(String),
    /// The job reached this terminal state. Always the sink's last event.
    Done(JobState),
}

/// Bounded, job-scoped event queue decoupling replay workers from slow
/// network readers: the scheduler's worker pushes (never blocking — full
/// sinks drop entry chunks, the connection catches up from the completed
/// outcome's log), and the serving event loop drains at its own pace.
/// `wake` fires after every push so an epoll loop can sleep between
/// events.
///
/// Drops are *sticky*: once one entry chunk is dropped, every later one
/// is dropped too (until the terminal event). The delivered entries are
/// therefore always a contiguous prefix of the job's final log — the
/// invariant the connection's completion catch-up relies on to resume at
/// its emitted-entry count without gaps, duplicates, or reordering.
pub struct JobSink {
    inner: Mutex<SinkInner>,
    want_entries: bool,
    cap: usize,
    wake: Box<dyn Fn() + Send + Sync>,
}

struct SinkInner {
    queue: VecDeque<JobEvent>,
    dropped_entries: u64,
    /// An entry chunk was dropped: reject all later ones (see the
    /// stickiness note on [`JobSink`]).
    dropping: bool,
    done: bool,
}

impl JobSink {
    /// A sink holding at most `cap` queued events. `want_entries: false`
    /// skips log chunks entirely (status-only watchers); the terminal
    /// event always fits regardless of `cap`.
    pub fn new(want_entries: bool, cap: usize, wake: impl Fn() + Send + Sync + 'static) -> JobSink {
        JobSink {
            inner: Mutex::new(SinkInner {
                queue: VecDeque::new(),
                dropped_entries: 0,
                dropping: false,
                done: false,
            }),
            want_entries,
            cap: cap.max(1),
            wake: Box::new(wake),
        }
    }

    pub(crate) fn push(&self, ev: JobEvent) {
        let mut inner = self.inner.lock().unwrap();
        match ev {
            JobEvent::Done(_) => {
                inner.done = true;
                inner.queue.push_back(ev);
            }
            JobEvent::Entries(chunk) => {
                if !self.want_entries || inner.dropping || inner.queue.len() >= self.cap {
                    // Sticky drop: delivering a later chunk after a gap
                    // would corrupt the stream (the reader resumes from
                    // its emitted-entry count at completion).
                    inner.dropping = true;
                    inner.dropped_entries += chunk.len() as u64;
                    if self.want_entries {
                        flor_obs::metrics::counter("scheduler.sink_dropped_entries")
                            .add(chunk.len() as u64);
                    }
                } else {
                    inner.queue.push_back(JobEvent::Entries(chunk));
                }
            }
            JobEvent::Progress(p) => {
                // Coalesce: a reader that can't keep up sees the latest
                // counters, not a backlog of stale ones.
                if matches!(inner.queue.back(), Some(JobEvent::Progress(_))) {
                    inner.queue.pop_back();
                }
                inner.queue.push_back(JobEvent::Progress(p));
            }
            JobEvent::Anomaly(_) => inner.queue.push_back(ev),
        }
        drop(inner);
        (self.wake)();
    }

    /// Takes every queued event (FIFO).
    pub fn drain(&self) -> Vec<JobEvent> {
        let mut inner = self.inner.lock().unwrap();
        inner.queue.drain(..).collect()
    }

    /// True once the terminal event has been pushed (it may still be
    /// waiting in the queue for a drain).
    pub fn is_done(&self) -> bool {
        self.inner.lock().unwrap().done
    }

    /// Entries dropped because the sink was full, a drop already made the
    /// tail sticky, or entries were not wanted; the completed outcome's
    /// log makes readers whole (they extend their contiguous prefix).
    pub fn dropped_entries(&self) -> u64 {
        self.inner.lock().unwrap().dropped_entries
    }
}

impl std::fmt::Debug for JobSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("JobSink")
            .field("queued", &inner.queue.len())
            .field("done", &inner.done)
            .field("dropped_entries", &inner.dropped_entries)
            .finish()
    }
}

/// Entry in the priority queue. Ordering: priority desc, then submission
/// order asc (BinaryHeap is a max-heap, so `seq` is compared reversed).
struct QueuedJob {
    priority: i32,
    seq: u64,
    id: JobId,
    job: QueryJob,
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for QueuedJob {}
impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

struct SchedState {
    queue: BinaryHeap<QueuedJob>,
    jobs: HashMap<JobId, JobState>,
    /// Streaming progress per job (kept after completion for inspection).
    progress: HashMap<JobId, JobProgress>,
    next_id: JobId,
    next_seq: u64,
    /// Jobs submitted but not yet terminal (queued or running).
    outstanding: usize,
    /// Jobs waiting in the queue (excludes running; stale heap entries
    /// for already-cancelled jobs are not counted).
    queued: usize,
    /// Cancellation tokens of running jobs.
    cancels: HashMap<JobId, CancelToken>,
    /// Event sinks of jobs submitted with one.
    sinks: HashMap<JobId, Arc<JobSink>>,
}

struct Shared {
    registry: Arc<Registry>,
    state: Mutex<SchedState>,
    /// Signaled on queue pushes and shutdown.
    work_ready: Condvar,
    /// Signaled whenever a job reaches a terminal state.
    job_done: Condvar,
    shutdown: AtomicBool,
    /// Maximum queued (not yet running) jobs; 0 = unbounded.
    queue_limit: usize,
}

/// Bounded worker pool executing [`QueryJob`]s against a shared
/// [`Registry`].
pub struct ReplayScheduler {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ReplayScheduler {
    /// Starts a pool of `pool_workers` threads (at least 1) serving
    /// queries from `registry`, with an unbounded queue.
    pub fn new(registry: Arc<Registry>, pool_workers: usize) -> Self {
        Self::with_queue_limit(registry, pool_workers, 0)
    }

    /// [`ReplayScheduler::new`] with a bound on queued (not yet running)
    /// jobs: submissions past `queue_limit` fail fast with a scheduler
    /// error instead of growing the backlog (0 = unbounded).
    pub fn with_queue_limit(
        registry: Arc<Registry>,
        pool_workers: usize,
        queue_limit: usize,
    ) -> Self {
        let shared = Arc::new(Shared {
            registry,
            state: Mutex::new(SchedState {
                queue: BinaryHeap::new(),
                jobs: HashMap::new(),
                progress: HashMap::new(),
                next_id: 1,
                next_seq: 0,
                outstanding: 0,
                queued: 0,
                cancels: HashMap::new(),
                sinks: HashMap::new(),
            }),
            work_ready: Condvar::new(),
            job_done: Condvar::new(),
            shutdown: AtomicBool::new(false),
            queue_limit,
        });
        let workers = (0..pool_workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared, i))
            })
            .collect();
        ReplayScheduler { shared, workers }
    }

    /// Number of pool workers (the replay concurrency bound).
    pub fn pool_size(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job; returns its id immediately.
    pub fn submit(&self, job: QueryJob) -> Result<JobId, RegistryError> {
        self.submit_inner(job, None)
    }

    /// Enqueues a job with an event sink: the executing worker pushes
    /// streamed log chunks, progress, anomalies, and finally the terminal
    /// state into `sink` — the push side of the serving layer's
    /// backpressured live streaming.
    pub fn submit_with_sink(
        &self,
        job: QueryJob,
        sink: Arc<JobSink>,
    ) -> Result<JobId, RegistryError> {
        self.submit_inner(job, Some(sink))
    }

    fn submit_inner(
        &self,
        job: QueryJob,
        sink: Option<Arc<JobSink>>,
    ) -> Result<JobId, RegistryError> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(RegistryError::Scheduler("scheduler is shut down".into()));
        }
        let mut state = self.shared.state.lock().unwrap();
        if self.shared.queue_limit > 0 && state.queued >= self.shared.queue_limit {
            return Err(RegistryError::Scheduler(format!(
                "queue full ({} queued jobs)",
                state.queued
            )));
        }
        let id = state.next_id;
        state.next_id += 1;
        let seq = state.next_seq;
        state.next_seq += 1;
        state.jobs.insert(id, JobState::Queued);
        state.outstanding += 1;
        state.queued += 1;
        if let Some(sink) = sink {
            state.sinks.insert(id, sink);
        }
        state.queue.push(QueuedJob {
            priority: job.priority,
            seq,
            id,
            job,
        });
        drop(state);
        self.shared.work_ready.notify_one();
        Ok(id)
    }

    /// Current state of a job (`None` for unknown ids).
    pub fn status(&self, id: JobId) -> Option<JobState> {
        self.shared.state.lock().unwrap().jobs.get(&id).cloned()
    }

    /// Streaming progress of a job (`None` before its replay started).
    /// Running jobs update continuously as workers complete micro-ranges;
    /// finished jobs retain their final counters.
    pub fn progress(&self, id: JobId) -> Option<JobProgress> {
        self.shared.state.lock().unwrap().progress.get(&id).copied()
    }

    /// Cancels a job if it is still queued. Returns `true` on success;
    /// running or finished jobs are not interrupted (use
    /// [`ReplayScheduler::cancel_job`] for cooperative mid-flight
    /// cancellation).
    pub fn cancel(&self, id: JobId) -> bool {
        let mut state = self.shared.state.lock().unwrap();
        match state.jobs.get(&id) {
            Some(JobState::Queued) => {
                Self::cancel_queued_locked(&mut state, id);
                drop(state);
                self.shared.job_done.notify_all();
                true
            }
            _ => false,
        }
    }

    /// Cancels a job wherever it is in its lifecycle: queued jobs become
    /// terminal `Cancelled` immediately; running jobs get their
    /// cancellation token fired, and the replay's workers bail out at the
    /// next iteration boundary (the replay errors with `Cancelled`, the
    /// result is never cached, and the job slot frees).
    pub fn cancel_job(&self, id: JobId) -> CancelResult {
        let mut state = self.shared.state.lock().unwrap();
        match state.jobs.get(&id) {
            Some(JobState::Queued) => {
                Self::cancel_queued_locked(&mut state, id);
                drop(state);
                self.shared.job_done.notify_all();
                CancelResult::Cancelled
            }
            Some(JobState::Running) => {
                if let Some(token) = state.cancels.get(&id) {
                    token.cancel();
                }
                // `outstanding` is untouched: the worker observes the
                // token, finishes with `Cancelled`, and decrements.
                CancelResult::CancelRequested
            }
            _ => CancelResult::NotCancellable,
        }
    }

    /// Marks a queued job Cancelled under the state lock: terminal state,
    /// slot bookkeeping, and the sink's Done event (the heap entry stays;
    /// workers skip ids no longer Queued).
    fn cancel_queued_locked(state: &mut SchedState, id: JobId) {
        state.jobs.insert(id, JobState::Cancelled);
        state.outstanding -= 1;
        state.queued = state.queued.saturating_sub(1);
        if let Some(sink) = state.sinks.remove(&id) {
            sink.push(JobEvent::Done(JobState::Cancelled));
        }
    }

    /// Blocks until `id` reaches a terminal state and returns it.
    pub fn wait(&self, id: JobId) -> Result<JobState, RegistryError> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            match state.jobs.get(&id) {
                None => {
                    return Err(RegistryError::Scheduler(format!("unknown job {id}")));
                }
                Some(s) if s.is_terminal() => return Ok(s.clone()),
                Some(_) => {
                    state = self.shared.job_done.wait(state).unwrap();
                }
            }
        }
    }

    /// Blocks until every submitted job is terminal.
    pub fn drain(&self) {
        let mut state = self.shared.state.lock().unwrap();
        while state.outstanding > 0 {
            state = self.shared.job_done.wait(state).unwrap();
        }
    }

    /// Jobs submitted and not yet terminal.
    pub fn outstanding(&self) -> usize {
        self.shared.state.lock().unwrap().outstanding
    }

    /// Jobs waiting in the queue (not yet picked up by a worker) — the
    /// depth admission control sheds on.
    pub fn queued_depth(&self) -> usize {
        self.shared.state.lock().unwrap().queued
    }
}

impl Drop for ReplayScheduler {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work_ready.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Anything still queued is now cancelled.
        let mut state = self.shared.state.lock().unwrap();
        let ids: Vec<JobId> = state
            .jobs
            .iter()
            .filter(|(_, s)| matches!(s, JobState::Queued))
            .map(|(id, _)| *id)
            .collect();
        for id in ids {
            Self::cancel_queued_locked(&mut state, id);
        }
        drop(state);
        self.shared.job_done.notify_all();
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    flor_obs::set_lane(
        flor_obs::trace::LANE_SCHEDULER_BASE + worker as u32,
        &format!("scheduler-{worker}"),
    );
    loop {
        let (id, job, cancel, sink) = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // Pop past entries cancelled while queued.
                match state.queue.pop() {
                    Some(q) => {
                        if matches!(state.jobs.get(&q.id), Some(JobState::Queued)) {
                            state.jobs.insert(q.id, JobState::Running);
                            state.queued = state.queued.saturating_sub(1);
                            let cancel = CancelToken::new();
                            state.cancels.insert(q.id, cancel.clone());
                            let sink = state.sinks.get(&q.id).cloned();
                            break (q.id, q.job, cancel, sink);
                        }
                        // else: stale entry for a cancelled job — drop it.
                    }
                    None => {
                        state = shared.work_ready.wait(state).unwrap();
                    }
                }
            }
        };
        // Stream the query so pollers see live progress (iterations done,
        // steals, entries emitted, elapsed wall time) while the replay
        // workers run.
        let mut span = flor_obs::span(flor_obs::Category::Job, "job");
        span.set_args(id, job.workers as u64);
        let t0 = flor_obs::clock::now_ns();
        let mut on_event = |ev: QueryEvent| {
            let mut state = shared.state.lock().unwrap();
            let p = state.progress.entry(id).or_default();
            p.wall_ns = flor_obs::clock::since_ns(t0);
            let forwarded = match ev {
                QueryEvent::Entries(chunk) => {
                    if p.entries_streamed == 0 && !chunk.is_empty() {
                        p.stream_first_entry_ns = p.wall_ns;
                    }
                    p.entries_streamed += chunk.len() as u64;
                    JobEvent::Entries(chunk)
                }
                QueryEvent::Progress {
                    iterations_done,
                    iterations_total,
                    steals,
                } => {
                    p.iterations_done = iterations_done;
                    p.iterations_total = iterations_total;
                    p.steals = steals;
                    JobEvent::Progress(*p)
                }
                QueryEvent::Anomaly(a) => JobEvent::Anomaly(a),
            };
            drop(state);
            if let Some(sink) = &sink {
                sink.push(forwarded);
            }
        };
        let outcome = shared.registry.query_streaming_cancellable(
            &job.run_id,
            &job.probed_source,
            job.workers,
            Some(cancel),
            &mut on_event,
        );
        let wall_ns = flor_obs::clock::since_ns(t0);
        drop(span);
        flor_obs::histogram!("scheduler.job_ns").observe(wall_ns);
        if !job.tenant.is_empty() {
            flor_obs::metrics::histogram_named(&format!("tenant.{}.job_ns", job.tenant))
                .observe(wall_ns);
        }
        let terminal = match &outcome {
            Ok(result) => {
                let mut state = shared.state.lock().unwrap();
                let p = state.progress.entry(id).or_default();
                // The replay's own first-entry clock (measured from replay
                // start, after queueing) supersedes the observer's estimate.
                if result.stream_first_entry_ns > 0 {
                    p.stream_first_entry_ns = result.stream_first_entry_ns;
                }
                p.statements_elided = result.statements_elided;
                p.slice_permille = result.slice_permille;
                p.slice_cache_hits = result.slice_cache_hits;
                drop(state);
                JobState::Completed(result.clone())
            }
            Err(RegistryError::Engine(flor_core::FlorError::Cancelled)) => JobState::Cancelled,
            Err(e) => JobState::Failed(e.to_string()),
        };
        let mut state = shared.state.lock().unwrap();
        state.progress.entry(id).or_default().wall_ns = wall_ns;
        state.jobs.insert(id, terminal.clone());
        state.outstanding -= 1;
        state.cancels.remove(&id);
        let sink = state.sinks.remove(&id);
        drop(state);
        if let Some(sink) = sink {
            sink.push(JobEvent::Done(terminal));
        }
        shared.job_done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flor_core::logstream::Section;

    fn entry(i: u64) -> LogEntry {
        LogEntry {
            key: "loss".into(),
            value: i.to_string(),
            section: Section::Iter(i),
        }
    }

    /// Once the bounded sink drops a chunk, every later chunk must drop
    /// too — otherwise the reader's completion catch-up (which resumes at
    /// its emitted-entry count) would deliver gaps and duplicates.
    #[test]
    fn sink_drops_are_sticky_so_delivered_entries_stay_a_contiguous_prefix() {
        let sink = JobSink::new(true, 2, || {});
        sink.push(JobEvent::Entries(vec![entry(0)]));
        sink.push(JobEvent::Entries(vec![entry(1)]));
        // Queue full (cap 2): dropped.
        sink.push(JobEvent::Entries(vec![entry(2), entry(3)]));
        assert_eq!(sink.dropped_entries(), 2);

        // The reader drains, freeing queue space…
        let delivered: Vec<LogEntry> = sink
            .drain()
            .into_iter()
            .flat_map(|ev| match ev {
                JobEvent::Entries(c) => c,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(delivered, vec![entry(0), entry(1)]);

        // …but a post-drop chunk still drops: queueing entry 4 after the
        // lost 2..=3 would corrupt the stream.
        sink.push(JobEvent::Entries(vec![entry(4)]));
        assert_eq!(sink.dropped_entries(), 3);
        assert!(sink.drain().is_empty());

        // The terminal event always lands.
        sink.push(JobEvent::Done(JobState::Cancelled));
        assert!(sink.is_done());
    }
}
