//! The replay job scheduler: a bounded worker pool dispatching queued
//! hindsight queries.
//!
//! Replay is CPU-bound (each query re-executes probed SkipBlocks through
//! `core::parallel`'s worker plans), so a serving deployment must bound
//! how many replays run at once no matter how many users queue queries.
//! Jobs carry a priority (higher first, FIFO within a priority), can be
//! cancelled while queued, and expose a status API for polling; `wait`
//! blocks until a job reaches a terminal state.

use crate::error::RegistryError;
use crate::service::{QueryEvent, QueryOutcome, Registry};
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Identifier of a submitted job.
pub type JobId = u64;

/// A queued hindsight query.
#[derive(Debug, Clone)]
pub struct QueryJob {
    /// Target run id.
    pub run_id: String,
    /// Probed source to replay.
    pub probed_source: String,
    /// Replay workers for this job's worker plan.
    pub workers: usize,
    /// Scheduling priority: higher runs first.
    pub priority: i32,
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone)]
pub enum JobState {
    /// Waiting in the priority queue.
    Queued,
    /// Executing on a pool worker.
    Running,
    /// Finished successfully.
    Completed(QueryOutcome),
    /// Finished with an error (message — `RegistryError` is not `Clone`).
    Failed(String),
    /// Cancelled before a worker picked it up.
    Cancelled,
}

impl JobState {
    /// True for `Completed` / `Failed` / `Cancelled`.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Completed(_) | JobState::Failed(_) | JobState::Cancelled
        )
    }
}

/// Live progress of a running (or finished) job, fed by the streaming
/// replay runtime — poll it with [`ReplayScheduler::progress`] while
/// [`ReplayScheduler::status`] still says `Running`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobProgress {
    /// Main-loop iterations completed across the job's replay workers.
    pub iterations_done: u64,
    /// Total main-loop iterations (0 until the replay learns it).
    pub iterations_total: u64,
    /// Micro-ranges stolen between the job's replay workers.
    pub steals: u64,
    /// Record-order log entries streamed out so far.
    pub entries_streamed: u64,
    /// Time until the job's replay emitted its first record-order entry,
    /// ns from job start (0 until the first chunk lands).
    pub stream_first_entry_ns: u64,
    /// Wall time the job has been executing, ns: live (updated on every
    /// streamed event) while running, final on completion.
    pub wall_ns: u64,
    /// Statements the backward slicer elided from the job's replay
    /// (final on completion; 0 while running or unsliced).
    pub statements_elided: u64,
    /// Live fraction of the sliced program in permille (0 = unsliced).
    pub slice_permille: u32,
    /// 1 when the job was answered from the cross-query slice cache.
    pub slice_cache_hits: u64,
}

impl JobProgress {
    /// Every counter as a `(name, value)` list — the single source both
    /// the prose status line and any JSON surface render from, so a field
    /// added here cannot silently drift between the two.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("iterations_done", self.iterations_done),
            ("iterations_total", self.iterations_total),
            ("steals", self.steals),
            ("entries_streamed", self.entries_streamed),
            ("stream_first_entry_ns", self.stream_first_entry_ns),
            ("wall_ns", self.wall_ns),
            ("statements_elided", self.statements_elided),
            ("slice_permille", u64::from(self.slice_permille)),
            ("slice_cache_hits", self.slice_cache_hits),
        ]
    }
}

/// Entry in the priority queue. Ordering: priority desc, then submission
/// order asc (BinaryHeap is a max-heap, so `seq` is compared reversed).
struct QueuedJob {
    priority: i32,
    seq: u64,
    id: JobId,
    job: QueryJob,
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for QueuedJob {}
impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

struct SchedState {
    queue: BinaryHeap<QueuedJob>,
    jobs: HashMap<JobId, JobState>,
    /// Streaming progress per job (kept after completion for inspection).
    progress: HashMap<JobId, JobProgress>,
    next_id: JobId,
    next_seq: u64,
    /// Jobs submitted but not yet terminal (queued or running).
    outstanding: usize,
}

struct Shared {
    registry: Arc<Registry>,
    state: Mutex<SchedState>,
    /// Signaled on queue pushes and shutdown.
    work_ready: Condvar,
    /// Signaled whenever a job reaches a terminal state.
    job_done: Condvar,
    shutdown: AtomicBool,
}

/// Bounded worker pool executing [`QueryJob`]s against a shared
/// [`Registry`].
pub struct ReplayScheduler {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ReplayScheduler {
    /// Starts a pool of `pool_workers` threads (at least 1) serving
    /// queries from `registry`.
    pub fn new(registry: Arc<Registry>, pool_workers: usize) -> Self {
        let shared = Arc::new(Shared {
            registry,
            state: Mutex::new(SchedState {
                queue: BinaryHeap::new(),
                jobs: HashMap::new(),
                progress: HashMap::new(),
                next_id: 1,
                next_seq: 0,
                outstanding: 0,
            }),
            work_ready: Condvar::new(),
            job_done: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..pool_workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared, i))
            })
            .collect();
        ReplayScheduler { shared, workers }
    }

    /// Number of pool workers (the replay concurrency bound).
    pub fn pool_size(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job; returns its id immediately.
    pub fn submit(&self, job: QueryJob) -> Result<JobId, RegistryError> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(RegistryError::Scheduler("scheduler is shut down".into()));
        }
        let mut state = self.shared.state.lock().unwrap();
        let id = state.next_id;
        state.next_id += 1;
        let seq = state.next_seq;
        state.next_seq += 1;
        state.jobs.insert(id, JobState::Queued);
        state.outstanding += 1;
        state.queue.push(QueuedJob {
            priority: job.priority,
            seq,
            id,
            job,
        });
        drop(state);
        self.shared.work_ready.notify_one();
        Ok(id)
    }

    /// Current state of a job (`None` for unknown ids).
    pub fn status(&self, id: JobId) -> Option<JobState> {
        self.shared.state.lock().unwrap().jobs.get(&id).cloned()
    }

    /// Streaming progress of a job (`None` before its replay started).
    /// Running jobs update continuously as workers complete micro-ranges;
    /// finished jobs retain their final counters.
    pub fn progress(&self, id: JobId) -> Option<JobProgress> {
        self.shared.state.lock().unwrap().progress.get(&id).copied()
    }

    /// Cancels a job if it is still queued. Returns `true` on success;
    /// running or finished jobs are not interrupted.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut state = self.shared.state.lock().unwrap();
        match state.jobs.get(&id) {
            Some(JobState::Queued) => {
                state.jobs.insert(id, JobState::Cancelled);
                state.outstanding -= 1;
                // The queue entry stays; workers skip ids no longer Queued.
                drop(state);
                self.shared.job_done.notify_all();
                true
            }
            _ => false,
        }
    }

    /// Blocks until `id` reaches a terminal state and returns it.
    pub fn wait(&self, id: JobId) -> Result<JobState, RegistryError> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            match state.jobs.get(&id) {
                None => {
                    return Err(RegistryError::Scheduler(format!("unknown job {id}")));
                }
                Some(s) if s.is_terminal() => return Ok(s.clone()),
                Some(_) => {
                    state = self.shared.job_done.wait(state).unwrap();
                }
            }
        }
    }

    /// Blocks until every submitted job is terminal.
    pub fn drain(&self) {
        let mut state = self.shared.state.lock().unwrap();
        while state.outstanding > 0 {
            state = self.shared.job_done.wait(state).unwrap();
        }
    }

    /// Jobs submitted and not yet terminal.
    pub fn outstanding(&self) -> usize {
        self.shared.state.lock().unwrap().outstanding
    }
}

impl Drop for ReplayScheduler {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work_ready.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Anything still queued is now cancelled.
        let mut state = self.shared.state.lock().unwrap();
        let ids: Vec<JobId> = state
            .jobs
            .iter()
            .filter(|(_, s)| matches!(s, JobState::Queued))
            .map(|(id, _)| *id)
            .collect();
        for id in ids {
            state.jobs.insert(id, JobState::Cancelled);
            state.outstanding -= 1;
        }
        drop(state);
        self.shared.job_done.notify_all();
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    flor_obs::set_lane(
        flor_obs::trace::LANE_SCHEDULER_BASE + worker as u32,
        &format!("scheduler-{worker}"),
    );
    loop {
        let (id, job) = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // Pop past entries cancelled while queued.
                match state.queue.pop() {
                    Some(q) => {
                        if matches!(state.jobs.get(&q.id), Some(JobState::Queued)) {
                            state.jobs.insert(q.id, JobState::Running);
                            break (q.id, q.job);
                        }
                        // else: stale entry for a cancelled job — drop it.
                    }
                    None => {
                        state = shared.work_ready.wait(state).unwrap();
                    }
                }
            }
        };
        // Stream the query so pollers see live progress (iterations done,
        // steals, entries emitted, elapsed wall time) while the replay
        // workers run.
        let mut span = flor_obs::span(flor_obs::Category::Job, "job");
        span.set_args(id, job.workers as u64);
        let t0 = flor_obs::clock::now_ns();
        let mut on_event = |ev: QueryEvent| {
            let mut state = shared.state.lock().unwrap();
            let p = state.progress.entry(id).or_default();
            p.wall_ns = flor_obs::clock::since_ns(t0);
            match ev {
                QueryEvent::Entries(chunk) => {
                    if p.entries_streamed == 0 && !chunk.is_empty() {
                        p.stream_first_entry_ns = p.wall_ns;
                    }
                    p.entries_streamed += chunk.len() as u64;
                }
                QueryEvent::Progress {
                    iterations_done,
                    iterations_total,
                    steals,
                } => {
                    p.iterations_done = iterations_done;
                    p.iterations_total = iterations_total;
                    p.steals = steals;
                }
                QueryEvent::Anomaly(_) => {}
            }
        };
        let outcome = shared.registry.query_streaming(
            &job.run_id,
            &job.probed_source,
            job.workers,
            &mut on_event,
        );
        let wall_ns = flor_obs::clock::since_ns(t0);
        drop(span);
        flor_obs::histogram!("scheduler.job_ns").observe(wall_ns);
        let terminal = match &outcome {
            Ok(result) => {
                let mut state = shared.state.lock().unwrap();
                let p = state.progress.entry(id).or_default();
                // The replay's own first-entry clock (measured from replay
                // start, after queueing) supersedes the observer's estimate.
                if result.stream_first_entry_ns > 0 {
                    p.stream_first_entry_ns = result.stream_first_entry_ns;
                }
                p.statements_elided = result.statements_elided;
                p.slice_permille = result.slice_permille;
                p.slice_cache_hits = result.slice_cache_hits;
                drop(state);
                JobState::Completed(result.clone())
            }
            Err(e) => JobState::Failed(e.to_string()),
        };
        let mut state = shared.state.lock().unwrap();
        state.progress.entry(id).or_default().wall_ns = wall_ns;
        state.jobs.insert(id, terminal);
        state.outstanding -= 1;
        drop(state);
        shared.job_done.notify_all();
    }
}
