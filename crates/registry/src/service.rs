//! The registry service: catalog + store-handle pool + query cache.
//!
//! One [`Registry`] serves many users over many recorded runs. It owns:
//!
//! - the [`RunCatalog`](crate::catalog::RunCatalog) (persistent run index),
//! - a pool of open [`CheckpointStore`] handles, one per run, so repeated
//!   queries skip re-scanning store manifests — and every user of a pooled
//!   handle shares that store's persistent MANIFEST appender and O(1)
//!   byte-total counters (one open fd per run, however many sessions
//!   record or replay against it),
//! - the content-addressed [`QueryCache`](crate::cache::QueryCache) — the
//!   second identical query is served from disk without touching the
//!   replay engine.
//!
//! Layout under the registry root:
//!
//! ```text
//! root/
//!   CATALOG          append-only, CRC-protected run index
//!   cache/<key>      materialized query results (content-addressed)
//!   stores/<run_id>  default checkpoint-store location for managed runs
//! ```

use crate::cache::{query_key, CachedResult, QueryCache};
use crate::catalog::{RunCatalog, RunRecord};
use crate::error::RegistryError;
use flor_chkpt::CheckpointStore;
use flor_core::logstream::LogEntry;
use flor_core::record::{
    log_iterations, record, source_version, RecordOptions, RecordReport, RUN_META_ARTIFACT,
};
use flor_core::replay::{replay_streaming, ReplayOptions};
use flor_core::stream::StreamEvent;
use flor_core::InitMode;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Answer to one hindsight query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The queried run.
    pub run_id: String,
    /// Content address of the query (cache key).
    pub key: String,
    /// True when served from the result cache (no replay executed).
    pub cached: bool,
    /// The materialized hindsight log, record-ordered.
    pub log: Vec<LogEntry>,
    /// Probes the source diff detected.
    pub probes: u64,
    /// Deferred-check anomalies (fresh replays only; cached results were
    /// anomaly-free by construction).
    pub anomalies: Vec<String>,
    /// SkipBlocks restored from checkpoints (0 for cache hits).
    pub restored: u64,
    /// SkipBlocks re-executed (0 for cache hits).
    pub executed: u64,
    /// Time spent replaying, ns (0 for cache hits).
    pub wall_ns: u64,
    /// Micro-ranges stolen between replay workers (0 for cache hits).
    pub steals: u64,
    /// Time until the streaming merge emitted the first record-order log
    /// entry, ns from replay start (0 for cache hits — the whole result
    /// was available at once).
    pub stream_first_entry_ns: u64,
    /// Statements the backward slicer elided from re-executed bodies
    /// (0 for cache hits and unsliced replays).
    pub statements_elided: u64,
    /// Live fraction of the instrumented program after slicing, in
    /// permille (0 when no slice was applied — a full replay).
    pub slice_permille: u32,
    /// 1 when this answer was served from the cross-query slice cache
    /// (a textually different probe had already materialized the same
    /// live cone), 0 otherwise.
    pub slice_cache_hits: u64,
}

/// One streaming-query event, delivered while the replay is still running.
#[derive(Debug, Clone)]
pub enum QueryEvent {
    /// A record-order chunk of the hindsight log (never re-delivered; the
    /// concatenation of all chunks is the final `QueryOutcome::log`).
    Entries(Vec<LogEntry>),
    /// Progress counters after a worker completed a micro-range.
    Progress {
        /// Iterations completed across all workers.
        iterations_done: u64,
        /// Total main-loop iterations (0 until known).
        iterations_total: u64,
        /// Micro-ranges stolen so far.
        steals: u64,
    },
    /// An anomaly found by the incremental deferred check.
    Anomaly(String),
}

/// A multi-run registry rooted at one directory.
pub struct Registry {
    root: PathBuf,
    catalog: RunCatalog,
    cache: QueryCache,
    /// run_id → open store handle (reused across queries and workers).
    stores: Mutex<HashMap<String, Arc<CheckpointStore>>>,
    /// Single-flight gates: one lock per in-flight query key, so N users
    /// posing the same query trigger one replay and N−1 cache hits.
    inflight: Mutex<HashMap<String, Arc<Mutex<()>>>>,
    /// Compiled-module cache shared by every query this registry serves,
    /// keyed by the probed source's version — repeat queries over one
    /// source version (even against different runs) skip the compile pass.
    module_cache: Arc<flor_core::ModuleCache>,
    /// Execute queries on the bytecode VM (default). Cleared, the
    /// tree-walking interpreter replays instead (`flor query --no-vm`).
    vm: std::sync::atomic::AtomicBool,
    /// Slice replays down to the dependency cone of their logging
    /// statements (default). Cleared (`flor query --no-slice`), every
    /// re-executed body runs in full and the cross-query slice cache is
    /// bypassed.
    slice: std::sync::atomic::AtomicBool,
}

impl Registry {
    /// Opens (or creates) a registry at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, RegistryError> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        let catalog = RunCatalog::open(root.join("CATALOG"))?;
        let cache = QueryCache::open(root.join("cache"))?;
        Ok(Registry {
            root,
            catalog,
            cache,
            stores: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            module_cache: Arc::new(flor_core::ModuleCache::new()),
            vm: std::sync::atomic::AtomicBool::new(true),
            slice: std::sync::atomic::AtomicBool::new(true),
        })
    }

    /// Selects the replay executor for subsequent queries: `true` (the
    /// default) runs the bytecode VM, `false` the tree-walking fallback.
    pub fn set_vm(&self, on: bool) {
        self.vm.store(on, std::sync::atomic::Ordering::Relaxed);
    }

    /// Enables (`true`, the default) or disables dependency slicing and
    /// the cross-query slice cache for subsequent queries.
    pub fn set_slice(&self, on: bool) {
        self.slice.store(on, std::sync::atomic::Ordering::Relaxed);
    }

    /// Registry root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The run catalog.
    pub fn catalog(&self) -> &RunCatalog {
        &self.catalog
    }

    /// The query-result cache.
    pub fn cache(&self) -> &QueryCache {
        &self.cache
    }

    /// Default store location for generation `generation` of a run recorded
    /// through this registry. Generations get disjoint directories: the
    /// catalog is append-only, and overlaying a new run onto an old store
    /// would corrupt both (and invalidate pooled handles).
    pub fn store_root_for(&self, run_id: &str, generation: u64) -> PathBuf {
        self.root
            .join("stores")
            .join(run_id)
            .join(format!("g{generation}"))
    }

    // ---- registration -----------------------------------------------------

    /// Records `src` into this registry's store area under `run_id`, then
    /// catalogs the finished run. The per-run store root is
    /// [`Registry::store_root_for`]; other [`RecordOptions`] fields can be
    /// customized via `configure`.
    pub fn record_run(
        &self,
        run_id: &str,
        src: &str,
        configure: impl FnOnce(&mut RecordOptions),
    ) -> Result<(RecordReport, RunRecord), RegistryError> {
        let store_root = self.claim_store_dir(run_id)?;
        let mut opts = RecordOptions::new(&store_root);
        configure(&mut opts);
        opts.store_root = store_root.clone();
        let report = record(src, &opts)?;
        let rec = self.register_report(run_id, src, &store_root, &report)?;
        Ok((report, rec))
    }

    /// Claims a fresh store directory for the run's next generation.
    /// `create_dir` is exclusive, so concurrent recorders (threads *or*
    /// processes) racing on the same run id get disjoint directories —
    /// never interleaved writes into one store. The directory suffix may
    /// run ahead of the cataloged generation number after failed records;
    /// the catalog's `store_root` field is authoritative.
    fn claim_store_dir(&self, run_id: &str) -> Result<PathBuf, RegistryError> {
        let base = self.root.join("stores").join(run_id);
        std::fs::create_dir_all(&base)?;
        let mut gen = self.catalog.history(run_id).len() as u64;
        loop {
            let candidate = base.join(format!("g{gen}"));
            match std::fs::create_dir(&candidate) {
                Ok(()) => {
                    // Every registry-managed store shares one
                    // content-addressed keyframe arena: re-records of the
                    // same script dedup their unchanged checkpoints across
                    // generations (and across runs). The pointer file is
                    // read at store open, so `record` needs no plumbing.
                    std::fs::write(
                        candidate.join("DEDUP"),
                        format!("{}\n", self.dedup_arena_dir().display()),
                    )?;
                    return Ok(candidate);
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => gen += 1,
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// The registry-wide content-addressed dedup arena directory. Always
    /// absolute: the `DEDUP` pointer files written from it are resolved
    /// against each *store's* root at open, so a relative registry root
    /// (`--registry ./reg`) would otherwise fracture the shared arena
    /// into one private copy per generation directory.
    pub fn dedup_arena_dir(&self) -> PathBuf {
        let dir = self.root.join("dedup");
        if dir.is_absolute() {
            return dir;
        }
        match std::env::current_dir() {
            Ok(cwd) => cwd.join(dir),
            Err(_) => dir,
        }
    }

    /// Catalogs a run from a [`RecordReport`] produced elsewhere (the store
    /// root must be the one the report was recorded into).
    pub fn register_report(
        &self,
        run_id: &str,
        src: &str,
        store_root: &Path,
        report: &RecordReport,
    ) -> Result<RunRecord, RegistryError> {
        self.catalog.register(RunRecord {
            run_id: run_id.to_string(),
            generation: 0, // assigned by the catalog
            source_version: source_version(src),
            store_root: store_root.to_path_buf(),
            iterations: log_iterations(&report.log),
            checkpoints: report.checkpoints,
            raw_bytes: report.raw_bytes,
            stored_bytes: report.stored_bytes,
            record_overhead: report.record_overhead,
            scaling_c: report.scaling_c,
        })
    }

    /// Catalogs an existing store directory (a run recorded without a
    /// registry) by reading the `run_meta.txt` artifact `core::record`
    /// leaves behind.
    pub fn adopt(&self, run_id: &str, store_root: &Path) -> Result<RunRecord, RegistryError> {
        let store = self.store_handle_at(run_id, store_root)?;
        let meta = String::from_utf8(store.get_artifact(RUN_META_ARTIFACT)?).map_err(|_| {
            RegistryError::BadRegistration("run_meta.txt is not valid UTF-8".into())
        })?;
        let mut fields: HashMap<&str, &str> = HashMap::new();
        for line in meta.lines() {
            if let Some((k, v)) = line.split_once('\t') {
                fields.insert(k, v);
            }
        }
        let get = |k: &str| -> Result<&str, RegistryError> {
            fields
                .get(k)
                .copied()
                .ok_or_else(|| RegistryError::BadRegistration(format!("run_meta missing {k:?}")))
        };
        let num = |k: &str| -> Result<u64, RegistryError> {
            get(k)?
                .parse()
                .map_err(|_| RegistryError::BadRegistration(format!("run_meta bad {k:?}")))
        };
        let fnum = |k: &str| -> Result<f64, RegistryError> {
            get(k)?
                .parse()
                .map_err(|_| RegistryError::BadRegistration(format!("run_meta bad {k:?}")))
        };
        self.catalog.register(RunRecord {
            run_id: run_id.to_string(),
            generation: 0, // assigned by the catalog
            source_version: get("source_version")?.to_string(),
            store_root: store_root.to_path_buf(),
            iterations: num("iterations")?,
            checkpoints: num("checkpoints")?,
            raw_bytes: num("raw_bytes")?,
            stored_bytes: num("stored_bytes")?,
            record_overhead: fnum("record_overhead")?,
            scaling_c: fnum("scaling_c")?,
        })
    }

    // ---- catalog views ----------------------------------------------------

    /// Latest generation of every cataloged run.
    pub fn runs(&self) -> Vec<RunRecord> {
        self.catalog.runs()
    }

    /// Latest generation of `run_id`, or [`RegistryError::UnknownRun`].
    pub fn run(&self, run_id: &str) -> Result<RunRecord, RegistryError> {
        self.catalog
            .latest(run_id)
            .ok_or_else(|| RegistryError::UnknownRun(run_id.to_string()))
    }

    /// The run's original (de-instrumented) recorded source — the text a
    /// user probes to pose a hindsight query.
    pub fn run_source(&self, run_id: &str) -> Result<String, RegistryError> {
        let rec = self.run(run_id)?;
        Ok(flor_core::versions::recorded_source(&rec.store_root)?)
    }

    // ---- queries ----------------------------------------------------------

    /// Serves a hindsight query: replay `probed_source` against `run_id`'s
    /// store with `workers` replay workers. Identical repeat queries are
    /// served from the content-addressed cache without replaying.
    pub fn query(
        &self,
        run_id: &str,
        probed_source: &str,
        workers: usize,
    ) -> Result<QueryOutcome, RegistryError> {
        self.query_impl(run_id, probed_source, workers, None, None)
    }

    /// [`Registry::query`] with a streaming observer: `on_event` receives
    /// record-order log chunks, progress counters, and anomalies while the
    /// replay is still executing — leading iterations stream out before
    /// the last replay worker finishes. Cache hits deliver the whole log
    /// as one chunk. Fresh replays run on the cost-aware work-stealing
    /// executor; the assembled result is cached exactly like `query`'s.
    pub fn query_streaming(
        &self,
        run_id: &str,
        probed_source: &str,
        workers: usize,
        on_event: &mut dyn FnMut(QueryEvent),
    ) -> Result<QueryOutcome, RegistryError> {
        self.query_impl(run_id, probed_source, workers, Some(on_event), None)
    }

    /// [`Registry::query_streaming`] with a cooperative cancellation
    /// token: once it fires, the replay's workers stop at their next
    /// iteration boundary and the query fails with
    /// `FlorError::Cancelled`. Cancelled replays are never cached, so a
    /// re-issued identical query replays fresh (or joins another
    /// in-flight replay via single-flight).
    pub fn query_streaming_cancellable(
        &self,
        run_id: &str,
        probed_source: &str,
        workers: usize,
        cancel: Option<flor_core::CancelToken>,
        on_event: &mut dyn FnMut(QueryEvent),
    ) -> Result<QueryOutcome, RegistryError> {
        self.query_impl(run_id, probed_source, workers, Some(on_event), cancel)
    }

    /// Shared body of [`Registry::query`] / [`Registry::query_streaming`].
    /// `observer: None` skips event construction entirely — a cache hit on
    /// the non-streaming path must not clone its log just to drop it.
    fn query_impl(
        &self,
        run_id: &str,
        probed_source: &str,
        workers: usize,
        mut observer: Option<&mut dyn FnMut(QueryEvent)>,
        cancel: Option<flor_core::CancelToken>,
    ) -> Result<QueryOutcome, RegistryError> {
        flor_obs::counter!("registry.queries").inc();
        let rec = self.run(run_id)?;
        let key = query_key(run_id, rec.generation, &rec.source_version, probed_source);
        if let Some(hit) = self.cache.get(&key) {
            return Ok(self.cached_outcome(run_id, &key, hit, false, &mut observer));
        }
        // Single-flight: identical concurrent queries wait for the first
        // one's replay and then read its cached result.
        let gate = self.inflight.lock().entry(key.clone()).or_default().clone();
        let result = {
            let _in_flight = gate.lock();
            if let Some(hit) = self.cache.get(&key) {
                Ok(self.cached_outcome(run_id, &key, hit, false, &mut observer))
            } else {
                self.replay_query(run_id, &rec, probed_source, workers, &key, observer, cancel)
            }
        };
        // Drop the gate's map entry so a long-lived service doesn't grow
        // one entry per distinct query forever. Waiters already holding
        // the Arc proceed unaffected; late arrivals hit the cache.
        self.inflight.lock().remove(&key);
        result
    }

    /// Materializes a cache hit into a [`QueryOutcome`], delivering the
    /// streaming events a fresh replay would have (one chunk, full
    /// progress). `slice_hit` marks answers served by slice-fingerprint
    /// rather than by raw query text.
    fn cached_outcome(
        &self,
        run_id: &str,
        key: &str,
        hit: CachedResult,
        slice_hit: bool,
        observer: &mut Option<&mut dyn FnMut(QueryEvent)>,
    ) -> QueryOutcome {
        flor_obs::counter!("registry.cache_hits").inc();
        if slice_hit {
            flor_obs::counter!("cache.slice_hits").inc();
        }
        if let Some(on_event) = observer {
            let total = log_iterations(&hit.log);
            on_event(QueryEvent::Entries(hit.log.clone()));
            on_event(QueryEvent::Progress {
                iterations_done: total,
                iterations_total: total,
                steals: 0,
            });
        }
        QueryOutcome {
            run_id: run_id.to_string(),
            key: key.to_string(),
            cached: true,
            log: hit.log,
            probes: hit.probes,
            anomalies: Vec::new(),
            restored: 0,
            executed: 0,
            wall_ns: 0,
            steals: 0,
            stream_first_entry_ns: 0,
            statements_elided: 0,
            slice_permille: 0,
            slice_cache_hits: u64::from(slice_hit),
        }
    }

    /// Slice-class cache key for a probed query, or `None` when the memo
    /// does not apply (slicing disabled, unreadable recorded source, a
    /// non-parsing probe, or an impure diff that poisons replay reuse).
    fn slice_cache_key(
        &self,
        rec: &RunRecord,
        probed_source: &str,
        store: &CheckpointStore,
    ) -> Option<String> {
        if !self.slice.load(std::sync::atomic::Ordering::Relaxed) {
            return None;
        }
        // The raw `source.flr` artifact (instrumented, exactly what replay
        // itself diffs against) — not the de-instrumented pretty print,
        // which would diff as a structural change and poison the memo.
        let recorded = String::from_utf8(store.get_artifact("source.flr").ok()?).ok()?;
        let fp = flor_core::replay::slice_fingerprint(&recorded, probed_source, store, true)?;
        Some(crate::cache::slice_key(
            &rec.run_id,
            rec.generation,
            &rec.source_version,
            fp,
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn replay_query(
        &self,
        run_id: &str,
        rec: &RunRecord,
        probed_source: &str,
        workers: usize,
        key: &str,
        mut observer: Option<&mut dyn FnMut(QueryEvent)>,
        cancel: Option<flor_core::CancelToken>,
    ) -> Result<QueryOutcome, RegistryError> {
        let store = self.store_handle_at(run_id, &rec.store_root)?;
        // Cross-query slice memo: a textually different probe that parses,
        // instruments, and slices to the same live cone has already
        // materialized this exact log — serve it for the cost of a
        // parse+slice, and backfill the raw-text key so the next identical
        // query short-circuits before reaching this point.
        let slice_key = self.slice_cache_key(rec, probed_source, &store);
        if let Some(sk) = &slice_key {
            if let Some(hit) = self.cache.get(sk) {
                self.cache.put(key, &hit)?;
                return Ok(self.cached_outcome(run_id, key, hit, true, &mut observer));
            }
        }
        // Fresh replays run on the work-stealing executor: the run's cost
        // profile sizes micro-ranges, stragglers get robbed, and results
        // stream out in record order.
        let opts = ReplayOptions {
            workers: workers.max(1),
            init_mode: InitMode::Strong,
            steal: true,
            vm: self.vm.load(std::sync::atomic::Ordering::Relaxed),
            slice: self.slice.load(std::sync::atomic::Ordering::Relaxed),
            module_cache: Some(self.module_cache.clone()),
            cancel,
        };
        let report = replay_streaming(probed_source, store, &opts, |ev| {
            let Some(on_event) = observer.as_deref_mut() else {
                return;
            };
            match ev {
                StreamEvent::Entries(chunk) => on_event(QueryEvent::Entries(chunk.to_vec())),
                StreamEvent::Anomaly(a) => on_event(QueryEvent::Anomaly(a.to_string())),
                StreamEvent::Progress {
                    iterations_done,
                    iterations_total,
                    steals,
                } => on_event(QueryEvent::Progress {
                    iterations_done,
                    iterations_total,
                    steals,
                }),
            }
        })?;
        let outcome = QueryOutcome {
            run_id: run_id.to_string(),
            key: key.to_string(),
            cached: false,
            probes: report.probes.len() as u64,
            anomalies: report.anomalies,
            restored: report.stats.restored,
            executed: report.stats.executed,
            wall_ns: report.wall_ns,
            steals: report.stats.steals,
            stream_first_entry_ns: report.stats.stream_first_entry_ns,
            statements_elided: report.stats.statements_elided,
            slice_permille: report.stats.slice_permille,
            slice_cache_hits: 0,
            log: report.log,
        };
        // Only clean materializations are worth addressing by content:
        // anomalous replays should re-run (and re-warn) every time. The
        // result lands under both the raw-text key and (when the slicer
        // produced a fingerprint) the slice-class key, so later textual
        // variants of the same live cone replay nothing.
        if outcome.anomalies.is_empty() {
            let mut span = flor_obs::span(flor_obs::Category::Commit, "cache_commit");
            span.set_args(outcome.log.len() as u64, 0);
            let result = CachedResult {
                probes: outcome.probes,
                log: outcome.log.clone(),
            };
            self.cache.put(key, &result)?;
            if let Some(sk) = &slice_key {
                self.cache.put(sk, &result)?;
            }
        }
        Ok(outcome)
    }

    /// Returns the pooled store handle for a run, opening it on first use.
    fn store_handle_at(
        &self,
        run_id: &str,
        store_root: &Path,
    ) -> Result<Arc<CheckpointStore>, RegistryError> {
        let mut stores = self.stores.lock();
        if let Some(handle) = stores.get(run_id) {
            // A re-registration may have moved the run's store; only reuse
            // handles that still point at the cataloged root.
            if handle.root() == store_root {
                return Ok(handle.clone());
            }
        }
        let handle = Arc::new(CheckpointStore::open(store_root)?);
        stores.insert(run_id.to_string(), handle.clone());
        Ok(handle)
    }

    /// Number of pooled open store handles.
    pub fn open_store_handles(&self) -> usize {
        self.stores.lock().len()
    }

    /// Point-in-time snapshot of every process-wide observability metric
    /// (query/cache counters, store commit/restore/compact latencies,
    /// record submit latencies, …) — the payload behind `flor serve`'s
    /// `metrics` verb.
    pub fn metrics_snapshot(&self) -> flor_obs::MetricSnapshot {
        flor_obs::metrics::snapshot()
    }

    /// Per-tenant slice of the metrics registry: only the
    /// `tenant.<name>.*` counters and histograms the serving layer tags —
    /// the payload behind `flor serve`'s `metrics <tenant>` verb.
    pub fn tenant_metrics_snapshot(&self, tenant: &str) -> flor_obs::MetricSnapshot {
        flor_obs::metrics::snapshot_prefixed(&format!("tenant.{tenant}."))
    }

    // ---- storage-engine surface -------------------------------------------

    /// Storage-engine counters for a run's (latest-generation) checkpoint
    /// store: segments, live/dead bytes, zero-copy read and cache
    /// counters, compactions.
    pub fn store_stats(&self, run_id: &str) -> Result<flor_chkpt::StoreStats, RegistryError> {
        let rec = self.run(run_id)?;
        Ok(self.store_handle_at(run_id, &rec.store_root)?.stats())
    }

    /// What open-time recovery found on the run's store (missing data,
    /// orphaned segments, manifest repairs).
    pub fn store_recovery(
        &self,
        run_id: &str,
    ) -> Result<flor_chkpt::RecoveryReport, RegistryError> {
        let rec = self.run(run_id)?;
        Ok(self
            .store_handle_at(run_id, &rec.store_root)?
            .recovery_report()
            .clone())
    }

    /// Compacts a run's checkpoint store: superseded re-puts and dead
    /// segment bytes are rewritten out, legacy file-per-checkpoint data is
    /// migrated into segments. Queries through the pooled handle keep
    /// working throughout (readers never block on compaction).
    pub fn compact_run(&self, run_id: &str) -> Result<flor_chkpt::CompactionReport, RegistryError> {
        let rec = self.run(run_id)?;
        let store = self.store_handle_at(run_id, &rec.store_root)?;
        Ok(store.compact()?)
    }

    /// Applies a [`RetentionPolicy`](crate::catalog::RetentionPolicy):
    /// deletes the checkpoint stores of prunable (superseded) generations
    /// and drops any pooled handle that pointed at them. Returns the
    /// pruned generations. The catalog keeps their metadata — history
    /// stays queryable; only the replay data is reclaimed.
    pub fn apply_retention(
        &self,
        run_id: &str,
        policy: &crate::catalog::RetentionPolicy,
    ) -> Result<Vec<RunRecord>, RegistryError> {
        // Resolve the run first so an unknown id errors instead of
        // silently pruning nothing.
        let live = self.run(run_id)?;
        let prunable = self.catalog.prunable(run_id, policy);
        let mut pruned = Vec::new();
        for rec in prunable {
            if rec.store_root == live.store_root || !rec.store_root.exists() {
                continue;
            }
            // Invalidate a pooled handle before deleting the data under it.
            {
                let mut stores = self.stores.lock();
                if stores
                    .get(run_id)
                    .is_some_and(|h| h.root() == rec.store_root)
                {
                    stores.remove(run_id);
                }
            }
            // Release this generation's arena references before the store
            // directory goes away: pruning one run must never sever a
            // surviving run's `@dup` entries, and the refcount is what
            // guarantees that. Failing open is tolerated (the refs leak
            // toward over-retention, never toward data loss); failing a
            // release is not — deleting the store after a half-applied
            // release would make a retry impossible.
            if let Ok(store) = flor_chkpt::CheckpointStore::open_read_only(&rec.store_root) {
                if let Some(arena) = store.dedup_index() {
                    for hash in store.dedup_references() {
                        arena.release(hash).map_err(flor_chkpt::StoreError::from)?;
                    }
                }
            }
            std::fs::remove_dir_all(&rec.store_root)?;
            pruned.push(rec);
        }
        Ok(pruned)
    }
}
