//! # flor-registry
//!
//! The serving layer over flor-core's single-run record–replay engine: a
//! **multi-run catalog** plus a **hindsight query service** with a
//! **replay job scheduler** — the step from the paper's per-run
//! physiological recovery (Garcia et al., VLDB 2020, §8 "Queries Across
//! Projects and Versions") toward a queryable store of many users' runs.
//!
//! - [`catalog`]: persistent, versioned run index (append-only,
//!   CRC-protected `CATALOG` file; crash-recovering load).
//! - [`cache`]: content-addressed caching of materialized query results —
//!   the second identical query is O(1), served without replaying.
//! - [`service`]: the [`Registry`] — catalog + pooled store handles +
//!   cache behind one query API.
//! - [`scheduler`]: bounded worker pool dispatching queued queries with
//!   per-job priority, cancellation, and a status API.
//! - [`admission`]: multi-tenant admission control — token quotas,
//!   concurrent-job limits, and latency-aware queue shedding.
//! - [`session`]: the serve protocol state machine, shared by the stdin
//!   adapter and the socket server.
//! - [`server`]: epoll event loop serving the protocol over TCP and Unix
//!   sockets with per-connection backpressure (vendored `flor-net`
//!   syscalls; no tokio, no libc).
//! - [`error`]: [`RegistryError`], composing with `?` across the
//!   workspace's error types.

#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod catalog;
pub mod error;
pub mod scheduler;
pub mod server;
pub mod service;
pub mod session;

pub use admission::{AdmissionController, AdmissionPolicy};
pub use cache::{query_key, CachedResult, QueryCache};
pub use catalog::{RetentionPolicy, RunCatalog, RunRecord};
pub use error::RegistryError;
pub use scheduler::{
    CancelResult, JobEvent, JobId, JobProgress, JobSink, JobState, QueryJob, ReplayScheduler,
};
pub use server::{Server, ServerConfig, ServerHandle};
pub use service::{QueryEvent, QueryOutcome, Registry};
pub use session::{ServeSession, SessionControl};
