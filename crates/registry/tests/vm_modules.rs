//! Compiled-module caching across registry queries.
//!
//! This file is its own test binary on purpose: the `vm.compile` /
//! `vm.module_cache_hits` counters are process-wide, and the assertions
//! here are exact deltas — sharing a process with other query tests
//! would race them.

use flor_registry::Registry;
use std::path::PathBuf;

fn tmproot(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "flor-registry-vm-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const SRC: &str = "\
import flor
data = synth_data(n=40, dim=8, classes=2, seed=5)
loader = dataloader(data, batch_size=20, seed=5)
net = mlp(input=8, hidden=8, classes=2, depth=1, seed=5)
optimizer = sgd(net, lr=0.1)
criterion = cross_entropy()
avg = meter()
for epoch in range(4):
    avg.reset()
    for batch in loader.epoch():
        optimizer.zero_grad()
        preds = net.forward(batch)
        loss = criterion.forward(preds, batch)
        grad = criterion.backward()
        net.backward(grad)
        optimizer.step()
        avg.update(loss)
    log(\"loss\", avg.mean())
";

#[test]
fn second_query_reuses_compiled_module_without_compiling() {
    let root = tmproot("module-cache");
    let reg = Registry::open(&root).unwrap();
    // Two runs of the same source: queries against them share a probed
    // source version but have distinct query-cache keys, so the second
    // query replays fresh — the compiled module is the only thing shared.
    reg.record_run("run-a", SRC, |o| o.adaptive = false)
        .unwrap();
    reg.record_run("run-b", SRC, |o| o.adaptive = false)
        .unwrap();
    let probed = SRC.replace(
        "    log(\"loss\", avg.mean())\n",
        "    log(\"loss\", avg.mean())\n    log(\"hindsight_wnorm\", net.weight_norm())\n",
    );
    assert_ne!(probed, SRC);

    let compiles = || flor_obs::metrics::counter("vm.compile").get();
    let hits = || flor_obs::metrics::counter("vm.module_cache_hits").get();

    let c0 = compiles();
    let a = reg.query("run-a", &probed, 2).unwrap();
    assert!(!a.cached);
    let c1 = compiles();
    assert_eq!(c1 - c0, 1, "first query compiles the probed source once");

    let h1 = hits();
    let b = reg.query("run-b", &probed, 2).unwrap();
    assert!(
        !b.cached,
        "distinct run => fresh replay, not a result-cache hit"
    );
    let c2 = compiles();
    let h2 = hits();
    assert_eq!(c2 - c1, 0, "second query must reuse the compiled module");
    assert_eq!(h2 - h1, 1, "…via exactly one module-cache hit");

    // Same hindsight answer from both runs.
    assert_eq!(a.log, b.log);
    assert_eq!(a.probes, 1);

    // Tree-walk fallback: never compiles, never touches the module
    // cache, still answers. (Same test function — these assertions share
    // the process-wide counters with the ones above.)
    reg.set_vm(false);
    let probed2 = SRC.replace(
        "    log(\"loss\", avg.mean())\n",
        "    log(\"loss\", avg.mean())\n    log(\"hindsight_gn\", net.grad_norm())\n",
    );
    let c3 = compiles();
    let out = reg.query("run-a", &probed2, 2).unwrap();
    assert_eq!(compiles() - c3, 0, "tree-walk queries never compile");
    assert_eq!(out.probes, 1);
    assert!(out.anomalies.is_empty(), "{:?}", out.anomalies);
}
