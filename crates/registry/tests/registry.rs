//! End-to-end tests of the registry subsystem: record real runs, catalog
//! them, serve hindsight queries through the cache and the scheduler.

use flor_core::record::{record, RecordOptions};
use flor_registry::{CancelResult, JobState, QueryJob, Registry, ReplayScheduler};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn tmproot(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "flor-registry-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn train_src(epochs: u64, lr: f64) -> String {
    format!(
        "\
import flor
data = synth_data(n=40, dim=8, classes=2, seed=5)
loader = dataloader(data, batch_size=20, seed=5)
net = mlp(input=8, hidden=8, classes=2, depth=1, seed=5)
optimizer = sgd(net, lr={lr})
criterion = cross_entropy()
avg = meter()
for epoch in range({epochs}):
    avg.reset()
    for batch in loader.epoch():
        optimizer.zero_grad()
        preds = net.forward(batch)
        loss = criterion.forward(preds, batch)
        grad = criterion.backward()
        net.backward(grad)
        optimizer.step()
        avg.update(loss)
    log(\"loss\", avg.mean())
"
    )
}

fn probed(src: &str) -> String {
    let out = src.replace(
        "    log(\"loss\", avg.mean())\n",
        "    log(\"loss\", avg.mean())\n    log(\"hindsight_wnorm\", net.weight_norm())\n",
    );
    assert_ne!(out, src);
    out
}

fn no_adaptive(opts: &mut RecordOptions) {
    opts.adaptive = false;
}

#[test]
fn record_run_catalogs_and_survives_restart() {
    let root = tmproot("restart");
    let src = train_src(4, 0.1);
    {
        let reg = Registry::open(&root).unwrap();
        let (report, rec) = reg.record_run("alice-cv", &src, no_adaptive).unwrap();
        assert_eq!(rec.generation, 0);
        assert_eq!(rec.iterations, 4);
        assert_eq!(rec.checkpoints, report.checkpoints);
        assert!(rec.store_root.starts_with(&root));
    }
    // A fresh process sees the same catalog.
    let reg = Registry::open(&root).unwrap();
    assert_eq!(reg.runs().len(), 1);
    let rec = reg.run("alice-cv").unwrap();
    assert_eq!(rec.iterations, 4);
    // And can still answer queries and read back the source.
    let source = reg.run_source("alice-cv").unwrap();
    assert_eq!(source, src);
}

#[test]
fn adopt_existing_store_via_run_meta() {
    let reg_root = tmproot("adopt-reg");
    let store_root = tmproot("adopt-store");
    let src = train_src(3, 0.1);
    let mut opts = RecordOptions::new(&store_root);
    opts.adaptive = false;
    record(&src, &opts).unwrap();

    let reg = Registry::open(&reg_root).unwrap();
    let rec = reg.adopt("legacy-run", &store_root).unwrap();
    assert_eq!(rec.iterations, 3);
    assert_eq!(rec.store_root, store_root);
    let out = reg.query("legacy-run", &probed(&src), 1).unwrap();
    assert_eq!(
        out.log
            .iter()
            .filter(|e| e.key == "hindsight_wnorm")
            .count(),
        3
    );
}

#[test]
fn second_identical_query_is_served_from_cache() {
    let reg = Registry::open(tmproot("cache")).unwrap();
    let src = train_src(4, 0.1);
    reg.record_run("alice-cv", &src, no_adaptive).unwrap();
    let q = probed(&src);

    let first = reg.query("alice-cv", &q, 2).unwrap();
    assert!(!first.cached);
    assert!(first.anomalies.is_empty(), "{:?}", first.anomalies);
    assert_eq!(first.probes, 1);
    assert!(first.restored + first.executed > 0, "fresh query replays");

    let second = reg.query("alice-cv", &q, 2).unwrap();
    assert!(second.cached, "identical repeat query must hit the cache");
    assert_eq!(
        second.restored + second.executed,
        0,
        "cache hit replays nothing"
    );
    assert_eq!(second.log, first.log, "cached stream is byte-identical");
    assert_eq!(second.key, first.key);

    // A different probe misses.
    let other = src.replace(
        "    log(\"loss\", avg.mean())\n",
        "    log(\"loss\", avg.mean())\n    log(\"hindsight_gnorm\", net.grad_norm())\n",
    );
    assert!(!reg.query("alice-cv", &other, 2).unwrap().cached);
}

#[test]
fn textual_variant_of_same_probe_hits_slice_cache() {
    let reg = Registry::open(tmproot("slice-memo")).unwrap();
    let src = train_src(4, 0.1);
    reg.record_run("alice-cv", &src, no_adaptive).unwrap();
    let q = probed(&src);

    let first = reg.query("alice-cv", &q, 2).unwrap();
    assert!(!first.cached);
    assert_eq!(first.slice_cache_hits, 0);

    // A blank line changes the raw query text (so the raw-text key
    // misses) but parses, instruments, and slices to the same live cone.
    let variant = q.replace("import flor\n", "import flor\n\n");
    assert_ne!(variant, q);
    let second = reg.query("alice-cv", &variant, 2).unwrap();
    assert!(
        second.cached,
        "slice fingerprint must dedup textual variants"
    );
    assert_eq!(second.slice_cache_hits, 1);
    assert_eq!(second.log, first.log, "memoized answer is byte-identical");
    assert_eq!(
        second.restored + second.executed,
        0,
        "slice-cache hit replays nothing"
    );

    // The hit backfilled the raw-text key: the same variant now
    // short-circuits on the raw cache (no slice-cache involvement).
    let third = reg.query("alice-cv", &variant, 2).unwrap();
    assert!(third.cached);
    assert_eq!(third.slice_cache_hits, 0);

    // A probe with a different live cone misses the slice cache.
    let other = src.replace(
        "    log(\"loss\", avg.mean())\n",
        "    log(\"loss\", avg.mean())\n    log(\"hindsight_gnorm\", net.grad_norm())\n",
    );
    let fresh = reg.query("alice-cv", &other, 2).unwrap();
    assert!(!fresh.cached);
    assert_eq!(fresh.slice_cache_hits, 0);
}

#[test]
fn slice_disabled_registry_bypasses_slice_cache() {
    let reg = Registry::open(tmproot("slice-off")).unwrap();
    let src = train_src(3, 0.1);
    reg.record_run("run", &src, no_adaptive).unwrap();
    reg.set_slice(false);
    let q = probed(&src);

    let first = reg.query("run", &q, 1).unwrap();
    assert!(!first.cached);
    assert_eq!(first.statements_elided, 0, "--no-slice elides nothing");
    assert_eq!(first.slice_permille, 0);

    // A textual variant misses outright: no slice keys were written.
    let variant = q.replace("import flor\n", "import flor\n\n");
    let second = reg.query("run", &variant, 1).unwrap();
    assert!(!second.cached, "slice memo must be off with slicing off");
    assert_eq!(second.log, first.log, "unsliced replays still agree");
}

#[test]
fn reregistration_invalidates_cached_answers() {
    let reg = Registry::open(tmproot("invalidate")).unwrap();
    let src_v1 = train_src(3, 0.1);
    reg.record_run("run", &src_v1, no_adaptive).unwrap();
    let q1 = probed(&src_v1);
    assert!(!reg.query("run", &q1, 1).unwrap().cached);
    assert!(reg.query("run", &q1, 1).unwrap().cached);

    // Re-record the run with different hyperparameters → new generation;
    // the old cached answer must not be returned for the new generation.
    let src_v2 = train_src(5, 0.05);
    reg.record_run("run", &src_v2, no_adaptive).unwrap();
    assert_eq!(reg.run("run").unwrap().generation, 1);
    let q2 = probed(&src_v2);
    let fresh = reg.query("run", &q2, 1).unwrap();
    assert!(!fresh.cached);
    assert_eq!(
        fresh
            .log
            .iter()
            .filter(|e| e.key == "hindsight_wnorm")
            .count(),
        5
    );
}

#[test]
fn concurrent_record_runs_for_one_id_get_disjoint_stores() {
    let reg = Arc::new(Registry::open(tmproot("race")).unwrap());
    let src = train_src(3, 0.1);
    let mut handles = Vec::new();
    for _ in 0..4 {
        let reg = reg.clone();
        let src = src.clone();
        handles.push(std::thread::spawn(move || {
            reg.record_run("same-id", &src, no_adaptive).unwrap().1
        }));
    }
    let recs: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let mut roots: Vec<_> = recs.iter().map(|r| r.store_root.clone()).collect();
    roots.sort();
    roots.dedup();
    assert_eq!(roots.len(), 4, "each racer recorded into its own store dir");
    let mut gens: Vec<_> = recs.iter().map(|r| r.generation).collect();
    gens.sort_unstable();
    assert_eq!(gens, vec![0, 1, 2, 3]);
    // Every generation replays cleanly from its own store.
    let q = probed(&src);
    let out = reg.query("same-id", &q, 1).unwrap();
    assert!(out.anomalies.is_empty());
}

#[test]
fn store_handles_are_pooled_across_queries() {
    let reg = Registry::open(tmproot("pool")).unwrap();
    let src = train_src(3, 0.1);
    reg.record_run("a", &src, no_adaptive).unwrap();
    // Distinct probes so no query is a cache hit, yet one handle serves all.
    for i in 0..3 {
        let q = src.replace(
            "    log(\"loss\", avg.mean())\n",
            &format!("    log(\"loss\", avg.mean())\n    log(\"hs_{i}\", net.weight_norm())\n"),
        );
        reg.query("a", &q, 1).unwrap();
    }
    assert_eq!(reg.open_store_handles(), 1);
}

#[test]
fn unknown_run_is_a_clean_error() {
    let reg = Registry::open(tmproot("unknown")).unwrap();
    let err = reg.query("nope", "import flor\n", 1).unwrap_err();
    assert!(err.to_string().contains("unknown run"));
}

#[test]
fn scheduler_completes_queued_queries_across_runs() {
    let reg_root = tmproot("sched");
    let reg = Arc::new(Registry::open(&reg_root).unwrap());
    let src_a = train_src(4, 0.1);
    let src_b = train_src(6, 0.05);
    reg.record_run("run-a", &src_a, no_adaptive).unwrap();
    reg.record_run("run-b", &src_b, no_adaptive).unwrap();

    // Bounded pool: 2 workers, 4 queued jobs across different runs.
    let sched = ReplayScheduler::new(reg.clone(), 2);
    assert_eq!(sched.pool_size(), 2);
    let jobs = [
        ("run-a", probed(&src_a), 0),
        ("run-b", probed(&src_b), 5),
        ("run-a", probed(&src_a), 0), // duplicate: should land on the cache
        ("run-b", src_b.clone(), -3), // unprobed replay, lowest priority
    ];
    let mut ids = Vec::new();
    for (run, q, priority) in jobs {
        ids.push(
            sched
                .submit(QueryJob {
                    run_id: run.into(),
                    probed_source: q,
                    workers: 2,
                    priority,
                    tenant: String::new(),
                })
                .unwrap(),
        );
    }
    sched.drain();
    assert_eq!(sched.outstanding(), 0);

    let outcomes: Vec<JobState> = ids.iter().map(|&id| sched.wait(id).unwrap()).collect();
    let completed: Vec<_> = outcomes
        .iter()
        .map(|s| match s {
            JobState::Completed(o) => o,
            other => panic!("job did not complete: {other:?}"),
        })
        .collect();
    assert_eq!(
        completed[0]
            .log
            .iter()
            .filter(|e| e.key == "hindsight_wnorm")
            .count(),
        4
    );
    assert_eq!(
        completed[1]
            .log
            .iter()
            .filter(|e| e.key == "hindsight_wnorm")
            .count(),
        6
    );
    assert!(
        completed[0].cached || completed[2].cached,
        "one of the two identical run-a queries is a cache hit"
    );
    assert!(completed.iter().all(|o| o.anomalies.is_empty()));
}

#[test]
fn scheduler_priority_orders_queued_work() {
    // One worker + a long-running head job: everything else sits queued,
    // so completion order of the tail reflects priority order.
    let reg = Arc::new(Registry::open(tmproot("prio")).unwrap());
    let src = train_src(6, 0.1);
    reg.record_run("r", &src, no_adaptive).unwrap();
    let sched = ReplayScheduler::new(reg, 1);

    let mk = |tag: &str| {
        src.replace(
            "    log(\"loss\", avg.mean())\n",
            &format!("    log(\"loss\", avg.mean())\n    log(\"hs_{tag}\", net.weight_norm())\n"),
        )
    };
    let head = sched
        .submit(QueryJob {
            run_id: "r".into(),
            probed_source: mk("head"),
            workers: 1,
            priority: 0,
            tenant: String::new(),
        })
        .unwrap();
    let low = sched
        .submit(QueryJob {
            run_id: "r".into(),
            probed_source: mk("low"),
            workers: 1,
            priority: -1,
            tenant: String::new(),
        })
        .unwrap();
    let high = sched
        .submit(QueryJob {
            run_id: "r".into(),
            probed_source: mk("high"),
            workers: 1,
            priority: 9,
            tenant: String::new(),
        })
        .unwrap();
    // `high` must complete no later than `low` despite being submitted
    // after it. Wait for `low`; by then `high` must already be terminal.
    sched.wait(head).unwrap();
    sched.wait(low).unwrap();
    assert!(
        sched.status(high).unwrap().is_terminal(),
        "high-priority job finished before the low-priority one"
    );
    sched.drain();
}

#[test]
fn scheduler_cancel_while_queued() {
    let reg = Arc::new(Registry::open(tmproot("cancel")).unwrap());
    let src = train_src(5, 0.1);
    reg.record_run("r", &src, no_adaptive).unwrap();
    let sched = ReplayScheduler::new(reg, 1);
    // Occupy the single worker, then cancel a queued job.
    let head = sched
        .submit(QueryJob {
            run_id: "r".into(),
            probed_source: probed(&src),
            workers: 1,
            priority: 0,
            tenant: String::new(),
        })
        .unwrap();
    let victim = sched
        .submit(QueryJob {
            run_id: "r".into(),
            probed_source: src.replace("avg.mean()", "avg.mean() * 1.0"),
            workers: 1,
            priority: -5,
            tenant: String::new(),
        })
        .unwrap();
    assert!(sched.cancel(victim), "queued job is cancellable");
    assert!(matches!(sched.status(victim), Some(JobState::Cancelled)));
    sched.wait(head).unwrap();
    sched.drain();
    assert!(!sched.cancel(head), "finished job is not cancellable");
}

#[test]
fn cancel_mid_replay_plateaus_frees_the_slot_and_never_poisons_the_cache() {
    // A big dataset and a probe whose logged value needs a full-dataset
    // evaluation per batch step: the probe is live (its result is logged)
    // and depends on per-batch optimizer state, so slicing cannot elide
    // it and the hindsight replay runs long enough to cancel mid-flight
    // even on a loaded single-core host.
    let src = "\
import flor
data = synth_data(n=800, dim=8, classes=2, seed=5)
loader = dataloader(data, batch_size=40, seed=5)
net = mlp(input=8, hidden=32, classes=2, depth=1, seed=5)
optimizer = sgd(net, lr=0.1)
criterion = cross_entropy()
avg = meter()
for epoch in range(16):
    avg.reset()
    for batch in loader.epoch():
        optimizer.zero_grad()
        preds = net.forward(batch)
        loss = criterion.forward(preds, batch)
        grad = criterion.backward()
        net.backward(grad)
        optimizer.step()
        avg.update(loss)
    log(\"loss\", avg.mean())
";
    let reg = Arc::new(Registry::open(tmproot("cancel-mid")).unwrap());
    reg.record_run("r", src, no_adaptive).unwrap();
    let q = src.replace(
        "        optimizer.step()\n",
        "        optimizer.step()\n        log(\"probe_acc\", evaluate(net, data))\n",
    );
    assert_ne!(q, src);
    let sched = ReplayScheduler::new(reg.clone(), 1);
    let victim = sched
        .submit(QueryJob {
            run_id: "r".into(),
            probed_source: q.clone(),
            workers: 1,
            priority: 0,
            tenant: String::new(),
        })
        .unwrap();

    // Wait until the replay is demonstrably mid-flight (≥1 iteration in),
    // then fire the cooperative token.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        assert!(std::time::Instant::now() < deadline, "job never progressed");
        let running = matches!(sched.status(victim), Some(JobState::Running));
        if running
            && sched
                .progress(victim)
                .is_some_and(|p| p.iterations_done >= 1)
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(sched.cancel_job(victim), CancelResult::CancelRequested);
    {
        let st = sched.wait(victim).unwrap();
        assert!(matches!(st, JobState::Cancelled), "got {:?}", st);
    }

    // The iteration counter plateaued: the token stopped the replay before
    // the remaining epochs ran, and it stays put after termination.
    let at_cancel = sched.progress(victim).unwrap();
    assert!(
        at_cancel.iterations_done < at_cancel.iterations_total,
        "cancelled mid-flight: {}/{}",
        at_cancel.iterations_done,
        at_cancel.iterations_total
    );
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(
        sched.progress(victim).unwrap().iterations_done,
        at_cancel.iterations_done,
        "no iterations after cancellation"
    );

    // The worker slot is free: the next job on the same 1-worker pool
    // completes (a cancelled job that pinned its slot would hang this).
    let follow = sched
        .submit(QueryJob {
            run_id: "r".into(),
            probed_source: src.to_string(),
            workers: 1,
            priority: 0,
            tenant: String::new(),
        })
        .unwrap();
    assert!(matches!(
        sched.wait(follow).unwrap(),
        JobState::Completed(_)
    ));

    // The aborted replay was never cached: re-issuing the identical query
    // replays fresh, and only its *completed* answer populates the cache.
    let first = reg.query("r", &q, 1).unwrap();
    assert!(!first.cached, "a cancelled replay must not seed the cache");
    assert!(first.anomalies.is_empty(), "{:?}", first.anomalies);
    let second = reg.query("r", &q, 1).unwrap();
    assert!(second.cached);
    assert_eq!(second.log, first.log, "byte-identical via the cache");
    sched.drain();
}

#[test]
fn store_stats_and_compaction_surface_through_the_registry() {
    let root = tmproot("store-stats");
    let reg = Registry::open(&root).unwrap();
    let src = train_src(4, 0.1);
    reg.record_run("carol-cv", &src, no_adaptive).unwrap();

    let before = reg.store_stats("carol-cv").unwrap();
    assert!(before.entries >= 4, "{before:?}");
    assert!(before.segments >= 1, "{before:?}");
    assert_eq!(before.compactions, 0);
    assert!(reg.store_recovery("carol-cv").unwrap().is_clean());

    // Queries exercise the zero-copy read path of the pooled handle.
    let out = reg.query("carol-cv", &probed(&src), 1).unwrap();
    assert!(!out.cached);
    assert_eq!(out.restored, 4);
    let read = reg.store_stats("carol-cv").unwrap();
    assert!(read.reads >= 4, "{read:?}");

    // Registry stores record through the shared dedup arena, so
    // arena-backed entries carry no segment bytes and compaction
    // rewrites only the rest.
    let report = reg.compact_run("carol-cv").unwrap();
    assert_eq!(
        report.rewritten_entries + before.dedup_entries,
        before.entries,
        "{report:?} vs {before:?}"
    );
    let after = reg.store_stats("carol-cv").unwrap();
    assert_eq!(after.compactions, 1);
    assert_eq!(after.dead_segment_bytes, 0, "{after:?}");

    // Replay still answers correctly from the compacted store (cache is
    // keyed by content, so force a fresh replay with a different probe).
    let probed2 = src.replace(
        "    log(\"loss\", avg.mean())\n",
        "    log(\"loss\", avg.mean())\n    log(\"post_compact\", net.weight_norm())\n",
    );
    let out = reg.query("carol-cv", &probed2, 1).unwrap();
    assert!(!out.cached);
    assert_eq!(out.restored, 4);
    assert!(out.anomalies.is_empty(), "{:?}", out.anomalies);
}

#[test]
fn retention_prunes_old_generation_stores_but_keeps_history() {
    use flor_registry::RetentionPolicy;
    let root = tmproot("retention");
    let reg = Registry::open(&root).unwrap();
    // Three generations of the same run id.
    for lr in ["0.1", "0.05", "0.025"] {
        let src = train_src(3, lr.parse().unwrap());
        reg.record_run("dave-cv", &src, no_adaptive).unwrap();
    }
    let history = reg.catalog().history("dave-cv");
    assert_eq!(history.len(), 3);
    assert!(history.iter().all(|r| r.store_root.exists()));

    // keep_latest=2: generation 0's store goes, 1 and 2 stay.
    let pruned = reg
        .apply_retention("dave-cv", &RetentionPolicy { keep_latest: 2 })
        .unwrap();
    assert_eq!(pruned.len(), 1);
    assert_eq!(pruned[0].generation, 0);
    assert!(!pruned[0].store_root.exists());
    let history = reg.catalog().history("dave-cv");
    assert_eq!(history.len(), 3, "catalog metadata is never pruned");
    assert!(history[1].store_root.exists());
    assert!(history[2].store_root.exists());

    // Idempotent: nothing left to prune at this policy.
    assert!(reg
        .apply_retention("dave-cv", &RetentionPolicy { keep_latest: 2 })
        .unwrap()
        .is_empty());
    // The live generation is never prunable, even at keep_latest=1's floor.
    let pruned = reg
        .apply_retention("dave-cv", &RetentionPolicy { keep_latest: 1 })
        .unwrap();
    assert_eq!(pruned.len(), 1);
    assert_eq!(pruned[0].generation, 1);
    let live = reg.run("dave-cv").unwrap();
    assert!(live.store_root.exists());
    // And the live generation still answers queries.
    let src = train_src(3, 0.025);
    let out = reg.query("dave-cv", &probed(&src), 1).unwrap();
    assert_eq!(out.restored, 3);
}

#[test]
fn identical_rerecords_dedup_across_generations_and_retention_is_refcounted() {
    use flor_registry::RetentionPolicy;
    let root = tmproot("dedup-gens");
    let reg = Registry::open(&root).unwrap();
    // The same deterministic script twice: every checkpoint of generation
    // 1 is byte-identical to generation 0's, so its keyframe-sized stored
    // payloads land as `@dup` references into the registry-wide arena.
    let src = train_src(4, 0.1).replace("hidden=8", "hidden=64");
    reg.record_run("erin-cv", &src, no_adaptive).unwrap();
    reg.record_run("erin-cv", &src, no_adaptive).unwrap();

    let stats = reg.store_stats("erin-cv").unwrap();
    assert!(
        stats.dedup_entries > 0,
        "re-recorded checkpoints should dedup: {stats:?}"
    );
    let arena = flor_chkpt::DedupIndex::open(&reg.dedup_arena_dir()).unwrap();
    let arena_entries = arena.entries();
    assert!(arena_entries > 0);

    // Pruning generation 0 releases its references; generation 1's `@dup`
    // entries survive (refcount ≥ 1) and still restore.
    let pruned = reg
        .apply_retention("erin-cv", &RetentionPolicy { keep_latest: 1 })
        .unwrap();
    assert_eq!(pruned.len(), 1);
    assert!(!pruned[0].store_root.exists());
    let out = reg.query("erin-cv", &probed(&src), 1).unwrap();
    assert_eq!(out.restored, 4);
    assert!(out.anomalies.is_empty(), "{:?}", out.anomalies);
    // The shared blobs are still in the arena (the survivor holds refs).
    assert!(arena.entries() > 0, "retention must not sever shared blobs");
    assert!(arena.entries() <= arena_entries);
}
