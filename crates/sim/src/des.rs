//! A minimal discrete-event simulation engine.
//!
//! Virtual clock + binary-heap event queue. The record and replay
//! simulations schedule work items (epoch compute, checkpoint
//! materialization, restores) as events; resources (GPUs/workers) are
//! modeled as independent timelines whose completion times the simulations
//! combine. Determinism: ties break by insertion order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulated time in seconds.
pub type SimTime = f64;

struct Event<T> {
    at: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Event<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Event<T> {}
impl<T> PartialOrd for Event<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Event<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap: earlier time (then lower seq) pops first.
        other
            .at
            .partial_cmp(&self.at)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}

/// The event queue and virtual clock.
pub struct Des<T> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Event<T>>,
}

impl<T> Default for Des<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Des<T> {
    /// Empty simulation at time zero.
    pub fn new() -> Self {
        Des {
            now: 0.0,
            seq: 0,
            queue: BinaryHeap::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire `delay` seconds from now.
    ///
    /// # Panics
    /// Panics on negative or non-finite delays.
    pub fn schedule_in(&mut self, delay: SimTime, payload: T) {
        assert!(delay.is_finite() && delay >= 0.0, "bad delay {delay}");
        self.schedule_at(self.now + delay, payload);
    }

    /// Schedules `payload` at absolute time `at` (must not be in the past).
    pub fn schedule_at(&mut self, at: SimTime, payload: T) {
        assert!(
            at.is_finite() && at >= self.now,
            "cannot schedule in the past ({at} < {})",
            self.now
        );
        self.queue.push(Event {
            at,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Pops the next event, advancing the clock to it.
    pub fn next_event(&mut self) -> Option<(SimTime, T)> {
        let ev = self.queue.pop()?;
        self.now = ev.at;
        Some((ev.at, ev.payload))
    }

    /// True if no events remain.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.queue.len()
    }
}

/// A single-server FIFO resource timeline (e.g. one background
/// materialization worker, one GPU): jobs queue and run back-to-back.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    free_at: SimTime,
    busy: SimTime,
}

impl Timeline {
    /// Empty timeline, free at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a job of the given duration arriving at `arrive`; returns
    /// its completion time.
    pub fn run(&mut self, arrive: SimTime, duration: SimTime) -> SimTime {
        let start = self.free_at.max(arrive);
        self.free_at = start + duration;
        self.busy += duration;
        self.free_at
    }

    /// Time this resource becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total busy time accumulated.
    pub fn busy(&self) -> SimTime {
        self.busy
    }
}

/// Picks the earliest-available timeline from a pool (e.g. the least-loaded
/// of two background workers), runs the job there, and returns completion.
pub fn run_on_least_loaded(pool: &mut [Timeline], arrive: SimTime, duration: SimTime) -> SimTime {
    assert!(!pool.is_empty(), "empty resource pool");
    let idx = pool
        .iter()
        .enumerate()
        .min_by(|a, b| {
            a.1.free_at
                .partial_cmp(&b.1.free_at)
                .unwrap_or(Ordering::Equal)
        })
        .map(|(i, _)| i)
        .unwrap();
    pool[idx].run(arrive, duration)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut des: Des<&str> = Des::new();
        des.schedule_in(5.0, "c");
        des.schedule_in(1.0, "a");
        des.schedule_in(3.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| des.next_event().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut des: Des<u32> = Des::new();
        des.schedule_in(1.0, 1);
        des.schedule_in(1.0, 2);
        des.schedule_in(1.0, 3);
        let order: Vec<u32> = std::iter::from_fn(|| des.next_event().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances() {
        let mut des: Des<()> = Des::new();
        des.schedule_in(2.5, ());
        assert_eq!(des.now(), 0.0);
        des.next_event();
        assert_eq!(des.now(), 2.5);
    }

    #[test]
    #[should_panic(expected = "cannot schedule in the past")]
    fn scheduling_in_the_past_panics() {
        let mut des: Des<()> = Des::new();
        des.schedule_in(5.0, ());
        des.next_event();
        des.schedule_at(1.0, ());
    }

    #[test]
    fn timeline_queues_fifo() {
        let mut t = Timeline::new();
        assert_eq!(t.run(0.0, 2.0), 2.0);
        // Arrives while busy: waits.
        assert_eq!(t.run(1.0, 2.0), 4.0);
        // Arrives after idle: starts immediately.
        assert_eq!(t.run(10.0, 1.0), 11.0);
        assert_eq!(t.busy(), 5.0);
    }

    #[test]
    fn least_loaded_balances() {
        let mut pool = vec![Timeline::new(), Timeline::new()];
        run_on_least_loaded(&mut pool, 0.0, 4.0); // worker 0 busy until 4
        let done = run_on_least_loaded(&mut pool, 0.0, 1.0); // worker 1
        assert_eq!(done, 1.0);
        let done = run_on_least_loaded(&mut pool, 0.0, 1.0); // worker 1 again
        assert_eq!(done, 2.0);
    }
}
