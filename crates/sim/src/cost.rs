//! Cloud cost model (Figure 14, Table 4).
//!
//! 2020 us-west-2 on-demand list prices, as in the paper's evaluation:
//! P3.2xLarge (1 × V100) at $3.06/h, P3.8xLarge (4 × V100) at $12.24/h,
//! S3 standard at $0.023/GB·month. The paper's framing: "we can store
//! 130 GB for a month, at the same cost as running a single-GPU instance
//! for an hour."

use crate::replay_sim::ReplaySim;

/// EC2 machine shapes used in the evaluation.
pub mod machine {
    /// P3.2xLarge: 1 V100 GPU.
    pub const P3_2X_GPUS: usize = 1;
    /// P3.2xLarge hourly price, USD.
    pub const P3_2X_USD_PER_HOUR: f64 = 3.06;
    /// P3.8xLarge: 4 V100 GPUs.
    pub const P3_8X_GPUS: usize = 4;
    /// P3.8xLarge hourly price, USD.
    pub const P3_8X_USD_PER_HOUR: f64 = 12.24;
}

/// S3 standard storage, USD per GB-month.
pub const S3_USD_PER_GB_MONTH: f64 = 0.023;

/// Measured checkpoint-read constants of the segmented storage engine,
/// taken from `bench_replay_json` (the committed `BENCH_replay.json`
/// before/after table). The replay simulator folds these into the restore
/// cost `R = c·M` so simulated replay latency reflects the real read path,
/// not just the paper's compute-side scaling factor.
pub mod read_cost {
    /// Median `get_bytes` latency for a segment-resident checkpoint,
    /// seconds (fixed per-read cost: sharded index lookup + shared-buffer
    /// slice + CRC). BENCH_replay.json: 1548 ns at 100k checkpoints.
    pub const SEGMENTED_GET_SECS: f64 = 1.5e-6;

    /// Median latency of the retired v1 read path (one `open`/`read`/
    /// `close` per checkpoint file), seconds. Kept as the "before" column
    /// and for costing legacy-format stores. BENCH_replay.json: 6292 ns.
    pub const FILE_PER_CKPT_GET_SECS: f64 = 6.3e-6;

    /// Streaming throughput for pulling a cold segment's payload bytes
    /// into the shared read buffer, bytes/second.
    pub const SEGMENT_READ_BYTES_PER_SEC: f64 = 2.0e9;

    /// I/O-side cost of restoring one checkpoint of `compressed_gb`
    /// gigabytes from a segmented store: the fixed per-read constant plus
    /// the proportional segment-read cost.
    pub fn restore_read_secs(compressed_gb: f64) -> f64 {
        SEGMENTED_GET_SECS + compressed_gb * 1e9 / SEGMENT_READ_BYTES_PER_SEC
    }

    /// Throughput for faulting a demoted (spool-resident) segment back
    /// through the buffer pool, bytes/second. The spool models the paper's
    /// S3 bucket; within-region S3 GETs stream at roughly 1/10 of local
    /// NVMe, so a cold first touch pays ~10× the proportional read cost
    /// (subsequent reads hit the buffer pool at hot-tier speed).
    pub const COLD_FAULT_BYTES_PER_SEC: f64 = 2.0e8;

    /// I/O-side cost of the *first* restore from a cold (demoted) segment:
    /// fixed per-read constant plus the whole-segment fault at spool
    /// throughput. `segment_gb` is the full segment size — fault-back
    /// pulls the segment, not just one entry.
    pub fn cold_restore_read_secs(segment_gb: f64) -> f64 {
        SEGMENTED_GET_SECS + segment_gb * 1e9 / COLD_FAULT_BYTES_PER_SEC
    }
}

/// Delta-chain storage and restore model, with constants measured by
/// `bench_compress_json` (the committed `BENCH_compress.json` drifting-
/// tensor table: ~5% of tensor elements move per checkpoint version).
pub mod delta_cost {
    use super::read_cost;

    /// Stored/raw ratio of one delta frame on the drifting-tensor
    /// workload (BENCH_compress.json: `delta_frame_ratio` 0.053).
    pub const DELTA_FRAME_RATIO: f64 = 0.053;

    /// Stored/raw ratio of a keyframe (incompressible tensor slabs store
    /// raw; zero-heavy payloads do better, so this is conservative).
    pub const KEYFRAME_RATIO: f64 = 1.0;

    /// Extra restore cost per chain link, seconds per raw GB decoded
    /// (BENCH_compress.json: sequential restore median 8.17 ms vs 5.03 ms
    /// keyframe-only on 4 MiB payloads ≈ 0.75 s/GB/link).
    pub const CHAIN_LINK_SECS_PER_GB: f64 = 0.75;

    /// Stored bytes (GB) for `checkpoints` versions of a `raw_gb`
    /// checkpoint under keyframe interval `k` (`k == 0` disables delta:
    /// every version is a keyframe).
    pub fn stored_gb(checkpoints: u64, raw_gb: f64, k: u32) -> f64 {
        if k == 0 || checkpoints == 0 {
            return checkpoints as f64 * raw_gb * KEYFRAME_RATIO;
        }
        let keyframes = checkpoints.div_ceil(k as u64);
        let deltas = checkpoints - keyframes;
        keyframes as f64 * raw_gb * KEYFRAME_RATIO + deltas as f64 * raw_gb * DELTA_FRAME_RATIO
    }

    /// Bytes-on-disk reduction factor vs storing every version as a
    /// keyframe.
    pub fn reduction_vs_flat(checkpoints: u64, k: u32) -> f64 {
        let flat = checkpoints as f64 * KEYFRAME_RATIO;
        let delta = stored_gb(checkpoints, 1.0, k);
        if delta <= 0.0 {
            1.0
        } else {
            flat / delta
        }
    }

    /// Mean chain depth of a *random-access* restore under interval `k`
    /// (depths cycle 0..k−1 within each keyframe window).
    pub fn mean_chain_depth(k: u32) -> f64 {
        if k == 0 {
            0.0
        } else {
            (k as f64 - 1.0) / 2.0
        }
    }

    /// Restore cost of one checkpoint of `raw_gb` through a chain of
    /// `depth` links: the keyframe read plus one decode per link. A
    /// sequential replay pays `depth ≈ 1` per restore (the store's
    /// per-block restore cache serves each delta's base); only random
    /// access pays [`mean_chain_depth`].
    pub fn restore_chain_secs(raw_gb: f64, depth: f64) -> f64 {
        read_cost::restore_read_secs(raw_gb) + depth * raw_gb * CHAIN_LINK_SECS_PER_GB
    }
}

/// Monthly cost of storing `gb` gigabytes in S3 (Table 4, right column).
pub fn monthly_storage_usd(gb: f64) -> f64 {
    gb * S3_USD_PER_GB_MONTH
}

/// Dollar cost of a serial or parallel replay (Figure 14's bars).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayBill {
    /// Wall-clock hours billed.
    pub hours: f64,
    /// Machines used.
    pub machines: usize,
    /// Hourly rate per machine.
    pub usd_per_hour: f64,
    /// Total, USD.
    pub total_usd: f64,
}

/// Cost of performing the work serially on one P3.2xLarge.
pub fn serial_bill(vanilla_hours: f64) -> ReplayBill {
    ReplayBill {
        hours: vanilla_hours,
        machines: 1,
        usd_per_hour: machine::P3_2X_USD_PER_HOUR,
        total_usd: vanilla_hours * machine::P3_2X_USD_PER_HOUR,
    }
}

/// Cost of a parallel replay on `machines` P3.8xLarge machines.
pub fn parallel_bill(replay: &ReplaySim, machines: usize) -> ReplayBill {
    let hours = replay.wall_secs / 3600.0;
    ReplayBill {
        hours,
        machines,
        usd_per_hour: machine::P3_8X_USD_PER_HOUR,
        total_usd: hours * machines as f64 * machine::P3_8X_USD_PER_HOUR,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record_sim::simulate_record;
    use crate::replay_sim::{simulate_replay, ProbePosition};
    use crate::workload::Workload;
    use flor_core::parallel::InitMode;

    #[test]
    fn storage_cost_matches_table4() {
        // Table 4 rows: (GB, $/month).
        for (gb, usd) in [
            (0.051, 0.001),
            (0.705, 0.016),
            (2.0, 0.046),
            (14.0, 0.322),
            (15.0, 0.345),
            (29.0, 0.667),
            (39.0, 0.897),
        ] {
            let got = monthly_storage_usd(gb);
            assert!(
                (got - usd).abs() < 0.01,
                "{gb} GB: ${got:.3} vs Table 4's ${usd}"
            );
        }
    }

    #[test]
    fn one_gpu_hour_buys_133_gb_months() {
        // "we can store 130 GB for a month, at the same cost as running a
        // single-GPU instance for an hour."
        let gb = machine::P3_2X_USD_PER_HOUR / S3_USD_PER_GB_MONTH;
        assert!((gb - 133.0).abs() < 1.0, "{gb:.0} GB");
    }

    #[test]
    fn figure14_parallel_cost_roughly_equals_serial() {
        // "Even though parallel replay finishes the same amount of work in
        // a fraction of the time, it costs about the same as doing the work
        // serially" — because a P3.8xLarge costs exactly 4 × a P3.2xLarge
        // and parallelism is near-ideal. Marginal cost < $3.
        let w = Workload::by_name("RsNt").unwrap();
        let record = simulate_record(w, 1.0 / 15.0, true);
        let serial = serial_bill(w.vanilla_hours);
        for machines in [1usize, 2, 4] {
            let replay = simulate_replay(
                w,
                &record,
                ProbePosition::Inner,
                machines * machine::P3_8X_GPUS,
                InitMode::Weak,
            );
            let parallel = parallel_bill(&replay, machines);
            let marginal = parallel.total_usd - serial.total_usd;
            assert!(
                marginal.abs() < 3.0,
                "{machines} machines: marginal cost ${marginal:.2} exceeds the paper's <$3"
            );
            // And the time saved is real.
            assert!(parallel.hours < serial.hours / (machines as f64 * 2.0));
        }
    }

    #[test]
    fn figure14_time_reduction_hours() {
        // "the model developer observes as much as 16-hour reductions in
        // execution time" — RsNt at 16 GPUs.
        let w = Workload::by_name("RsNt").unwrap();
        let record = simulate_record(w, 1.0 / 15.0, true);
        let replay = simulate_replay(w, &record, ProbePosition::Inner, 16, InitMode::Weak);
        let saved = w.vanilla_hours - replay.wall_secs / 3600.0;
        assert!(saved > 12.0, "saved {saved:.1} hours");
    }

    #[test]
    fn read_constants_order_and_scale_sensibly() {
        use crate::workload::ALL_WORKLOADS;
        // The whole point of the segmented engine: fixed per-read cost
        // beats the per-file open/read/close path by ≥2×.
        let (seg, file) = (
            read_cost::SEGMENTED_GET_SECS,
            read_cost::FILE_PER_CKPT_GET_SECS,
        );
        assert!(seg * 2.0 <= file, "{seg} vs {file}");
        // Proportional in checkpoint size, monotone.
        assert!(read_cost::restore_read_secs(1.0) > read_cost::restore_read_secs(0.001));
        // The I/O term stays a small correction to the paper's compute-side
        // restore model for every Table 3 workload (< 5% of an epoch).
        for w in ALL_WORKLOADS {
            let io = read_cost::restore_read_secs(w.compressed_ckpt_gb);
            assert!(
                io < 0.05 * w.epoch_secs(),
                "{}: read cost {io:.3}s vs epoch {:.1}s",
                w.name,
                w.epoch_secs()
            );
        }
        // A cold-tier fault pays a 10× throughput penalty over the hot
        // path, but only on the first touch of a demoted segment.
        assert!(read_cost::cold_restore_read_secs(0.008) > read_cost::restore_read_secs(0.008));
        const {
            assert!(
                read_cost::COLD_FAULT_BYTES_PER_SEC * 10.0 == read_cost::SEGMENT_READ_BYTES_PER_SEC,
                "cold tier models ~1/10 hot throughput"
            );
        }
    }

    #[test]
    fn delta_storage_reduction_meets_the_acceptance_bar() {
        // BENCH_compress.json's measured frame ratio at the default K=8
        // must model out to the committed ≥3× bytes-on-disk reduction.
        let r = delta_cost::reduction_vs_flat(32, 8);
        assert!(r >= 3.0, "modelled reduction {r:.2}");
        // More checkpoints between keyframes → more reduction; K=0 is flat.
        assert!(delta_cost::reduction_vs_flat(32, 16) > r);
        assert!((delta_cost::reduction_vs_flat(32, 0) - 1.0).abs() < 1e-9);
        // Table 4 style: a 39 GB run's checkpoints at K=8 store in well
        // under half the flat bytes, and the S3 bill shrinks with them.
        let flat = delta_cost::stored_gb(32, 39.0 / 32.0, 0);
        let chained = delta_cost::stored_gb(32, 39.0 / 32.0, 8);
        assert!(chained * 3.0 < flat);
        assert!(monthly_storage_usd(chained) * 3.0 < monthly_storage_usd(flat));
    }

    #[test]
    fn chain_restore_cost_stays_below_the_replay_budget() {
        use crate::workload::ALL_WORKLOADS;
        // Worst-case random-access restore (mean chain depth at K=8) must
        // stay a small correction to an epoch for every Table 3 workload —
        // the delta chains must not threaten the paper's replay-latency
        // story. (Sequential replay pays ~1 link via the restore cache.)
        let depth = delta_cost::mean_chain_depth(8);
        assert!((depth - 3.5).abs() < 1e-9);
        for w in ALL_WORKLOADS {
            // Sequential replay — the hot path, one link per restore via
            // the per-block restore cache — stays a small correction.
            let sequential = delta_cost::restore_chain_secs(w.compressed_ckpt_gb, 1.0);
            assert!(
                sequential < 0.10 * w.epoch_secs(),
                "{}: sequential chain restore {sequential:.3}s vs epoch {:.1}s",
                w.name,
                w.epoch_secs()
            );
            // Random access pays the mean chain walk; even the worst
            // Table 3 workload (RTE: GB-scale checkpoints, short epochs)
            // stays bounded — this is the number that justifies keyframes
            // every K=8 rather than unbounded chains.
            let worst = delta_cost::restore_chain_secs(w.compressed_ckpt_gb, depth);
            assert!(
                worst < 0.25 * w.epoch_secs(),
                "{}: random-access chain restore {worst:.3}s vs epoch {:.1}s",
                w.name,
                w.epoch_secs()
            );
            assert!(sequential < worst);
        }
    }

    #[test]
    fn serial_bill_arithmetic() {
        let bill = serial_bill(10.0);
        assert_eq!(bill.total_usd, 30.6);
        assert_eq!(bill.machines, 1);
    }
}
