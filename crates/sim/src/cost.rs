//! Cloud cost model (Figure 14, Table 4).
//!
//! 2020 us-west-2 on-demand list prices, as in the paper's evaluation:
//! P3.2xLarge (1 × V100) at $3.06/h, P3.8xLarge (4 × V100) at $12.24/h,
//! S3 standard at $0.023/GB·month. The paper's framing: "we can store
//! 130 GB for a month, at the same cost as running a single-GPU instance
//! for an hour."

use crate::replay_sim::ReplaySim;

/// EC2 machine shapes used in the evaluation.
pub mod machine {
    /// P3.2xLarge: 1 V100 GPU.
    pub const P3_2X_GPUS: usize = 1;
    /// P3.2xLarge hourly price, USD.
    pub const P3_2X_USD_PER_HOUR: f64 = 3.06;
    /// P3.8xLarge: 4 V100 GPUs.
    pub const P3_8X_GPUS: usize = 4;
    /// P3.8xLarge hourly price, USD.
    pub const P3_8X_USD_PER_HOUR: f64 = 12.24;
}

/// S3 standard storage, USD per GB-month.
pub const S3_USD_PER_GB_MONTH: f64 = 0.023;

/// Measured checkpoint-read constants of the segmented storage engine,
/// taken from `bench_replay_json` (the committed `BENCH_replay.json`
/// before/after table). The replay simulator folds these into the restore
/// cost `R = c·M` so simulated replay latency reflects the real read path,
/// not just the paper's compute-side scaling factor.
pub mod read_cost {
    /// Median `get_bytes` latency for a segment-resident checkpoint,
    /// seconds (fixed per-read cost: sharded index lookup + shared-buffer
    /// slice + CRC). BENCH_replay.json: 1548 ns at 100k checkpoints.
    pub const SEGMENTED_GET_SECS: f64 = 1.5e-6;

    /// Median latency of the retired v1 read path (one `open`/`read`/
    /// `close` per checkpoint file), seconds. Kept as the "before" column
    /// and for costing legacy-format stores. BENCH_replay.json: 6292 ns.
    pub const FILE_PER_CKPT_GET_SECS: f64 = 6.3e-6;

    /// Streaming throughput for pulling a cold segment's payload bytes
    /// into the shared read buffer, bytes/second.
    pub const SEGMENT_READ_BYTES_PER_SEC: f64 = 2.0e9;

    /// I/O-side cost of restoring one checkpoint of `compressed_gb`
    /// gigabytes from a segmented store: the fixed per-read constant plus
    /// the proportional segment-read cost.
    pub fn restore_read_secs(compressed_gb: f64) -> f64 {
        SEGMENTED_GET_SECS + compressed_gb * 1e9 / SEGMENT_READ_BYTES_PER_SEC
    }
}

/// Monthly cost of storing `gb` gigabytes in S3 (Table 4, right column).
pub fn monthly_storage_usd(gb: f64) -> f64 {
    gb * S3_USD_PER_GB_MONTH
}

/// Dollar cost of a serial or parallel replay (Figure 14's bars).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayBill {
    /// Wall-clock hours billed.
    pub hours: f64,
    /// Machines used.
    pub machines: usize,
    /// Hourly rate per machine.
    pub usd_per_hour: f64,
    /// Total, USD.
    pub total_usd: f64,
}

/// Cost of performing the work serially on one P3.2xLarge.
pub fn serial_bill(vanilla_hours: f64) -> ReplayBill {
    ReplayBill {
        hours: vanilla_hours,
        machines: 1,
        usd_per_hour: machine::P3_2X_USD_PER_HOUR,
        total_usd: vanilla_hours * machine::P3_2X_USD_PER_HOUR,
    }
}

/// Cost of a parallel replay on `machines` P3.8xLarge machines.
pub fn parallel_bill(replay: &ReplaySim, machines: usize) -> ReplayBill {
    let hours = replay.wall_secs / 3600.0;
    ReplayBill {
        hours,
        machines,
        usd_per_hour: machine::P3_8X_USD_PER_HOUR,
        total_usd: hours * machines as f64 * machine::P3_8X_USD_PER_HOUR,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record_sim::simulate_record;
    use crate::replay_sim::{simulate_replay, ProbePosition};
    use crate::workload::Workload;
    use flor_core::parallel::InitMode;

    #[test]
    fn storage_cost_matches_table4() {
        // Table 4 rows: (GB, $/month).
        for (gb, usd) in [
            (0.051, 0.001),
            (0.705, 0.016),
            (2.0, 0.046),
            (14.0, 0.322),
            (15.0, 0.345),
            (29.0, 0.667),
            (39.0, 0.897),
        ] {
            let got = monthly_storage_usd(gb);
            assert!(
                (got - usd).abs() < 0.01,
                "{gb} GB: ${got:.3} vs Table 4's ${usd}"
            );
        }
    }

    #[test]
    fn one_gpu_hour_buys_133_gb_months() {
        // "we can store 130 GB for a month, at the same cost as running a
        // single-GPU instance for an hour."
        let gb = machine::P3_2X_USD_PER_HOUR / S3_USD_PER_GB_MONTH;
        assert!((gb - 133.0).abs() < 1.0, "{gb:.0} GB");
    }

    #[test]
    fn figure14_parallel_cost_roughly_equals_serial() {
        // "Even though parallel replay finishes the same amount of work in
        // a fraction of the time, it costs about the same as doing the work
        // serially" — because a P3.8xLarge costs exactly 4 × a P3.2xLarge
        // and parallelism is near-ideal. Marginal cost < $3.
        let w = Workload::by_name("RsNt").unwrap();
        let record = simulate_record(w, 1.0 / 15.0, true);
        let serial = serial_bill(w.vanilla_hours);
        for machines in [1usize, 2, 4] {
            let replay = simulate_replay(
                w,
                &record,
                ProbePosition::Inner,
                machines * machine::P3_8X_GPUS,
                InitMode::Weak,
            );
            let parallel = parallel_bill(&replay, machines);
            let marginal = parallel.total_usd - serial.total_usd;
            assert!(
                marginal.abs() < 3.0,
                "{machines} machines: marginal cost ${marginal:.2} exceeds the paper's <$3"
            );
            // And the time saved is real.
            assert!(parallel.hours < serial.hours / (machines as f64 * 2.0));
        }
    }

    #[test]
    fn figure14_time_reduction_hours() {
        // "the model developer observes as much as 16-hour reductions in
        // execution time" — RsNt at 16 GPUs.
        let w = Workload::by_name("RsNt").unwrap();
        let record = simulate_record(w, 1.0 / 15.0, true);
        let replay = simulate_replay(w, &record, ProbePosition::Inner, 16, InitMode::Weak);
        let saved = w.vanilla_hours - replay.wall_secs / 3600.0;
        assert!(saved > 12.0, "saved {saved:.1} hours");
    }

    #[test]
    fn read_constants_order_and_scale_sensibly() {
        use crate::workload::ALL_WORKLOADS;
        // The whole point of the segmented engine: fixed per-read cost
        // beats the per-file open/read/close path by ≥2×.
        let (seg, file) = (
            read_cost::SEGMENTED_GET_SECS,
            read_cost::FILE_PER_CKPT_GET_SECS,
        );
        assert!(seg * 2.0 <= file, "{seg} vs {file}");
        // Proportional in checkpoint size, monotone.
        assert!(read_cost::restore_read_secs(1.0) > read_cost::restore_read_secs(0.001));
        // The I/O term stays a small correction to the paper's compute-side
        // restore model for every Table 3 workload (< 5% of an epoch).
        for w in ALL_WORKLOADS {
            let io = read_cost::restore_read_secs(w.compressed_ckpt_gb);
            assert!(
                io < 0.05 * w.epoch_secs(),
                "{}: read cost {io:.3}s vs epoch {:.1}s",
                w.name,
                w.epoch_secs()
            );
        }
    }

    #[test]
    fn serial_bill_arithmetic() {
        let bill = serial_bill(10.0);
        assert_eq!(bill.total_usd, 30.6);
        assert_eq!(bill.machines, 1);
    }
}
