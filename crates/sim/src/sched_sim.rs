//! Scheduling simulation: static contiguous partitioning vs the cost-aware
//! work-stealing executor, over skewed epoch-cost profiles.
//!
//! Real training iterations are heavily skewed — warmup iterations
//! compile/caches-fill, periodic eval epochs run a validation pass,
//! LR-schedule phase changes shift per-step cost — and static contiguous
//! partitioning (paper §5.4) is gated by whichever worker drew the
//! expensive span: Figure 13's 200 epochs over 16 GPUs tops out at 15.38×
//! *even with uniform costs*, and skew makes it far worse. This module
//! drives the **real** scheduling machinery ([`flor_core::parallel`]'s
//! micro-range splitter, contiguous seeding, and [`RangeQueue`]) over
//! synthetic skew profiles to quantify what the work-stealing runtime buys
//! and how close it gets to the profile-aware bound
//! ([`max_speedup_profiled`]).

use flor_core::parallel::{max_speedup_profiled, plan, seed_cost_ranges, InitMode, RangeQueue};

/// Per-epoch replay costs, seconds. Generators below produce the common
/// skew shapes; any slice works.
pub type EpochCosts = Vec<f64>;

/// Uniform costs: `n` epochs of `base` seconds (the best case for static
/// partitioning — stealing must tie here, not win).
pub fn uniform(n: u64, base: f64) -> EpochCosts {
    vec![base; n as usize]
}

/// Warmup skew: the first `warmup` epochs cost `factor ×` base (JIT
/// compilation, cache warm, dataloader spin-up).
pub fn warmup_skew(n: u64, base: f64, warmup: u64, factor: f64) -> EpochCosts {
    (0..n)
        .map(|g| if g < warmup { base * factor } else { base })
        .collect()
}

/// Eval-epoch skew: every `every`-th epoch runs a validation pass costing
/// `factor ×` base.
pub fn eval_spike_skew(n: u64, base: f64, every: u64, factor: f64) -> EpochCosts {
    (0..n)
        .map(|g| {
            if every > 0 && g % every == every - 1 {
                base * factor
            } else {
                base
            }
        })
        .collect()
}

/// Tail skew: the last `tail` epochs cost `factor ×` base (end-of-run
/// fine-tuning phase, LR-schedule change, growing sequence lengths).
pub fn tail_skew(n: u64, base: f64, tail: u64, factor: f64) -> EpochCosts {
    (0..n)
        .map(|g| {
            if g >= n - tail.min(n) {
                base * factor
            } else {
                base
            }
        })
        .collect()
}

/// Outcome of simulating one schedule comparison.
#[derive(Debug, Clone)]
pub struct SchedSim {
    /// Static contiguous partitioning makespan, seconds (the barrier-join
    /// wall time: slowest worker's share).
    pub static_secs: f64,
    /// Work-stealing makespan, seconds.
    pub steal_secs: f64,
    /// Ranges that moved between workers.
    pub steals: u64,
    /// static / steal — how much the new runtime buys on this profile.
    pub improvement: f64,
    /// Profile-aware speedup bound over one worker
    /// ([`max_speedup_profiled`]).
    pub bound: f64,
    /// Speedup over one worker the stealing schedule achieved.
    pub steal_speedup: f64,
}

fn to_ns(costs: &[f64]) -> Vec<u64> {
    costs.iter().map(|&c| (c * 1e9).max(1.0) as u64).collect()
}

/// Makespan of the legacy static plan: each worker executes its contiguous
/// [`plan`] share; the barrier join waits for the slowest.
pub fn static_makespan(costs: &[f64], workers: usize) -> f64 {
    let n = costs.len() as u64;
    plan(n, workers, InitMode::Strong)
        .iter()
        .map(|p| p.work_iters().map(|g| costs[g as usize]).sum::<f64>())
        .fold(0.0, f64::max)
}

/// Makespan of the work-stealing executor, using the real splitter,
/// seeding, and [`RangeQueue`] policy (final-range pinning, forward-steal
/// preference). `profiled` seeds with the true costs (a recorded profile);
/// otherwise uniform micro-ranges model a run recorded before cost
/// profiling existed. Returns `(makespan_secs, steals)`.
pub fn stealing_makespan(costs: &[f64], workers: usize, profiled: bool) -> (f64, u64) {
    let mut span = flor_obs::span(flor_obs::Category::Sim, "stealing_makespan");
    span.set_args(costs.len() as u64, workers as u64);
    let n = costs.len() as u64;
    if n == 0 || workers == 0 {
        return (0.0, 0);
    }
    let seed_costs: Vec<u64> = if profiled { to_ns(costs) } else { Vec::new() };
    let deques = seed_cost_ranges(n, workers, &seed_costs, None);
    let queue = RangeQueue::new(workers, true);
    queue.seed_once(n, || (deques, seed_costs));

    // Event loop: the earliest-free worker pulls its next range; workers
    // that executed the final range retire (they own the final state).
    let mut clock = vec![0.0f64; workers];
    let mut state = vec![0u64; workers];
    let mut alive = vec![true; workers];
    while let Some(pid) = (0..workers)
        .filter(|&w| alive[w])
        .min_by(|&a, &b| clock[a].total_cmp(&clock[b]))
    {
        // The simulator models reusable checkpoints (rewinds allowed).
        let Some(next) = queue.next(pid, state[pid], true) else {
            alive[pid] = false;
            continue;
        };
        let r = next.range;
        clock[pid] += r.iters().map(|g| costs[g as usize]).sum::<f64>();
        state[pid] = r.end;
        if r.end == n {
            alive[pid] = false;
        }
    }
    (clock.iter().fold(0.0f64, |a, &b| a.max(b)), queue.steals())
}

/// Compares static partitioning against profiled work-stealing on one cost
/// profile.
pub fn compare(costs: &[f64], workers: usize) -> SchedSim {
    let static_secs = static_makespan(costs, workers);
    let (steal_secs, steals) = stealing_makespan(costs, workers, true);
    let total: f64 = costs.iter().sum();
    SchedSim {
        static_secs,
        steal_secs,
        steals,
        improvement: static_secs / steal_secs.max(1e-12),
        bound: max_speedup_profiled(&to_ns(costs), workers),
        steal_speedup: total / steal_secs.max(1e-12),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_costs_tie_within_two_percent() {
        // Stealing must not regress the uniform case (the paper's model).
        for workers in [2usize, 4, 8, 16] {
            let costs = uniform(200, 30.0);
            let sim = compare(&costs, workers);
            assert!(
                sim.improvement > 0.98,
                "{workers} workers: stealing lost uniform ground: {sim:?}"
            );
            assert!(
                sim.improvement < 1.10,
                "{workers} workers: uniform 'improvement' {:.3} is noise",
                sim.improvement
            );
        }
    }

    #[test]
    fn tail_skew_improves_markedly() {
        // 2 of 16 epochs are 10×: static hands one worker both heavy
        // epochs plus neighbors; cost-aware seeding spreads them.
        let costs = tail_skew(16, 10.0, 2, 10.0);
        let sim = compare(&costs, 4);
        assert!(
            sim.improvement >= 1.5,
            "tail skew should improve ≥1.5×: {sim:?}"
        );
        assert!(sim.steal_secs < sim.static_secs);
    }

    #[test]
    fn eval_spikes_improve_and_respect_bound() {
        // Spikes spread fairly evenly across contiguous shares, so static
        // is not catastrophic here — the win is real but moderate.
        let costs = eval_spike_skew(60, 20.0, 10, 6.0);
        for workers in [4usize, 8] {
            let sim = compare(&costs, workers);
            assert!(sim.improvement > 1.05, "{workers} workers: {sim:?}");
            assert!(
                sim.steal_speedup <= sim.bound + 1e-9,
                "no schedule may beat the profile-aware bound: {sim:?}"
            );
        }
    }

    #[test]
    fn warmup_skew_improves() {
        let costs = warmup_skew(40, 15.0, 4, 8.0);
        let sim = compare(&costs, 4);
        assert!(sim.improvement > 1.2, "{sim:?}");
    }

    #[test]
    fn unprofiled_stealing_still_beats_static_under_skew() {
        // Without a profile the seeds are uniform — the queue's stealing
        // is the only rebalancer, and it must still win (this is the
        // pre-profile-run rescue path).
        let costs = tail_skew(16, 10.0, 2, 10.0);
        let static_secs = static_makespan(&costs, 4);
        let (steal_secs, steals) = stealing_makespan(&costs, 4, false);
        assert!(
            steal_secs < static_secs,
            "unprofiled stealing {steal_secs:.1}s vs static {static_secs:.1}s"
        );
        assert!(steals > 0, "uniform seeds under skew must steal");
    }

    #[test]
    fn figure13_shape_reproduces_with_uniform_costs() {
        // 200 uniform epochs on 16 workers: the static bound 15.38× —
        // stealing cannot beat it (atomic epochs), only match it.
        let costs = uniform(200, 30.0);
        let total: f64 = costs.iter().sum();
        let (steal_secs, _) = stealing_makespan(&costs, 16, true);
        let speedup = total / steal_secs;
        let static_speedup = total / static_makespan(&costs, 16);
        assert!((static_speedup - 200.0 / 13.0).abs() < 1e-6);
        assert!(speedup <= 16.0 + 1e-9);
        assert!(
            speedup >= static_speedup * 0.98,
            "stealing must not lose to static"
        );
    }

    #[test]
    fn degenerate_profiles() {
        assert_eq!(stealing_makespan(&[], 4, true).0, 0.0);
        let single = compare(&[42.0], 4);
        assert!((single.steal_secs - 42.0).abs() < 1e-9);
        assert!((single.improvement - 1.0).abs() < 1e-9);
    }
}
