//! The paper's Table 3 workloads, with calibrated magnitudes.
//!
//! Structure (name, benchmark, task, model, dataset, train-vs-fine-tune,
//! epochs) is copied verbatim from Table 3. Three magnitudes calibrate the
//! simulation:
//!
//! - `compressed_ckpt_gb`: per-checkpoint gzip-compressed size, derived
//!   from Table 4's totals divided by the expected checkpoint count (e.g.
//!   RTE: 14 GB total over ~13 periodic checkpoints ≈ 1.1 GB — which
//!   matches the "1.1GB checkpoint from the RTE experiment" the paper uses
//!   to validate Figure 5);
//! - `m_over_c`: per-epoch materialization time / compute time. For the
//!   fine-tuning workloads these are *published*: Figure 7's
//!   adaptivity-disabled overheads (RTE 91%, CoLA 28%). For training
//!   workloads they are small (checkpoints are cheap relative to epochs);
//!   values are estimated to land Figure 11's reported 1.47% average;
//! - `vanilla_hours`: vanilla execution time (Figure 11's bars are not
//!   numerically labelled in the text; estimates are chosen to be
//!   consistent with the narrative — e.g. §2.1's one-hour CIFAR runs, and
//!   Figure 12's speedup range topping out at 1123× for the longest job).

/// Training or fine-tuning (the axis that decides checkpoint economics,
/// §5.3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// All weights trainable; checkpoints cheap relative to compute.
    Train,
    /// Vast majority of weights frozen; enormous checkpoints, short epochs.
    FineTune,
}

/// One evaluation workload (a row of Table 3 plus calibration).
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name (Table 3, column 1).
    pub name: &'static str,
    /// Source benchmark suite.
    pub benchmark: &'static str,
    /// Task description.
    pub task: &'static str,
    /// Model architecture.
    pub model: &'static str,
    /// Dataset.
    pub dataset: &'static str,
    /// Train or fine-tune.
    pub kind: WorkloadKind,
    /// Main-loop iterations (epochs), Table 3.
    pub epochs: u64,
    /// Vanilla end-to-end runtime, hours (calibrated estimate).
    pub vanilla_hours: f64,
    /// Per-checkpoint compressed size, GB (derived from Table 4).
    pub compressed_ckpt_gb: f64,
    /// Per-epoch materialization/compute ratio `M_i / C_i`
    /// (= Figure 7's adaptivity-disabled overhead).
    pub m_over_c: f64,
}

impl Workload {
    /// Per-epoch compute time, seconds.
    pub fn epoch_secs(&self) -> f64 {
        self.vanilla_hours * 3600.0 / self.epochs as f64
    }

    /// Per-checkpoint materialization time, seconds.
    pub fn materialize_secs(&self) -> f64 {
        self.m_over_c * self.epoch_secs()
    }

    /// Per-checkpoint restore time, seconds (`R = c · M`, with the paper's
    /// measured average scaling factor c = 1.38).
    pub fn restore_secs(&self) -> f64 {
        1.38 * self.materialize_secs()
    }

    /// Preamble time (imports, data loading, preprocessing before the main
    /// loop) — work every replay worker repeats. Modeled as a flat 60 s:
    /// the paper reports partial-replay latencies "in the order of minutes
    /// … even when model training takes several hours", which bounds the
    /// per-worker fixed cost at about a minute.
    pub fn preamble_secs(&self) -> f64 {
        60.0
    }

    /// Look up a workload by name.
    pub fn by_name(name: &str) -> Option<&'static Workload> {
        ALL_WORKLOADS.iter().find(|w| w.name == name)
    }
}

/// Table 3, all eight workloads.
pub static ALL_WORKLOADS: &[Workload] = &[
    Workload {
        name: "RTE",
        benchmark: "GLUE",
        task: "Recognizing Textual Entailment",
        model: "RoBERTa",
        dataset: "RTE",
        kind: WorkloadKind::FineTune,
        epochs: 200,
        vanilla_hours: 1.0,
        compressed_ckpt_gb: 1.1, // the paper's Figure-5 validation payload
        m_over_c: 0.91,          // Figure 7, adaptivity disabled
    },
    Workload {
        name: "CoLA",
        benchmark: "GLUE",
        task: "Language Acceptability",
        model: "RoBERTa",
        dataset: "CoLA",
        kind: WorkloadKind::FineTune,
        epochs: 80,
        vanilla_hours: 1.0,
        compressed_ckpt_gb: 1.1,
        m_over_c: 0.28, // Figure 7, adaptivity disabled
    },
    Workload {
        name: "Cifr",
        benchmark: "Classic CV",
        task: "Image Classification",
        model: "Squeezenet",
        dataset: "Cifar100",
        kind: WorkloadKind::Train,
        epochs: 200,
        vanilla_hours: 1.0,          // §2.1: "after one hour of training"
        compressed_ckpt_gb: 0.00352, // 705 MB / 200 (Table 4)
        m_over_c: 0.002,
    },
    Workload {
        name: "RsNt",
        benchmark: "Classic CV",
        task: "Image Classification",
        model: "ResNet-152",
        dataset: "Cifar100",
        kind: WorkloadKind::Train,
        epochs: 200,
        vanilla_hours: 16.0,
        compressed_ckpt_gb: 0.195, // 39 GB / 200 (Table 4)
        m_over_c: 0.01,
    },
    Workload {
        name: "Wiki",
        benchmark: "GLUE",
        task: "Language Modeling",
        model: "RoBERTa",
        dataset: "Wiki",
        kind: WorkloadKind::Train,
        epochs: 12,
        vanilla_hours: 22.0,
        compressed_ckpt_gb: 1.17, // 14 GB / 12 (Table 4)
        m_over_c: 0.004,
    },
    Workload {
        name: "Jasp",
        benchmark: "MLPerf",
        task: "Speech Recognition",
        model: "Jasper",
        dataset: "LibriSpeech",
        kind: WorkloadKind::Train,
        epochs: 4,
        vanilla_hours: 12.0,
        compressed_ckpt_gb: 0.5, // 2 GB / 4 (Table 4)
        m_over_c: 0.002,
    },
    Workload {
        name: "ImgN",
        benchmark: "Classic CV",
        task: "Image Classification",
        model: "Squeezenet",
        dataset: "ImageNet",
        kind: WorkloadKind::Train,
        epochs: 8,
        vanilla_hours: 8.0,
        compressed_ckpt_gb: 0.006375, // 51 MB / 8 (Table 4)
        m_over_c: 0.0005,
    },
    Workload {
        name: "RnnT",
        benchmark: "MLPerf",
        task: "Language Translation",
        model: "RNN w/ Attention",
        dataset: "WMT16",
        kind: WorkloadKind::Train,
        epochs: 8,
        vanilla_hours: 10.0,
        compressed_ckpt_gb: 3.625, // 29 GB / 8 (Table 4)
        m_over_c: 0.015,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_structure() {
        assert_eq!(ALL_WORKLOADS.len(), 8);
        let names: Vec<&str> = ALL_WORKLOADS.iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec!["RTE", "CoLA", "Cifr", "RsNt", "Wiki", "Jasp", "ImgN", "RnnT"]
        );
        // Epoch counts are Table 3 verbatim.
        let epochs: Vec<u64> = ALL_WORKLOADS.iter().map(|w| w.epochs).collect();
        assert_eq!(epochs, vec![200, 80, 200, 200, 12, 4, 8, 8]);
        // Exactly the two GLUE fine-tuning workloads.
        let ft: Vec<&str> = ALL_WORKLOADS
            .iter()
            .filter(|w| w.kind == WorkloadKind::FineTune)
            .map(|w| w.name)
            .collect();
        assert_eq!(ft, vec!["RTE", "CoLA"]);
    }

    #[test]
    fn finetune_ratios_are_published_figures() {
        assert_eq!(Workload::by_name("RTE").unwrap().m_over_c, 0.91);
        assert_eq!(Workload::by_name("CoLA").unwrap().m_over_c, 0.28);
    }

    #[test]
    fn derived_times_are_consistent() {
        let rte = Workload::by_name("RTE").unwrap();
        assert!((rte.epoch_secs() - 18.0).abs() < 1e-9);
        assert!((rte.materialize_secs() - 0.91 * 18.0).abs() < 1e-9);
        assert!((rte.restore_secs() - 1.38 * 0.91 * 18.0).abs() < 1e-6);
    }

    #[test]
    fn train_workloads_have_cheap_checkpoints() {
        for w in ALL_WORKLOADS {
            if w.kind == WorkloadKind::Train {
                assert!(
                    w.m_over_c < 1.0 / 15.0,
                    "{}: training checkpoints must beat ε",
                    w.name
                );
            }
        }
    }

    #[test]
    fn by_name_lookup() {
        assert!(Workload::by_name("RsNt").is_some());
        assert!(Workload::by_name("nope").is_none());
    }
}
