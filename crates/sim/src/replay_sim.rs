//! Replay-phase simulation at paper scale (Figures 10, 12, 13).
//!
//! Uses the **real** hindsight-parallelism planner
//! ([`flor_core::parallel`]) to assign epoch segments to simulated GPU
//! workers, then costs each worker's timeline on the [`crate::des`]
//! engine:
//!
//! - **restore** of a memoized epoch costs `R = c·M`;
//! - **re-execution** of an epoch costs `C` (probed blocks, or epochs whose
//!   checkpoint was skipped by adaptive checkpointing);
//! - every worker first pays the **preamble** (imports + data loading) and
//!   its **initialization segment** (strong: every preceding epoch,
//!   restored where checkpointed and re-executed where not; weak: one
//!   restore from the nearest anchor).
//!
//! Replay wall time is the latest worker completion — workers are
//! coordination-free (§5.4), so there is nothing else to model.

use crate::des::Timeline;
use crate::record_sim::RecordSim;
use crate::workload::Workload;
use flor_core::parallel::{plan, plan_anchored, InitMode, WorkerPlan};
use std::collections::BTreeSet;

/// Where the hindsight probe landed (Figure 12's two regimes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbePosition {
    /// Probe outside the training loop: memoized epochs restore
    /// ("partial + parallel replay", Figure 12 top).
    Outer,
    /// Probe inside the training loop: every epoch re-executes
    /// ("parallel-only replay", Figure 12 bottom).
    Inner,
}

/// Outcome of simulating one replay.
#[derive(Debug, Clone)]
pub struct ReplaySim {
    /// Workload name.
    pub name: &'static str,
    /// Replay wall-clock, seconds.
    pub wall_secs: f64,
    /// Vanilla re-execution wall-clock, seconds (the Figure 10/12 baseline:
    /// same logging, no Flor).
    pub vanilla_secs: f64,
    /// Speedup over vanilla.
    pub speedup: f64,
    /// Number of workers that received a segment.
    pub active_workers: usize,
    /// Epochs restored (across workers, work segments only).
    pub restored: u64,
    /// Epochs re-executed (across workers, including initialization).
    pub executed: u64,
}

impl ReplaySim {
    /// Replay time as a fraction of vanilla (Figure 10's y-axis).
    pub fn fraction_of_vanilla(&self) -> f64 {
        self.wall_secs / self.vanilla_secs
    }
}

/// Simulates replaying `workload` on `gpus` coordination-free workers.
///
/// `record` supplies the checkpoint placement (from [`crate::record_sim`]);
/// `probe` positions the hindsight log; `init_mode` picks strong or weak
/// worker initialization.
pub fn simulate_replay(
    workload: &Workload,
    record: &RecordSim,
    probe: ProbePosition,
    gpus: usize,
    init_mode: InitMode,
) -> ReplaySim {
    let mut span = flor_obs::span(flor_obs::Category::Sim, "simulate_replay");
    span.set_args(workload.epochs, gpus as u64);
    let n = workload.epochs;
    let anchors: BTreeSet<u64> = {
        // An epoch boundary g is an anchor iff epoch g-1 is checkpointed.
        let mut a: BTreeSet<u64> = record
            .checkpointed_epochs
            .iter()
            .map(|&e| e + 1)
            .filter(|&b| b < n)
            .collect();
        a.insert(0);
        a
    };
    let plans: Vec<WorkerPlan> = match init_mode {
        InitMode::Strong => plan(n, gpus, InitMode::Strong),
        InitMode::Weak => plan_anchored(n, &anchors, gpus),
    };

    let c = workload.epoch_secs();
    // Restore cost: the paper's compute-side R = c·M plus the storage
    // engine's measured read constants (BENCH_replay.json) for pulling the
    // checkpoint out of a segment.
    let r = workload.restore_secs()
        + crate::cost::read_cost::restore_read_secs(workload.compressed_ckpt_gb);
    let mut restored = 0u64;
    let mut executed = 0u64;
    let mut wall: f64 = 0.0;
    for p in &plans {
        let mut t = Timeline::new();
        // Preamble: every worker replays imports/data-loading.
        t.run(0.0, workload.preamble_secs());
        // Initialization segment.
        match init_mode {
            InitMode::Strong => {
                for g in p.init_iters() {
                    if record.checkpointed_epochs.contains(&g) {
                        t.run(0.0, r);
                    } else {
                        t.run(0.0, c);
                        executed += 1;
                    }
                }
            }
            InitMode::Weak => {
                if p.init_len() > 0 {
                    // One restore from the anchor's checkpoint.
                    t.run(0.0, r);
                }
            }
        }
        // Work segment.
        for g in p.work_iters() {
            let restore_possible = record.checkpointed_epochs.contains(&g);
            match probe {
                ProbePosition::Inner => {
                    t.run(0.0, c);
                    executed += 1;
                }
                ProbePosition::Outer => {
                    if restore_possible {
                        t.run(0.0, r);
                        restored += 1;
                    } else {
                        t.run(0.0, c);
                        executed += 1;
                    }
                }
            }
        }
        wall = wall.max(t.free_at());
    }

    let vanilla_secs = workload.vanilla_hours * 3600.0 + workload.preamble_secs();
    ReplaySim {
        name: workload.name,
        wall_secs: wall,
        vanilla_secs,
        speedup: vanilla_secs / wall.max(1e-9),
        active_workers: plans.len(),
        restored,
        executed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record_sim::simulate_record;
    use crate::workload::{Workload, ALL_WORKLOADS};

    const EPSILON: f64 = 1.0 / 15.0;

    fn rec(name: &str) -> (&'static Workload, RecordSim) {
        let w = Workload::by_name(name).unwrap();
        (w, simulate_record(w, EPSILON, true))
    }

    #[test]
    fn figure12_outer_probe_speedups_order_of_magnitude() {
        // "improvements range from 7× to 1123× — with the more significant
        // improvements favoring the longer experiments".
        let mut speedups = Vec::new();
        for w in ALL_WORKLOADS {
            let record = simulate_record(w, EPSILON, true);
            // Up to 4 machines × 4 GPUs, best configuration.
            let best = [4usize, 8, 12, 16]
                .iter()
                .map(|&g| {
                    simulate_replay(w, &record, ProbePosition::Outer, g, InitMode::Weak).speedup
                })
                .fold(0.0f64, f64::max);
            speedups.push((w.name, best));
        }
        for (name, s) in &speedups {
            assert!(*s >= 4.0, "{name}: outer-probe speedup {s:.1} too small");
        }
        let max = speedups.iter().map(|(_, s)| *s).fold(0.0f64, f64::max);
        assert!(
            max > 300.0,
            "longest workloads should see orders of magnitude ({max:.0}×)"
        );
    }

    #[test]
    fn figure12_longer_experiments_gain_more() {
        let (cifr_w, cifr_r) = rec("Cifr"); // 1 hour
        let (wiki_w, wiki_r) = rec("Wiki"); // ~22 hours
        let s_cifr =
            simulate_replay(cifr_w, &cifr_r, ProbePosition::Outer, 4, InitMode::Weak).speedup;
        let s_wiki =
            simulate_replay(wiki_w, &wiki_r, ProbePosition::Outer, 4, InitMode::Weak).speedup;
        assert!(
            s_wiki > s_cifr,
            "longer job must gain more: Wiki {s_wiki:.0}× vs Cifr {s_cifr:.0}×"
        );
    }

    #[test]
    fn figure10_four_gpu_fraction_near_quarter_for_epoch_rich_training() {
        // Parallel (inner-probe) replay on 4 GPUs: near-ideal 25% for
        // epoch-rich fully-checkpointed workloads.
        for name in ["Cifr", "RsNt"] {
            let (w, r) = rec(name);
            for mode in [InitMode::Strong, InitMode::Weak] {
                let sim = simulate_replay(w, &r, ProbePosition::Inner, 4, mode);
                let frac = sim.fraction_of_vanilla();
                assert!(
                    frac > 0.24 && frac < 0.40,
                    "{name} {mode:?}: fraction {frac:.3} not near-ideal"
                );
            }
        }
    }

    #[test]
    fn figure10_rte_cola_limited_by_partitions() {
        // "RTE & CoLA only have 6 epoch-partitions each, so parallelism on
        // 4 GPUs leads to at best 2/6 = 33% replay time."
        let (w, r) = rec("RTE");
        let sim = simulate_replay(w, &r, ProbePosition::Inner, 4, InitMode::Weak);
        let frac = sim.fraction_of_vanilla();
        assert!(
            frac >= 0.28,
            "RTE cannot beat its checkpoint-partition bound: {frac:.3}"
        );
        // And it is still a real improvement over sequential.
        assert!(
            frac < 0.7,
            "RTE parallel replay should still win: {frac:.3}"
        );
    }

    #[test]
    fn figure13_rsnt_scaleout_is_near_ideal() {
        // RsNt scale-out 4 → 16 GPUs with weak init: near-ideal speedups,
        // bounded by 200/⌈200/G⌉ (15.38× at 16).
        let (w, r) = rec("RsNt");
        let mut prev = 0.0;
        for gpus in [4usize, 8, 12, 16] {
            let sim = simulate_replay(w, &r, ProbePosition::Inner, gpus, InitMode::Weak);
            let ideal = flor_core::parallel::max_speedup(200, gpus);
            assert!(
                sim.speedup > 0.8 * ideal && sim.speedup <= ideal + 1e-9,
                "{gpus} GPUs: speedup {:.2} vs ideal {ideal:.2}",
                sim.speedup
            );
            assert!(sim.speedup > prev, "speedup must grow with GPUs");
            prev = sim.speedup;
        }
    }

    #[test]
    fn weak_init_beats_strong_when_checkpoints_are_sparse() {
        // For periodic-checkpoint workloads, strong init re-executes the
        // gaps; weak init jumps straight to the anchor.
        let (w, r) = rec("RTE");
        let strong = simulate_replay(w, &r, ProbePosition::Inner, 4, InitMode::Strong);
        let weak = simulate_replay(w, &r, ProbePosition::Inner, 4, InitMode::Weak);
        assert!(
            weak.wall_secs < strong.wall_secs,
            "weak {:.0}s must beat strong {:.0}s on sparse checkpoints",
            weak.wall_secs,
            strong.wall_secs
        );
    }

    #[test]
    fn weak_vs_strong_negligible_when_fully_checkpointed() {
        // "the difference between weak and strong initialization is
        // negligible" (Figure 10) — for fully checkpointed workloads.
        let (w, r) = rec("RsNt");
        let strong = simulate_replay(w, &r, ProbePosition::Inner, 4, InitMode::Strong);
        let weak = simulate_replay(w, &r, ProbePosition::Inner, 4, InitMode::Weak);
        let rel = (strong.wall_secs - weak.wall_secs).abs() / weak.wall_secs;
        assert!(rel < 0.10, "difference {rel:.3} should be negligible");
    }

    #[test]
    fn single_gpu_inner_replay_is_roughly_vanilla() {
        // No parallelism, probe inside: Flor ≈ vanilla (no regret).
        let (w, r) = rec("Jasp");
        let sim = simulate_replay(w, &r, ProbePosition::Inner, 1, InitMode::Strong);
        let frac = sim.fraction_of_vanilla();
        assert!(frac > 0.95 && frac < 1.1, "fraction {frac:.3}");
    }

    #[test]
    fn outer_probe_restores_everything_checkpointed() {
        let (w, r) = rec("Cifr");
        let sim = simulate_replay(w, &r, ProbePosition::Outer, 1, InitMode::Strong);
        assert_eq!(sim.restored, 200);
        assert_eq!(sim.executed, 0);
    }
}
