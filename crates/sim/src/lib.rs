//! # flor-sim
//!
//! Paper-scale simulation of the Flor experiments. The live engine in
//! `flor-core` runs miniature workloads in seconds; the paper's evaluation
//! (§6) runs hours-long GPU jobs on EC2 P3 fleets. This crate replays that
//! evaluation through a discrete-event simulation whose *decision logic* is
//! the real thing:
//!
//! - checkpoint placement comes from the **same** [`flor_core::adaptive`]
//!   controller the live engine uses (Eq. 4, with virtual clocks),
//! - partitioning and strong/weak initialization come from the **same**
//!   [`flor_core::parallel`] planner,
//!
//! so "who wins, by what factor, where the crossovers fall" is produced by
//! the reproduced system, not hard-coded. The workload parameters
//! ([`workload`]) carry Table 3's published structure (epochs,
//! train-vs-fine-tune) and Table 4 / Figure 7's published magnitudes
//! (checkpoint sizes, materialization/compute ratios); remaining
//! calibrations (vanilla runtimes) are documented estimates.
//!
//! Modeling note (documented in DESIGN.md): record-overhead accounting
//! charges materialization time to the training thread, matching the
//! paper's Record Overhead invariant (Eq. 1 treats `k·M` as overhead
//! against `n·C`). The *background-materialization* win of Figure 5 is
//! measured live by `flor-chkpt` benches rather than simulated here; the
//! two mechanisms compose (background materialization shrinks the effective
//! `M` that adaptive checkpointing reasons about).

#![warn(missing_docs)]

pub mod cost;
pub mod des;
pub mod record_sim;
pub mod replay_sim;
pub mod sched_sim;
pub mod workload;

pub use cost::{machine, monthly_storage_usd, ReplayBill};
pub use record_sim::{simulate_record, RecordSim};
pub use replay_sim::{simulate_replay, ProbePosition, ReplaySim};
pub use sched_sim::{compare as compare_schedules, SchedSim};
pub use workload::{Workload, WorkloadKind, ALL_WORKLOADS};
