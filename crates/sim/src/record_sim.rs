//! Record-phase simulation at paper scale (Figures 7 & 11, Table 4 inputs).
//!
//! Drives the **real** [`flor_core::adaptive::AdaptiveController`] with
//! virtual per-epoch times from a [`Workload`]: every epoch contributes its
//! compute time `C`; the controller's Joint Invariant (Eq. 4) decides
//! whether to materialize, and materialized checkpoints contribute `M` to
//! record time (the paper's Eq. 1 accounting — see the crate docs for why
//! `M` is charged to the critical path).

use crate::workload::Workload;
use flor_core::adaptive::AdaptiveController;
use std::collections::BTreeSet;

/// Outcome of simulating one record run.
#[derive(Debug, Clone)]
pub struct RecordSim {
    /// The workload name.
    pub name: &'static str,
    /// Vanilla runtime, seconds.
    pub vanilla_secs: f64,
    /// Record runtime, seconds (compute + materialization).
    pub record_secs: f64,
    /// Record overhead fraction (Figure 7 / Figure 11 y-axis).
    pub overhead: f64,
    /// Epochs whose Loop End Checkpoint was materialized (`k_i` total and
    /// the anchor set replay's weak initialization partitions on).
    pub checkpointed_epochs: BTreeSet<u64>,
    /// Total compressed checkpoint bytes (Table 4's "Checkpoint Size").
    pub total_ckpt_gb: f64,
}

impl RecordSim {
    /// Number of checkpoints materialized.
    pub fn checkpoints(&self) -> u64 {
        self.checkpointed_epochs.len() as u64
    }
}

/// Simulates recording `workload` with tolerance `epsilon` (the paper uses
/// 1/15) and adaptivity on or off.
pub fn simulate_record(workload: &Workload, epsilon: f64, adaptive: bool) -> RecordSim {
    let mut span = flor_obs::span(flor_obs::Category::Sim, "simulate_record");
    span.set_args(workload.epochs, 0);
    let mut controller = AdaptiveController::new(epsilon);
    if !adaptive {
        controller = controller.with_adaptivity_disabled();
    }
    let c_ns = (workload.epoch_secs() * 1e9) as u64;
    let m_ns = (workload.materialize_secs() * 1e9) as u64;

    let mut checkpointed = BTreeSet::new();
    let mut record_secs = 0.0;
    for epoch in 0..workload.epochs {
        record_secs += workload.epoch_secs();
        // The controller tests Eq. 4 after the loop executes, before
        // materialization — exactly the live engine's call sequence.
        if controller.should_materialize(workload.name, c_ns, m_ns) {
            controller.observe_materialize(
                workload.name,
                m_ns,
                (workload.compressed_ckpt_gb * 1e9) as u64,
            );
            checkpointed.insert(epoch);
            record_secs += workload.materialize_secs();
        }
    }
    let vanilla_secs = workload.vanilla_hours * 3600.0;
    RecordSim {
        name: workload.name,
        vanilla_secs,
        record_secs,
        overhead: (record_secs - vanilla_secs) / vanilla_secs,
        total_ckpt_gb: checkpointed.len() as f64 * workload.compressed_ckpt_gb,
        checkpointed_epochs: checkpointed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Workload, ALL_WORKLOADS};

    const EPSILON: f64 = 1.0 / 15.0;

    #[test]
    fn figure7_no_workload_exceeds_tolerance_with_adaptivity() {
        // "No workload exceeds the overhead limit with adaptive
        // checkpointing" — modulo the single bootstrap checkpoint.
        for w in ALL_WORKLOADS {
            let sim = simulate_record(w, EPSILON, true);
            let slack = w.materialize_secs() / sim.vanilla_secs;
            assert!(
                sim.overhead <= EPSILON + slack + 1e-9,
                "{}: overhead {:.3} exceeds ε",
                w.name,
                sim.overhead
            );
        }
    }

    #[test]
    fn figure7_disabled_adaptivity_extremes() {
        // "adaptivity-disabled overhead is 91% for RTE and 28% for CoLA".
        let rte = simulate_record(Workload::by_name("RTE").unwrap(), EPSILON, false);
        assert!(
            (rte.overhead - 0.91).abs() < 1e-6,
            "RTE {:.3}",
            rte.overhead
        );
        let cola = simulate_record(Workload::by_name("CoLA").unwrap(), EPSILON, false);
        assert!(
            (cola.overhead - 0.28).abs() < 1e-6,
            "CoLA {:.3}",
            cola.overhead
        );
    }

    #[test]
    fn training_workloads_checkpoint_every_epoch() {
        // "The loops in model training workloads are memoized every time"
        // (§5.3.4).
        for name in ["Cifr", "RsNt", "Wiki", "Jasp", "ImgN", "RnnT"] {
            let w = Workload::by_name(name).unwrap();
            let sim = simulate_record(w, EPSILON, true);
            assert_eq!(
                sim.checkpoints(),
                w.epochs,
                "{name}: training loops memoize every epoch"
            );
        }
    }

    #[test]
    fn finetune_workloads_checkpoint_periodically() {
        // "Fine-tuning workloads are checkpointed periodically … their
        // checkpoints are massive relative to their short execution times".
        let rte = simulate_record(Workload::by_name("RTE").unwrap(), EPSILON, true);
        assert!(
            rte.checkpoints() < 200 / 10,
            "RTE sparse: {} checkpoints",
            rte.checkpoints()
        );
        assert!(rte.checkpoints() >= 2);
        let cola = simulate_record(Workload::by_name("CoLA").unwrap(), EPSILON, true);
        assert!(cola.checkpoints() < 80 / 3, "CoLA: {}", cola.checkpoints());
    }

    #[test]
    fn table4_totals_reproduced() {
        // Adaptive checkpointing × per-checkpoint sizes must land near
        // Table 4's published totals.
        let expect = [
            ("ImgN", 0.051),
            ("Cifr", 0.705),
            ("Jasp", 2.0),
            ("Wiki", 14.0),
            ("RTE", 14.0),
            ("RsNt", 39.0),
            ("RnnT", 29.0),
        ];
        for (name, gb) in expect {
            let w = Workload::by_name(name).unwrap();
            let sim = simulate_record(w, EPSILON, true);
            let rel = (sim.total_ckpt_gb - gb).abs() / gb;
            assert!(
                rel < 0.25,
                "{name}: simulated {:.3} GB vs Table 4's {gb} GB",
                sim.total_ckpt_gb
            );
        }
    }

    #[test]
    fn figure11_average_overhead_band() {
        // Paper: 1.47% average overhead across the eight workloads.
        let avg: f64 = ALL_WORKLOADS
            .iter()
            .map(|w| simulate_record(w, EPSILON, true).overhead)
            .sum::<f64>()
            / ALL_WORKLOADS.len() as f64;
        assert!(
            avg > 0.002 && avg < 0.03,
            "average record overhead {avg:.4} out of the paper's band"
        );
    }

    #[test]
    fn anchors_are_usable_for_weak_init() {
        let rte = Workload::by_name("RTE").unwrap();
        let sim = simulate_record(rte, EPSILON, true);
        // Every checkpointed epoch is < total epochs.
        assert!(sim.checkpointed_epochs.iter().all(|&e| e < rte.epochs));
        // Periodic: gaps between consecutive checkpoints are > 1.
        let v: Vec<u64> = sim.checkpointed_epochs.iter().copied().collect();
        assert!(v.windows(2).any(|w| w[1] - w[0] > 1));
    }
}
