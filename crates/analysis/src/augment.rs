//! Runtime changeset augmentation with encoded library knowledge
//! (paper §5.2.1, step 3).
//!
//! "For PyTorch, it suffices to encode two facts: (a) the model may be
//! updated via the optimizer; and (b) the optimizer may be updated via the
//! learning rate schedule. […] This changeset augmentation is done at runtime
//! rather than statically, so Flor has an opportunity to check whether any
//! object in the changeset is an instance of a PyTorch optimizer or learning
//! rate scheduler."
//!
//! The analysis crate is independent of the interpreter, so the runtime type
//! information arrives through the [`TypeOracle`] trait: given a variable
//! name, the oracle reports the names of further objects reachable through
//! library side-effect edges (optimizer → its model, scheduler → its
//! optimizer). Augmentation closes the changeset over those edges to a
//! fixpoint, so `scheduler → optimizer → model` chains resolve in one call.

/// Runtime type/alias information provider.
pub trait TypeOracle {
    /// Objects that the named object may mutate through encoded library
    /// facts (e.g. an optimizer mutates its model). Names not bound to
    /// library objects return an empty list.
    fn reaches(&self, name: &str) -> Vec<String>;
}

/// Closes `changeset` over the oracle's side-effect edges (fixpoint).
/// Preserves first-seen order; inferred names append after the originals.
pub fn augment_changeset(changeset: &[String], oracle: &dyn TypeOracle) -> Vec<String> {
    let mut out: Vec<String> = changeset.to_vec();
    let mut frontier = 0usize;
    while frontier < out.len() {
        let name = out[frontier].clone();
        for reached in oracle.reaches(&name) {
            if !out.contains(&reached) {
                out.push(reached);
            }
        }
        frontier += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    struct MapOracle(HashMap<String, Vec<String>>);

    impl TypeOracle for MapOracle {
        fn reaches(&self, name: &str) -> Vec<String> {
            self.0.get(name).cloned().unwrap_or_default()
        }
    }

    fn oracle(edges: &[(&str, &[&str])]) -> MapOracle {
        MapOracle(
            edges
                .iter()
                .map(|(k, vs)| (k.to_string(), vs.iter().map(|v| v.to_string()).collect()))
                .collect(),
        )
    }

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn optimizer_reaches_model() {
        // The Figure 6 outcome: {optimizer} augments to {optimizer, net}.
        let o = oracle(&[("optimizer", &["net"])]);
        assert_eq!(
            augment_changeset(&names(&["optimizer"]), &o),
            names(&["optimizer", "net"])
        );
    }

    #[test]
    fn scheduler_chain_closes_transitively() {
        let o = oracle(&[("sched", &["optimizer"]), ("optimizer", &["net"])]);
        assert_eq!(
            augment_changeset(&names(&["sched"]), &o),
            names(&["sched", "optimizer", "net"])
        );
    }

    #[test]
    fn no_duplicates() {
        let o = oracle(&[("optimizer", &["net"])]);
        assert_eq!(
            augment_changeset(&names(&["optimizer", "net"]), &o),
            names(&["optimizer", "net"])
        );
    }

    #[test]
    fn cycles_terminate() {
        let o = oracle(&[("a", &["b"]), ("b", &["a"])]);
        assert_eq!(augment_changeset(&names(&["a"]), &o), names(&["a", "b"]));
    }

    #[test]
    fn unknown_names_pass_through() {
        let o = oracle(&[]);
        assert_eq!(
            augment_changeset(&names(&["x", "y"]), &o),
            names(&["x", "y"])
        );
    }
}
