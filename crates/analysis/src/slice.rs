//! Backward program slicing for dependency-aware incremental replay
//! (ROADMAP item 2).
//!
//! A hindsight statement usually reads a handful of variables, yet
//! replay re-executes whole iterations. This module computes, over the
//! *instrumented* program, the transitive dependency closure of every
//! log statement in the main loop — the "live cone" — and emits the
//! complement as a set of dead [`StmtPath`]s that
//! `flor_lang::compile_sliced` lowers to nothing and
//! `flor_lang::prune_program` removes from the tree-walker's AST.
//!
//! Safety model (mirrors the Table-1 side-effect rules in
//! [`crate::rules`]):
//!
//! - **Roots.** Every `log(...)` statement is live: replay must
//!   regenerate the recorded log bit-identically (the deferred check
//!   depends on it) in addition to the new hindsight entries.
//! - **Defs.** A statement defines its plain-name targets, the root
//!   names of attribute/subscript targets (rule 1/3), and the receiver
//!   root of every method call anywhere in it (rules 1 and 4: a method
//!   call may mutate its receiver). A statement is live iff any def's
//!   alias class is live, then its name uses become live.
//! - **Alias classes.** A union-find over the loop body groups names
//!   that may refer to the same object: plain copies, container
//!   literals, attribute/subscript reads, and constructor calls (e.g.
//!   `sgd(net)` aliases the optimizer to the model, mirroring
//!   [`crate::augment`]'s runtime knowledge). Strong kills apply only
//!   to singleton classes.
//! - **Loop-carried deps.** Nested loops run a backward fixpoint on
//!   the body's live-out so a value consumed in the *next* iteration
//!   keeps its producer live; the main loop itself gets the same
//!   fixpoint.
//! - **Checkpoint cuts.** An *unprobed* skipblock whose iterations all
//!   checkpointed densely is restored, never executed, on the replay
//!   path being sliced — so it strongly kills the singleton-class
//!   names in its static changeset: their values after the block come
//!   entirely from the checkpoint, cutting the slice instead of
//!   dragging in pre-block producers. Without a dense profile the
//!   block may still execute (missing checkpoint ⇒ re-execution), so
//!   it conservatively uses every name in its body and kills nothing.
//!   Probed skipblocks re-execute and are scanned transparently.
//!   Skipblock statements themselves are never elided — block-level
//!   restore/execute decisions (and checkpoint side effects) are the
//!   replay engine's, not the slicer's.
//! - **Constructors stay live.** Object constructors draw from the
//!   interpreter's global seed counter; eliding one would shift every
//!   later constructor's seed. Unknown functions in assignment form
//!   also stay live so replay preserves their errors.
//! - **Fallback.** When safety is unprovable — a bare call to an
//!   unknown function (rule 5: arbitrary side effects), an
//!   attribute/subscript chain with no name root, or a computed callee
//!   — the slicer refuses and replay runs the full program.
//!
//! Only statements inside the main-loop body are candidates; the
//! preamble and postamble always run in full.

use crate::instrument::BlockPlan;
use flor_lang::ast::{Expr, Program, Stmt};
use flor_lang::compile::{path_step, stmt_count, StmtPath};
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// Builtins with no side effects and no aliasing between arguments and
/// result; statements whose only calls are pure are elidable. Mirrors
/// `flor-core`'s interpreter builtins.
const PURE_BUILTINS: &[&str] = &["range", "len", "min", "max", "abs", "busy"];

/// Builtins that construct objects. They advance the interpreter's
/// global constructor-seed counter, so they are never elided; their
/// results alias their name arguments (`sgd(net)` holds the model).
const CONSTRUCTORS: &[&str] = &[
    "synth_data",
    "token_data",
    "dataloader",
    "mlp",
    "resnet",
    "convnet",
    "textnet",
    "finetune",
    "sgd",
    "adam",
    "step_lr",
    "cosine_lr",
    "cyclic_lr",
    "cross_entropy",
    "swa_averager",
    "meter",
];

fn is_pure_builtin(name: &str) -> bool {
    PURE_BUILTINS.contains(&name)
}

fn is_constructor(name: &str) -> bool {
    CONSTRUCTORS.contains(&name)
}

fn is_known_builtin(name: &str) -> bool {
    is_pure_builtin(name) || is_constructor(name) || name == "log" || name == "evaluate"
}

/// Result of slicing one instrumented program for one query.
#[derive(Debug, Clone, Default)]
pub struct SlicePlan {
    /// Top-most dead statement paths (children of a dead subtree are
    /// not listed separately). Empty when nothing is elidable.
    pub dead: HashSet<StmtPath>,
    /// Statement nodes in the sliceable region (the main-loop body).
    pub region_stmts: u32,
    /// Statement nodes elided (subtrees counted in full).
    pub elided_stmts: u32,
    /// Why slicing was refused, if it was; `dead` is empty then.
    pub fallback: Option<String>,
}

impl SlicePlan {
    /// Live fraction of the region in permille (1000 = nothing elided).
    pub fn live_permille(&self) -> u32 {
        if self.region_stmts == 0 {
            return 1000;
        }
        (1000u64 * u64::from(self.region_stmts - self.elided_stmts) / u64::from(self.region_stmts))
            as u32
    }

    /// Whether the plan actually elides anything.
    pub fn is_active(&self) -> bool {
        self.fallback.is_none() && !self.dead.is_empty()
    }
}

/// Computes the backward slice of `prog`'s log statements.
///
/// `probed_blocks` are the skipblock ids the current query forces to
/// re-execute (from `lang::differ`); `blocks` are the instrumentation
/// block plans carrying each skipblock's static changeset;
/// `dense_checkpoints` says whether the recorded cost profile proves
/// every iteration of every block checkpointed (the precondition for
/// checkpoint cuts).
pub fn slice_program(
    prog: &Program,
    probed_blocks: &HashSet<String>,
    blocks: &[BlockPlan],
    dense_checkpoints: bool,
) -> SlicePlan {
    let Some((main_idx, var, iter, body)) = find_main_loop(prog) else {
        return SlicePlan {
            fallback: Some("no partitioned main loop".into()),
            ..SlicePlan::default()
        };
    };
    let region_stmts: u32 = body.iter().map(stmt_count).sum();
    if let Some(reason) = unsliceable_body(body) {
        return SlicePlan {
            region_stmts,
            fallback: Some(reason),
            ..SlicePlan::default()
        };
    }

    // Alias classes span the whole program: the preamble is where most
    // aliasing is established (`optimizer = sgd(net)` makes
    // `optimizer.step()` a mutation of `net`).
    let mut aliases = Aliases::default();
    collect_aliases(&prog.body, &mut aliases);
    let changesets: BTreeMap<&str, &[String]> = blocks
        .iter()
        .map(|b| (b.id.as_str(), b.static_changeset.as_slice()))
        .collect();
    let mut slicer = Slicer {
        aliases,
        probed: probed_blocks,
        changesets,
        dense: dense_checkpoints,
        dead: HashSet::new(),
        elided: 0,
    };

    // Live-out: every name the postamble mentions must hold its final
    // loop value.
    let mut live_after: BTreeSet<String> = BTreeSet::new();
    for s in &prog.body[main_idx + 1..] {
        for n in stmt_name_leaves(s) {
            let r = slicer.rep(&n);
            live_after.insert(r);
        }
    }

    let mut path: StmtPath = vec![path_step(0, main_idx)];

    // Loop-carried fixpoint on the main-loop body: `cur` is the live
    // set at the body's end (= after the loop ∪ at the next
    // iteration's head).
    let mut cur = live_after.clone();
    loop {
        let mut l = cur.clone();
        slicer.scan_body(body, 0, &mut path, &mut l, false);
        let var_rep = slicer.rep(var);
        if slicer.singleton(var) {
            l.remove(&var_rep);
        }
        for n in expr_name_leaves(iter) {
            let r = slicer.rep(&n);
            l.insert(r);
        }
        let next: BTreeSet<String> = live_after.union(&l).cloned().collect();
        if next == cur {
            break;
        }
        cur = next;
    }
    let mut l = cur;
    slicer.scan_body(body, 0, &mut path, &mut l, true);

    SlicePlan {
        dead: slicer.dead,
        region_stmts,
        elided_stmts: slicer.elided,
        fallback: None,
    }
}

/// Finds the first `for v in flor.partition(inner):` at top level —
/// the same detection the interpreter and compiler use.
fn find_main_loop(prog: &Program) -> Option<(usize, &str, &Expr, &[Stmt])> {
    for (i, s) in prog.body.iter().enumerate() {
        if let Stmt::For {
            var,
            iter: Expr::Call { func, args },
            body,
        } = s
        {
            if let Expr::Attr { obj, name } = func.as_ref() {
                if name == "partition" && obj.as_name() == Some("flor") && args.len() == 1 {
                    return Some((i, var, &args[0].value, body));
                }
            }
        }
    }
    None
}

/// Detects main-loop state carried across iterations *outside* every
/// skipblock — the condition under which rewound (backward-steal)
/// initialization is unsound.
///
/// A worker that takes a range behind its current position under strong
/// init rolls forward from iteration 0 *without* re-running the
/// preamble: the environment holds whatever the worker's previous range
/// left there. Names in a skipblock's changeset are repaired by that
/// block's checkpoint restore every iteration, and names the outer body
/// definitely rewrites before reading self-heal after one iteration —
/// but a name the outer body reads before its first write (`carry =
/// carry + boost`) keeps its already-advanced value through the entire
/// rewound prefix, and replay diverges from the record.
///
/// Returns the first such name (for diagnostics): one that is (a) read
/// before any definite outer write in body order, (b) mutated by an
/// outer-body statement (assignment target root or method receiver),
/// and (c) absent from every unconditional top-level skipblock
/// changeset. `None` means rewinds are sound and backward steals may
/// stay enabled.
pub fn outer_carried_state(prog: &Program, blocks: &[BlockPlan]) -> Option<String> {
    let (_, var, _, body) = find_main_loop(prog)?;
    let changesets: BTreeMap<&str, &[String]> = blocks
        .iter()
        .map(|b| (b.id.as_str(), b.static_changeset.as_slice()))
        .collect();

    // Names definitely (re)written so far this iteration, in body
    // order; the loop variable is assigned at the iteration top.
    let mut written: BTreeSet<String> = BTreeSet::new();
    written.insert(var.to_string());
    // Reads that happened while the name was not yet definitely
    // written: the value flows in from the previous iteration (or, on
    // the first, from the preamble).
    let mut carried_reads: Vec<String> = Vec::new();
    // Names the outer body mutates, definitely or conditionally.
    let mut outer_writes: BTreeSet<String> = BTreeSet::new();
    // Names a top-level (unconditional) skipblock restore repairs.
    let mut repaired: BTreeSet<String> = BTreeSet::new();

    for s in body {
        if let Stmt::SkipBlock { id, body: bb } = s {
            // The block's pre-state feeds its execution path (a probed
            // or checkpoint-less block re-executes), so every name leaf
            // in the body counts as a read; the changeset is then
            // written whether the block restores or executes.
            for n in bb.iter().flat_map(stmt_name_leaves) {
                if !written.contains(&n) {
                    carried_reads.push(n);
                }
            }
            if let Some(cs) = changesets.get(id.as_str()) {
                for n in *cs {
                    written.insert(n.clone());
                    repaired.insert(n.clone());
                }
            }
        } else {
            scan_outer_stmt(s, true, &mut written, &mut carried_reads, &mut outer_writes);
        }
    }

    carried_reads
        .into_iter()
        .find(|n| outer_writes.contains(n) && !repaired.contains(n))
}

/// One outer-body statement of the [`outer_carried_state`] scan: reads
/// are checked against the `written` set first, then defs are added.
/// `definite` is false under a conditional (If branch, nested loop
/// body, conditional skipblock), where a write may not happen on every
/// iteration and so never enters `written`.
fn scan_outer_stmt(
    s: &Stmt,
    definite: bool,
    written: &mut BTreeSet<String>,
    carried_reads: &mut Vec<String>,
    outer_writes: &mut BTreeSet<String>,
) {
    fn read(e: &Expr, written: &BTreeSet<String>, carried_reads: &mut Vec<String>) {
        for n in expr_name_leaves(e) {
            if !written.contains(&n) {
                carried_reads.push(n);
            }
        }
    }
    match s {
        Stmt::Import { .. } | Stmt::Pass => {}
        Stmt::Assign { targets, value } => {
            read(value, written, carried_reads);
            let mut recv = Vec::new();
            method_receivers(value, &mut recv);
            for t in targets {
                match t {
                    Expr::Name(n) => {
                        outer_writes.insert(n.clone());
                        if definite {
                            written.insert(n.clone());
                        }
                    }
                    other => {
                        // `obj.attr = v`: a partial update — the
                        // receiver's pre-value survives, so this is a
                        // read and a mutation, never a full rewrite.
                        read(other, written, carried_reads);
                        if let Some(r) = other.root_name() {
                            outer_writes.insert(r.to_string());
                        }
                    }
                }
            }
            outer_writes.extend(recv);
        }
        Stmt::ExprStmt { expr } => {
            read(expr, written, carried_reads);
            let mut recv = Vec::new();
            method_receivers(expr, &mut recv);
            outer_writes.extend(recv);
        }
        Stmt::If { cond, then, orelse } => {
            read(cond, written, carried_reads);
            for s in then.iter().chain(orelse) {
                scan_outer_stmt(s, false, written, carried_reads, outer_writes);
            }
        }
        Stmt::For { var, iter, body } => {
            read(iter, written, carried_reads);
            // The loop variable and body writes only happen when the
            // range is non-empty, and body reads may be loop-carried
            // within the inner loop — nothing here becomes definite.
            outer_writes.insert(var.clone());
            for s in body {
                scan_outer_stmt(s, false, written, carried_reads, outer_writes);
            }
        }
        Stmt::SkipBlock { body, .. } => {
            // A skipblock under a conditional may or may not restore on
            // a given iteration: treat its changeset as a conditional
            // mutation, never a repair.
            for s in body {
                scan_outer_stmt(s, false, written, carried_reads, outer_writes);
            }
        }
    }
}

// ---- fallback pre-scan -----------------------------------------------------

fn unsliceable_body(body: &[Stmt]) -> Option<String> {
    for s in body {
        match s {
            Stmt::Import { .. } | Stmt::Pass => {}
            Stmt::Assign { targets, value } => {
                for t in targets {
                    match t {
                        Expr::Name(_) => {}
                        Expr::Attr { .. } | Expr::Subscript { .. } if t.root_name().is_some() => {}
                        other => {
                            return Some(format!("unanalyzable assignment target `{other:?}`"))
                        }
                    }
                    if let Some(r) = unsliceable_expr(t) {
                        return Some(r);
                    }
                }
                if let Some(r) = unsliceable_expr(value) {
                    return Some(r);
                }
            }
            Stmt::ExprStmt { expr } => {
                if !s.is_log_stmt() {
                    if let Expr::Call { func, .. } = expr {
                        if let Expr::Name(f) = func.as_ref() {
                            if !is_known_builtin(f) {
                                // Rule 5: a bare call to an unknown
                                // function may touch anything.
                                return Some(format!(
                                    "bare call to unknown function `{f}()` may have arbitrary side effects"
                                ));
                            }
                        }
                    }
                }
                if let Some(r) = unsliceable_expr(expr) {
                    return Some(r);
                }
            }
            Stmt::For { iter, body, .. } => {
                if let Some(r) = unsliceable_expr(iter) {
                    return Some(r);
                }
                if let Some(r) = unsliceable_body(body) {
                    return Some(r);
                }
            }
            Stmt::If { cond, then, orelse } => {
                if let Some(r) = unsliceable_expr(cond) {
                    return Some(r);
                }
                if let Some(r) = unsliceable_body(then).or_else(|| unsliceable_body(orelse)) {
                    return Some(r);
                }
            }
            Stmt::SkipBlock { body, .. } => {
                if let Some(r) = unsliceable_body(body) {
                    return Some(r);
                }
            }
        }
    }
    None
}

fn unsliceable_expr(e: &Expr) -> Option<String> {
    match e {
        Expr::Attr { obj, .. } => {
            if e.root_name().is_none() {
                return Some("attribute access on a computed receiver (untrackable alias)".into());
            }
            unsliceable_expr(obj)
        }
        Expr::Subscript { obj, index } => {
            if e.root_name().is_none() {
                return Some("subscript of a computed receiver (untrackable alias)".into());
            }
            unsliceable_expr(obj).or_else(|| unsliceable_expr(index))
        }
        Expr::Call { func, args } => {
            match func.as_ref() {
                Expr::Name(_) => {}
                Expr::Attr { obj, .. } => {
                    if obj.root_name().is_none() {
                        return Some(
                            "method call on a computed receiver (untrackable alias)".into(),
                        );
                    }
                    if let Some(r) = unsliceable_expr(obj) {
                        return Some(r);
                    }
                }
                other => return Some(format!("cannot analyze callee `{other:?}`")),
            }
            args.iter().find_map(|a| unsliceable_expr(&a.value))
        }
        Expr::Bin { lhs, rhs, .. } => unsliceable_expr(lhs).or_else(|| unsliceable_expr(rhs)),
        Expr::Unary { expr, .. } => unsliceable_expr(expr),
        Expr::List(items) | Expr::Tuple(items) => items.iter().find_map(unsliceable_expr),
        Expr::Name(_)
        | Expr::Int(_)
        | Expr::Float(_)
        | Expr::Str(_)
        | Expr::Bool(_)
        | Expr::NoneLit => None,
    }
}

// ---- alias classes ---------------------------------------------------------

#[derive(Default)]
struct Aliases {
    parent: BTreeMap<String, String>,
    seen: BTreeSet<String>,
}

impl Aliases {
    fn find(&mut self, n: &str) -> String {
        let p = match self.parent.get(n) {
            None => return n.to_string(),
            Some(p) => p.clone(),
        };
        if p == n {
            return p;
        }
        let r = self.find(&p);
        self.parent.insert(n.to_string(), r.clone());
        r
    }

    fn union(&mut self, a: &str, b: &str) {
        if a == "flor" || b == "flor" {
            return;
        }
        self.seen.insert(a.to_string());
        self.seen.insert(b.to_string());
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }

    fn class_size(&mut self, n: &str) -> usize {
        let r = self.find(n);
        let members: Vec<String> = self.seen.iter().cloned().collect();
        members.iter().filter(|m| self.find(m) == r).count().max(1)
    }
}

/// Names the value of `e` may alias (empty for fresh values: literals,
/// arithmetic, method-call and pure/unknown-function results).
fn alias_sources(e: &Expr) -> Vec<&str> {
    match e {
        Expr::Name(n) => vec![n.as_str()],
        Expr::Attr { .. } | Expr::Subscript { .. } => e.root_name().into_iter().collect(),
        Expr::List(items) | Expr::Tuple(items) => items.iter().flat_map(alias_sources).collect(),
        Expr::Call { func, args } => match func.as_ref() {
            Expr::Name(f) if is_constructor(f) => {
                args.iter().flat_map(|a| alias_sources(&a.value)).collect()
            }
            _ => Vec::new(),
        },
        _ => Vec::new(),
    }
}

fn collect_aliases(body: &[Stmt], al: &mut Aliases) {
    for s in body {
        match s {
            Stmt::Assign { targets, value } => {
                let sources: Vec<String> =
                    alias_sources(value).into_iter().map(String::from).collect();
                for t in targets {
                    if let Some(root) = t.root_name() {
                        let root = root.to_string();
                        al.seen.insert(root.clone());
                        for src in &sources {
                            al.union(&root, src);
                        }
                    }
                }
            }
            Stmt::For { var, iter, body } => {
                // Iterating a container (or a method of one) may hand
                // out views of it: `for batch in loader.epoch()`.
                let src = match iter {
                    Expr::Call { func, .. } => match func.as_ref() {
                        Expr::Attr { obj, .. } => obj.root_name(),
                        _ => None,
                    },
                    other => other.root_name(),
                };
                al.seen.insert(var.clone());
                if let Some(src) = src {
                    al.union(var, src);
                }
                collect_aliases(body, al);
            }
            Stmt::If { then, orelse, .. } => {
                collect_aliases(then, al);
                collect_aliases(orelse, al);
            }
            Stmt::SkipBlock { body, .. } => collect_aliases(body, al),
            Stmt::ExprStmt { .. } | Stmt::Import { .. } | Stmt::Pass => {}
        }
    }
}

// ---- expression walks ------------------------------------------------------

fn expr_name_leaves(e: &Expr) -> Vec<String> {
    let mut out = Vec::new();
    walk_names(e, &mut out);
    out
}

fn walk_names(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Name(n) => {
            if n != "flor" {
                out.push(n.clone());
            }
        }
        Expr::Attr { obj, .. } => walk_names(obj, out),
        Expr::Subscript { obj, index } => {
            walk_names(obj, out);
            walk_names(index, out);
        }
        Expr::Call { func, args } => {
            // The callee name is not a variable use, but a method
            // receiver is.
            if let Expr::Attr { obj, .. } = func.as_ref() {
                walk_names(obj, out);
            }
            for a in args {
                walk_names(&a.value, out);
            }
        }
        Expr::Bin { lhs, rhs, .. } => {
            walk_names(lhs, out);
            walk_names(rhs, out);
        }
        Expr::Unary { expr, .. } => walk_names(expr, out),
        Expr::List(items) | Expr::Tuple(items) => {
            for i in items {
                walk_names(i, out);
            }
        }
        Expr::Int(_) | Expr::Float(_) | Expr::Str(_) | Expr::Bool(_) | Expr::NoneLit => {}
    }
}

/// Root names of every method-call receiver in `e` (rules 1/4: the
/// call may mutate the receiver).
fn method_receivers(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Call { func, args } => {
            if let Expr::Attr { obj, .. } = func.as_ref() {
                if let Some(r) = obj.root_name() {
                    if r != "flor" {
                        out.push(r.to_string());
                    }
                }
                method_receivers(obj, out);
            }
            for a in args {
                method_receivers(&a.value, out);
            }
        }
        Expr::Attr { obj, .. } => method_receivers(obj, out),
        Expr::Subscript { obj, index } => {
            method_receivers(obj, out);
            method_receivers(index, out);
        }
        Expr::Bin { lhs, rhs, .. } => {
            method_receivers(lhs, out);
            method_receivers(rhs, out);
        }
        Expr::Unary { expr, .. } => method_receivers(expr, out),
        Expr::List(items) | Expr::Tuple(items) => {
            for i in items {
                method_receivers(i, out);
            }
        }
        _ => {}
    }
}

/// Whether `e` contains a call that must not be elided regardless of
/// liveness: constructors (global seed counter) and unknown functions
/// (replay must preserve their errors).
fn has_pinned_call(e: &Expr) -> bool {
    match e {
        Expr::Call { func, args } => {
            let pinned = match func.as_ref() {
                Expr::Name(f) => !is_pure_builtin(f) && f != "log" && f != "evaluate",
                _ => false,
            };
            pinned || args.iter().any(|a| has_pinned_call(&a.value))
        }
        Expr::Attr { obj, .. } => has_pinned_call(obj),
        Expr::Subscript { obj, index } => has_pinned_call(obj) || has_pinned_call(index),
        Expr::Bin { lhs, rhs, .. } => has_pinned_call(lhs) || has_pinned_call(rhs),
        Expr::Unary { expr, .. } => has_pinned_call(expr),
        Expr::List(items) | Expr::Tuple(items) => items.iter().any(has_pinned_call),
        _ => false,
    }
}

fn stmt_name_leaves(s: &Stmt) -> Vec<String> {
    let mut out = Vec::new();
    collect_stmt_names(s, &mut out);
    out
}

fn collect_stmt_names(s: &Stmt, out: &mut Vec<String>) {
    match s {
        Stmt::Assign { targets, value } => {
            for t in targets {
                walk_names(t, out);
            }
            walk_names(value, out);
        }
        Stmt::ExprStmt { expr } => walk_names(expr, out),
        Stmt::For { var, iter, body } => {
            out.push(var.clone());
            walk_names(iter, out);
            for s in body {
                collect_stmt_names(s, out);
            }
        }
        Stmt::If { cond, then, orelse } => {
            walk_names(cond, out);
            for s in then.iter().chain(orelse) {
                collect_stmt_names(s, out);
            }
        }
        Stmt::SkipBlock { body, .. } => {
            for s in body {
                collect_stmt_names(s, out);
            }
        }
        Stmt::Import { .. } | Stmt::Pass => {}
    }
}

// ---- backward liveness -----------------------------------------------------

struct Slicer<'a> {
    aliases: Aliases,
    probed: &'a HashSet<String>,
    changesets: BTreeMap<&'a str, &'a [String]>,
    dense: bool,
    dead: HashSet<StmtPath>,
    elided: u32,
}

impl Slicer<'_> {
    fn rep(&mut self, n: &str) -> String {
        self.aliases.find(n)
    }

    fn singleton(&mut self, n: &str) -> bool {
        self.aliases.class_size(n) <= 1
    }

    fn mark_dead(&mut self, stmt: &Stmt, path: &StmtPath) {
        if self.dead.insert(path.clone()) {
            self.elided += stmt_count(stmt);
        }
    }

    fn add_uses(&mut self, e: &Expr, live: &mut BTreeSet<String>) {
        for n in expr_name_leaves(e) {
            let r = self.rep(&n);
            live.insert(r);
        }
    }

    /// Scans `body` backward, updating `live` in place. Returns whether
    /// any statement in it is live. Only records dead paths when
    /// `record` is set (probe passes and fixpoint rounds pass false).
    fn scan_body(
        &mut self,
        body: &[Stmt],
        slot: u32,
        path: &mut StmtPath,
        live: &mut BTreeSet<String>,
        record: bool,
    ) -> bool {
        let mut any = false;
        for (i, s) in body.iter().enumerate().rev() {
            path.push(path_step(slot, i));
            any |= self.scan_stmt(s, path, live, record);
            path.pop();
        }
        any
    }

    fn scan_stmt(
        &mut self,
        stmt: &Stmt,
        path: &mut StmtPath,
        live: &mut BTreeSet<String>,
        record: bool,
    ) -> bool {
        match stmt {
            // Imports never appear in loop bodies in practice; keep
            // them. A pre-existing `pass` is dead weight either way —
            // elide it so pruned reprints stay canonical.
            Stmt::Import { .. } => true,
            Stmt::Pass => {
                if record {
                    self.mark_dead(stmt, path);
                }
                false
            }
            Stmt::Assign { targets, value } => {
                let mut defs: Vec<String> = Vec::new();
                let mut kills: Vec<String> = Vec::new();
                for t in targets {
                    match t {
                        Expr::Name(n) => {
                            let r = self.rep(n);
                            if self.singleton(n) {
                                kills.push(r.clone());
                            }
                            defs.push(r);
                        }
                        other => {
                            if let Some(root) = other.root_name() {
                                let r = self.rep(root);
                                defs.push(r);
                            }
                        }
                    }
                }
                let mut recv = Vec::new();
                method_receivers(value, &mut recv);
                for r in recv {
                    let r = self.rep(&r);
                    defs.push(r);
                }
                let stmt_live = has_pinned_call(value) || defs.iter().any(|d| live.contains(d));
                if stmt_live {
                    for k in &kills {
                        live.remove(k);
                    }
                    self.add_uses(value, live);
                    for t in targets {
                        if !matches!(t, Expr::Name(_)) {
                            // `obj.attr = v` / `obj[i] = v`: the
                            // receiver and index are uses too.
                            self.add_uses(t, live);
                        }
                    }
                } else if record {
                    self.mark_dead(stmt, path);
                }
                stmt_live
            }
            Stmt::ExprStmt { expr } => {
                if stmt.is_log_stmt() {
                    // Root: the recorded log must be regenerated.
                    self.add_uses(expr, live);
                    return true;
                }
                let mut recv = Vec::new();
                method_receivers(expr, &mut recv);
                let stmt_live = has_pinned_call(expr)
                    || recv.iter().any(|r| {
                        let r = self.rep(r);
                        live.contains(&r)
                    });
                if stmt_live {
                    self.add_uses(expr, live);
                } else if record {
                    self.mark_dead(stmt, path);
                }
                stmt_live
            }
            Stmt::If { cond, then, orelse } => {
                let live_after = live.clone();
                let mut lt = live_after.clone();
                let then_any = self.scan_body(then, 0, path, &mut lt, false);
                let mut le = live_after.clone();
                let else_any = self.scan_body(orelse, 1, path, &mut le, false);
                let mut recv = Vec::new();
                method_receivers(cond, &mut recv);
                let stmt_live = then_any
                    || else_any
                    || has_pinned_call(cond)
                    || recv.iter().any(|r| {
                        let r = self.rep(r);
                        live.contains(&r)
                    });
                if !stmt_live {
                    if record {
                        self.mark_dead(stmt, path);
                    }
                    return false;
                }
                let mut lt = live_after.clone();
                self.scan_body(then, 0, path, &mut lt, record);
                let mut le = live_after;
                self.scan_body(orelse, 1, path, &mut le, record);
                // Either branch may run (an empty else leaves the
                // after-set intact), so the live-in is their union.
                *live = lt.union(&le).cloned().collect();
                self.add_uses(cond, live);
                true
            }
            Stmt::For { var, iter, body } => {
                let live_after = live.clone();
                // Fixpoint for loop-carried dependencies.
                let mut cur = live_after.clone();
                loop {
                    let mut l = cur.clone();
                    self.scan_body(body, 0, path, &mut l, false);
                    let var_rep = self.rep(var);
                    if self.singleton(var) {
                        l.remove(&var_rep);
                    }
                    self.add_uses(iter, &mut l);
                    let next: BTreeSet<String> = live_after.union(&l).cloned().collect();
                    if next == cur {
                        break;
                    }
                    cur = next;
                }
                let mut l = cur.clone();
                let body_any = self.scan_body(body, 0, path, &mut l, false);
                let var_rep = self.rep(var);
                let mut hdr_defs = vec![var_rep];
                let mut recv = Vec::new();
                method_receivers(iter, &mut recv);
                for r in recv {
                    let r = self.rep(&r);
                    hdr_defs.push(r);
                }
                let stmt_live =
                    body_any || has_pinned_call(iter) || hdr_defs.iter().any(|d| live.contains(d));
                if !stmt_live {
                    if record {
                        self.mark_dead(stmt, path);
                    }
                    return false;
                }
                let mut l = cur;
                self.scan_body(body, 0, path, &mut l, record);
                // No kills through the header: the loop may run zero
                // times.
                live.extend(l);
                self.add_uses(iter, live);
                true
            }
            Stmt::SkipBlock { id, body } => {
                if self.probed.contains(id) {
                    // Probed blocks re-execute every iteration: scan
                    // transparently. The block itself is never elided.
                    self.scan_body(body, 0, path, live, record);
                } else if self.dense {
                    // Restored from its end-of-body checkpoint on
                    // every iteration of this replay: the checkpoint
                    // cuts the slice. Singleton-class changeset names
                    // are strongly killed; the body never runs, so it
                    // contributes no uses and is left unmarked (the
                    // engine skips it block-wise).
                    if let Some(cs) = self.changesets.get(id.as_str()) {
                        for n in cs.iter() {
                            if self.singleton(n) {
                                let r = self.rep(n);
                                live.remove(&r);
                            }
                        }
                    }
                } else {
                    // Without a dense profile a missing checkpoint
                    // forces execution: everything the body mentions
                    // may be both read and written.
                    let mut names = Vec::new();
                    for s in body {
                        collect_stmt_names(s, &mut names);
                    }
                    for n in names {
                        let r = self.rep(&n);
                        live.insert(r);
                    }
                }
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::instrument;
    use flor_lang::{parse, print_program, prune_program};

    fn plan_for(src: &str, probed: &[&str], dense: bool) -> (SlicePlan, flor_lang::Program) {
        let prog = parse(src).expect("parse");
        let report = instrument(&prog);
        let probed: HashSet<String> = probed.iter().map(|s| s.to_string()).collect();
        let plan = slice_program(&report.program, &probed, &report.blocks, dense);
        (plan, report.program)
    }

    fn pruned_src(plan: &SlicePlan, prog: &flor_lang::Program) -> String {
        print_program(&prune_program(prog, &plan.dead))
    }

    const SPARSE_SRC: &str = "import flor\n\
        data = synth_data(n=32)\n\
        net = mlp(input=8)\n\
        optimizer = sgd(net)\n\
        acc = 0\n\
        for epoch in flor.partition(range(4)):\n\
        \x20   waste = busy(3)\n\
        \x20   also_dead = waste\n\
        \x20   acc = acc + epoch\n\
        \x20   log(\"acc\", acc)\n\
        log(\"final\", acc)\n";

    #[test]
    fn dead_strand_is_elided_live_chain_kept() {
        let (plan, prog) = plan_for(SPARSE_SRC, &[], true);
        assert!(plan.fallback.is_none(), "{:?}", plan.fallback);
        assert!(plan.is_active());
        assert_eq!(plan.elided_stmts, 2, "waste + also_dead");
        let out = pruned_src(&plan, &prog);
        assert!(!out.contains("waste"), "{out}");
        assert!(out.contains("acc = acc + epoch"), "{out}");
        assert!(plan.live_permille() < 1000);
    }

    #[test]
    fn loop_carried_dependency_keeps_producer_live() {
        // `prev` is consumed one iteration after it is produced; a
        // non-fixpoint scan would elide `prev = x`.
        let src = "import flor\n\
            prev = 0\n\
            x = 1\n\
            for epoch in flor.partition(range(4)):\n\
            \x20   log(\"delta\", x - prev)\n\
            \x20   prev = x\n\
            \x20   x = x + 1\n";
        let (plan, prog) = plan_for(src, &[], true);
        assert!(plan.fallback.is_none(), "{:?}", plan.fallback);
        let out = pruned_src(&plan, &prog);
        assert!(
            out.contains("prev = x"),
            "loop-carried producer kept: {out}"
        );
        assert!(out.contains("x = x + 1"), "{out}");
    }

    #[test]
    fn checkpoint_cut_elides_pre_block_producer() {
        // `avg` is strongly killed by the unprobed dense block's
        // restore, so `avg.reset()` before it is dead — the checkpoint
        // supersedes it.
        let src = "import flor\n\
            data = synth_data(n=32)\n\
            net = mlp(input=8)\n\
            avg = meter()\n\
            for epoch in flor.partition(range(4)):\n\
            \x20   avg.reset()\n\
            \x20   for step in range(3):\n\
            \x20       loss = net.train_step(data, step)\n\
            \x20       avg.update(loss)\n\
            \x20   log(\"loss\", avg.mean())\n";
        let (plan, prog) = plan_for(src, &[], true);
        assert!(plan.fallback.is_none(), "{:?}", plan.fallback);
        let out = pruned_src(&plan, &prog);
        assert!(
            !out.contains("avg.reset"),
            "restore supersedes reset: {out}"
        );
        assert!(out.contains("avg.mean"), "{out}");

        // Sparse profile: the block may execute, so nothing is cut.
        let (plan, prog) = plan_for(src, &[], false);
        let out = pruned_src(&plan, &prog);
        assert!(
            out.contains("avg.reset"),
            "no cut without dense checkpoints: {out}"
        );
    }

    #[test]
    fn skipblock_boundary_dep_survives_probe() {
        // The probed block reads `scale`, produced before the block in
        // the same iteration — the producer must stay live.
        let src = "import flor\n\
            data = synth_data(n=32)\n\
            net = mlp(input=8)\n\
            for epoch in flor.partition(range(4)):\n\
            \x20   scale = epoch * 2\n\
            \x20   unrelated = busy(2)\n\
            \x20   for step in range(3):\n\
            \x20       loss = net.train_step(data, step)\n\
            \x20       log(\"scaled\", loss * scale)\n\
            \x20   log(\"epoch\", epoch)\n";
        let (plan, prog) = plan_for(src, &["sb_0"], true);
        assert!(plan.fallback.is_none(), "{:?}", plan.fallback);
        let out = pruned_src(&plan, &prog);
        assert!(out.contains("scale = epoch * 2"), "{out}");
        assert!(!out.contains("unrelated"), "{out}");
    }

    #[test]
    fn aliased_names_are_not_strongly_killed() {
        // `twin = net` aliases; a dense block restoring `net` must not
        // kill the class (twin still points at the pre-restore object).
        let src = "import flor\n\
            data = synth_data(n=32)\n\
            net = mlp(input=8)\n\
            for epoch in flor.partition(range(4)):\n\
            \x20   twin = net\n\
            \x20   twin.zero_grad()\n\
            \x20   for step in range(3):\n\
            \x20       loss = net.train_step(data, step)\n\
            \x20   log(\"epoch\", epoch)\n\
            log(\"probe\", twin.grad_norm())\n";
        let (plan, prog) = plan_for(src, &[], true);
        assert!(plan.fallback.is_none(), "{:?}", plan.fallback);
        let out = pruned_src(&plan, &prog);
        assert!(out.contains("twin.zero_grad"), "alias mutation kept: {out}");
    }

    #[test]
    fn computed_receiver_falls_back() {
        let src = "import flor\n\
            nets = [mlp(input=8)]\n\
            for epoch in flor.partition(range(4)):\n\
            \x20   w = busy(1)\n\
            \x20   nets[0].zero_grad()\n\
            \x20   x = nets[0].grad_norm()[0]\n\
            \x20   log(\"e\", epoch)\n";
        // `nets[0].grad_norm()[0]` subscripts a call result: no root.
        let prog = parse(src).expect("parse");
        let report = instrument(&prog);
        let plan = slice_program(&report.program, &HashSet::new(), &report.blocks, true);
        assert!(plan.fallback.is_some());
        assert!(plan.dead.is_empty());
        assert_eq!(plan.live_permille(), 1000);
    }

    #[test]
    fn bare_unknown_call_falls_back() {
        let src = "import flor\n\
            for epoch in flor.partition(range(4)):\n\
            \x20   mystery(epoch)\n\
            \x20   log(\"e\", epoch)\n";
        let (plan, _) = plan_for(src, &[], true);
        assert!(plan.fallback.is_some(), "rule-5 bare call refuses slicing");
    }

    #[test]
    fn constructors_are_never_elided() {
        let src = "import flor\n\
            for epoch in flor.partition(range(4)):\n\
            \x20   scratch = meter()\n\
            \x20   w = busy(1)\n\
            \x20   log(\"e\", epoch)\n";
        let (plan, prog) = plan_for(src, &[], true);
        assert!(plan.fallback.is_none());
        let out = pruned_src(&plan, &prog);
        assert!(out.contains("meter()"), "seed counter discipline: {out}");
        assert!(!out.contains("busy(1)"), "{out}");
    }

    #[test]
    fn no_main_loop_is_a_fallback() {
        let (plan, _) = plan_for("x = 1\nlog(\"x\", x)\n", &[], true);
        assert!(plan.fallback.is_some());
    }

    fn carried(src: &str) -> Option<String> {
        let prog = parse(src).expect("parse");
        let report = instrument(&prog);
        outer_carried_state(&report.program, &report.blocks)
    }

    #[test]
    fn read_before_write_accumulator_is_outer_carried() {
        // `carry` lives in no changeset and is read before its outer
        // write — the pattern that made rewound backward steals
        // diverge.
        let src = "import flor\n\
            carry = 0\n\
            for epoch in flor.partition(range(6)):\n\
            \x20   boost = epoch + 1\n\
            \x20   carry = carry + boost\n\
            \x20   log(\"c\", carry)\n";
        assert_eq!(carried(src).as_deref(), Some("carry"));
    }

    #[test]
    fn write_before_read_and_changeset_repairs_are_not_carried() {
        // `units` is definitely rewritten before any read (the
        // conditional bump reads it only after `units = 1`), and `avg`
        // is repaired every iteration by the skipblock's restore — the
        // ML-fixture shape must keep backward steals enabled.
        let src = "import flor\n\
            data = synth_data(n=32)\n\
            net = mlp(input=8)\n\
            avg = meter()\n\
            for epoch in flor.partition(range(8)):\n\
            \x20   units = 1\n\
            \x20   if epoch > 4:\n\
            \x20       units = 8\n\
            \x20   avg.reset()\n\
            \x20   for step in range(3):\n\
            \x20       w = busy(units)\n\
            \x20       loss = net.train_step(data, step)\n\
            \x20       avg.update(loss)\n\
            \x20   log(\"loss\", avg.mean())\n";
        assert_eq!(carried(src), None);
    }

    #[test]
    fn conditional_first_write_is_carried() {
        // The only write before the read sits under an `if`, so on the
        // other branch the previous iteration's value is read.
        let src = "import flor\n\
            lr = 10\n\
            for epoch in flor.partition(range(6)):\n\
            \x20   if epoch > 2:\n\
            \x20       lr = lr - 1\n\
            \x20   log(\"lr\", lr)\n";
        assert_eq!(carried(src).as_deref(), Some("lr"));
    }

    #[test]
    fn outer_method_mutation_without_restore_is_carried() {
        // `sched.step()` mutates outer state that no skipblock
        // changeset repairs (there is no skipblock at all).
        let src = "import flor\n\
            net = mlp(input=8)\n\
            optimizer = sgd(net)\n\
            sched = step_lr(optimizer)\n\
            for epoch in flor.partition(range(6)):\n\
            \x20   sched.step()\n\
            \x20   log(\"e\", epoch)\n";
        assert_eq!(carried(src).as_deref(), Some("sched"));
    }
}
