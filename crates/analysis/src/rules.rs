//! The six side-effect rules of the paper's Table 1.
//!
//! | Rule | Pattern | ΔChangeset |
//! |---|---|---|
//! | 0 | `v1..vn = u1..um` ∧ ∃ vi ∈ changeset | **No Estimate** |
//! | 1 | `v1..vn = obj.method(a1..am)` | `{obj, v1..vn}` |
//! | 2 | `v1..vn = func(a1..am)` | `{v1..vn}` |
//! | 3 | `v1..vn = u1..um` | `{v1..vn}` |
//! | 4 | `obj.method(a1..am)` | `{obj}` |
//! | 5 | `func(a1..am)` | **No Estimate** |
//!
//! Rules are sorted in descending precedence; at most one rule activates per
//! statement. "No Estimate" means the analysis cannot bound the statement's
//! side effects, so the enclosing loop is refused (left uninstrumented, to be
//! fully re-executed on replay).
//!
//! Two deliberate interpretation notes (documented in DESIGN.md):
//! - assignment targets may be attribute/subscript chains (`net.lr = x`);
//!   the *root name* of the chain is what enters the changeset, since Flor
//!   checkpoints whole objects;
//! - `log(...)` / `flor.log(...)` statements are Flor's own side-effect-free
//!   logging primitive and are exempt from rule 5 (they write to the log
//!   stream, which Flor captures separately — they never touch program
//!   state). Without this exemption every loop containing a pre-existing log
//!   statement would be refused.

use flor_lang::ast::{Expr, Stmt};
use std::collections::BTreeSet;

/// Which of Table 1's rules matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleId {
    /// Assignment clobbering a changed variable → refuse.
    Rule0,
    /// Assignment from a method call.
    Rule1,
    /// Assignment from a function call.
    Rule2,
    /// Plain assignment.
    Rule3,
    /// Bare method call.
    Rule4,
    /// Bare function call → refuse.
    Rule5,
}

impl RuleId {
    /// Table row number.
    pub fn number(self) -> u8 {
        match self {
            RuleId::Rule0 => 0,
            RuleId::Rule1 => 1,
            RuleId::Rule2 => 2,
            RuleId::Rule3 => 3,
            RuleId::Rule4 => 4,
            RuleId::Rule5 => 5,
        }
    }
}

/// The effect of matching one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleApplication {
    /// Names to add to the changeset.
    Delta {
        /// Which rule produced the delta.
        rule: RuleId,
        /// Root names added to the changeset.
        names: Vec<String>,
    },
    /// The analysis cannot bound this statement's effects.
    NoEstimate {
        /// Which rule (0 or 5) refused.
        rule: RuleId,
        /// Explanation for diagnostics.
        reason: String,
    },
    /// Statement activates no rule (control flow, imports, literals, log
    /// statements).
    NoMatch,
}

/// Root names of the assignment targets (`net.lr` → `net`).
fn target_roots(targets: &[Expr]) -> Option<Vec<String>> {
    let mut roots = Vec::with_capacity(targets.len());
    for t in targets {
        roots.push(t.root_name()?.to_string());
    }
    Some(roots)
}

/// Matches a single statement against Table 1, given the changeset
/// accumulated so far (needed by rule 0).
pub fn match_rule(stmt: &Stmt, changeset: &BTreeSet<String>) -> RuleApplication {
    // Flor's own logging primitive is exempt (see module docs).
    if stmt.is_log_stmt() {
        return RuleApplication::NoMatch;
    }
    match stmt {
        Stmt::Assign { targets, value } => {
            let roots = match target_roots(targets) {
                Some(r) => r,
                None => {
                    return RuleApplication::NoEstimate {
                        rule: RuleId::Rule0,
                        reason: "assignment target is not a name/attribute chain".into(),
                    }
                }
            };
            // Rule 0 (highest precedence): clobbering a changed variable.
            if let Some(hit) = roots.iter().find(|r| changeset.contains(*r)) {
                return RuleApplication::NoEstimate {
                    rule: RuleId::Rule0,
                    reason: format!("assignment to already-changed variable {hit:?}"),
                };
            }
            match value {
                Expr::Call { func, .. } => match func.as_ref() {
                    // Rule 1: v1..vn = obj.method(...)
                    Expr::Attr { obj, .. } => {
                        let mut names = roots;
                        if let Some(root) = obj.root_name() {
                            names.insert(0, root.to_string());
                        }
                        RuleApplication::Delta {
                            rule: RuleId::Rule1,
                            names,
                        }
                    }
                    // Rule 2: v1..vn = func(...)
                    _ => RuleApplication::Delta {
                        rule: RuleId::Rule2,
                        names: roots,
                    },
                },
                // Rule 3: v1..vn = u1..um
                _ => RuleApplication::Delta {
                    rule: RuleId::Rule3,
                    names: roots,
                },
            }
        }
        Stmt::ExprStmt { expr } => {
            // Bare non-call expressions have no effects.
            let Expr::Call { func, .. } = expr else {
                return RuleApplication::NoMatch;
            };
            match &**func {
                // Rule 4: obj.method(...)
                Expr::Attr { obj, .. } => {
                    if let Some(root) = obj.root_name() {
                        RuleApplication::Delta {
                            rule: RuleId::Rule4,
                            names: vec![root.to_string()],
                        }
                    } else {
                        RuleApplication::NoEstimate {
                            rule: RuleId::Rule5,
                            reason: "method call on non-name receiver".into(),
                        }
                    }
                }
                // Rule 5: func(...) — side effects beyond scope.
                _ => RuleApplication::NoEstimate {
                    rule: RuleId::Rule5,
                    reason: format!(
                        "call to function {:?} with unknowable side effects",
                        flor_lang::printer::print_expr(func)
                    ),
                },
            }
        }
        // Control flow, imports, pass: no rule (bodies are walked by the
        // changeset builder).
        _ => RuleApplication::NoMatch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flor_lang::parse;

    fn stmt(src: &str) -> Stmt {
        parse(src).unwrap().body.remove(0)
    }

    fn empty() -> BTreeSet<String> {
        BTreeSet::new()
    }

    fn with(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn rule1_assignment_from_method_call() {
        let app = match_rule(&stmt("loss, preds = net.eval(batch)\n"), &empty());
        assert_eq!(
            app,
            RuleApplication::Delta {
                rule: RuleId::Rule1,
                names: vec!["net".into(), "loss".into(), "preds".into()],
            }
        );
    }

    #[test]
    fn rule2_assignment_from_function_call() {
        let app = match_rule(&stmt("preds = softmax(logits)\n"), &empty());
        assert_eq!(
            app,
            RuleApplication::Delta {
                rule: RuleId::Rule2,
                names: vec!["preds".into()],
            }
        );
    }

    #[test]
    fn rule3_plain_assignment() {
        let app = match_rule(&stmt("lr = 0.1 * decay\n"), &empty());
        assert_eq!(
            app,
            RuleApplication::Delta {
                rule: RuleId::Rule3,
                names: vec!["lr".into()],
            }
        );
    }

    #[test]
    fn rule4_bare_method_call() {
        let app = match_rule(&stmt("optimizer.step()\n"), &empty());
        assert_eq!(
            app,
            RuleApplication::Delta {
                rule: RuleId::Rule4,
                names: vec!["optimizer".into()],
            }
        );
    }

    #[test]
    fn rule5_bare_function_call_refuses() {
        let app = match_rule(&stmt("evaluate(net, data)\n"), &empty());
        assert!(matches!(
            app,
            RuleApplication::NoEstimate {
                rule: RuleId::Rule5,
                ..
            }
        ));
    }

    #[test]
    fn rule0_takes_precedence_over_rule3() {
        let app = match_rule(&stmt("x = x + 1\n"), &with(&["x"]));
        assert!(matches!(
            app,
            RuleApplication::NoEstimate {
                rule: RuleId::Rule0,
                ..
            }
        ));
    }

    #[test]
    fn rule0_takes_precedence_over_rule1() {
        // Even a method-call assignment is refused if it clobbers a changed
        // variable — rule 0 is highest precedence.
        let app = match_rule(&stmt("opt = factory.make(opt)\n"), &with(&["opt"]));
        assert!(matches!(
            app,
            RuleApplication::NoEstimate {
                rule: RuleId::Rule0,
                ..
            }
        ));
    }

    #[test]
    fn assignment_not_in_changeset_is_fine() {
        let app = match_rule(&stmt("y = x + 1\n"), &with(&["x"]));
        assert!(matches!(
            app,
            RuleApplication::Delta {
                rule: RuleId::Rule3,
                ..
            }
        ));
    }

    #[test]
    fn attr_target_contributes_root() {
        let app = match_rule(&stmt("net.lr = 0.5\n"), &empty());
        assert_eq!(
            app,
            RuleApplication::Delta {
                rule: RuleId::Rule3,
                names: vec!["net".into()],
            }
        );
    }

    #[test]
    fn attr_target_already_changed_triggers_rule0() {
        let app = match_rule(&stmt("net.lr = 0.5\n"), &with(&["net"]));
        assert!(matches!(
            app,
            RuleApplication::NoEstimate {
                rule: RuleId::Rule0,
                ..
            }
        ));
    }

    #[test]
    fn chained_method_receiver_uses_root() {
        let app = match_rule(&stmt("net.layers[0].reset()\n"), &empty());
        assert_eq!(
            app,
            RuleApplication::Delta {
                rule: RuleId::Rule4,
                names: vec!["net".into()],
            }
        );
    }

    #[test]
    fn log_statement_is_exempt() {
        assert_eq!(
            match_rule(&stmt("log(\"loss\", loss)\n"), &empty()),
            RuleApplication::NoMatch
        );
        assert_eq!(
            match_rule(&stmt("flor.log(\"loss\", loss)\n"), &empty()),
            RuleApplication::NoMatch
        );
    }

    #[test]
    fn control_flow_no_match() {
        assert_eq!(
            match_rule(&stmt("import flor\n"), &empty()),
            RuleApplication::NoMatch
        );
        assert_eq!(
            match_rule(&stmt("pass\n"), &empty()),
            RuleApplication::NoMatch
        );
        assert_eq!(
            match_rule(&stmt("for i in r:\n    pass\n"), &empty()),
            RuleApplication::NoMatch
        );
    }

    #[test]
    fn bare_literal_no_match() {
        assert_eq!(
            match_rule(&stmt("42\n"), &empty()),
            RuleApplication::NoMatch
        );
    }
}
