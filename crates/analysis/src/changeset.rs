//! Per-loop changeset construction (paper §5.2.1, step 1).
//!
//! Walks a loop's body — including the loop header and nested blocks — in
//! program order, applying Table 1's rules and accumulating the changeset.
//! Any `NoEstimate` outcome refuses the whole loop.

use crate::rules::{match_rule, RuleApplication, RuleId};
use flor_lang::ast::{Expr, Stmt};
use flor_lang::printer::print_stmt_at;
use std::collections::BTreeSet;

/// Why a loop was refused instrumentation.
#[derive(Debug, Clone, PartialEq)]
pub struct RefusalReason {
    /// The rule that refused (0 or 5).
    pub rule: RuleId,
    /// The offending statement (pretty-printed).
    pub stmt: String,
    /// Explanation.
    pub reason: String,
}

/// Outcome of analyzing one loop.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopAnalysis {
    /// Changeset after rule application (before loop-scope filtering),
    /// in first-added order.
    pub raw_changeset: Vec<String>,
    /// Names the loop *defines* (plain-name assignment targets and loop
    /// variables) — input to the scope filter.
    pub defined_names: BTreeSet<String>,
    /// Per-statement rule trace `(pretty stmt, rule number)` for statements
    /// that activated a rule — mirrors Figure 6's line-by-line comments.
    pub rule_trace: Vec<(String, u8)>,
    /// If set, the loop is refused and must be left uninstrumented.
    pub refusal: Option<RefusalReason>,
}

impl LoopAnalysis {
    /// True if the loop may be instrumented.
    pub fn ok(&self) -> bool {
        self.refusal.is_none()
    }
}

/// Analyzes a `for` loop: header plus body, recursively.
///
/// The loop header `for v in <iter>:` is treated as an implicit assignment
/// `v = <iter-element>` each iteration:
/// - `for b in loader.epoch():` matches rule 1 (`{loader, b}`), correctly
///   capturing that iterating the loader advances its RNG;
/// - `for e in range(n):` matches rule 2 (`{e}`);
/// - `for x in xs:` matches rule 3 (`{x}`).
///
/// # Panics
/// Panics if `stmt` is not a `For` loop.
pub fn analyze_loop(stmt: &Stmt) -> LoopAnalysis {
    let (var, iter, body) = match stmt {
        Stmt::For { var, iter, body } => (var, iter, body),
        other => panic!("analyze_loop on non-loop statement: {other:?}"),
    };
    let mut analysis = LoopAnalysis {
        raw_changeset: Vec::new(),
        defined_names: BTreeSet::new(),
        rule_trace: Vec::new(),
        refusal: None,
    };

    // Header: synthesize the implicit per-iteration assignment.
    let header = Stmt::Assign {
        targets: vec![Expr::Name(var.clone())],
        value: iter.clone(),
    };
    analysis.defined_names.insert(var.clone());
    apply(&header, format!("for {var} in …"), &mut analysis);
    if analysis.refusal.is_some() {
        return analysis;
    }

    walk(body, &mut analysis);
    analysis
}

fn walk(body: &[Stmt], analysis: &mut LoopAnalysis) {
    for stmt in body {
        if analysis.refusal.is_some() {
            return;
        }
        match stmt {
            Stmt::For { var, iter, body } => {
                // Nested loop: its header and body are side effects of the
                // enclosing loop too.
                analysis.defined_names.insert(var.clone());
                let header = Stmt::Assign {
                    targets: vec![Expr::Name(var.clone())],
                    value: iter.clone(),
                };
                apply(&header, format!("for {var} in …"), analysis);
                if analysis.refusal.is_some() {
                    return;
                }
                walk(body, analysis);
            }
            Stmt::If { then, orelse, .. } => {
                walk(then, analysis);
                walk(orelse, analysis);
            }
            Stmt::SkipBlock { body, .. } => walk(body, analysis),
            simple => {
                if let Stmt::Assign { targets, .. } = simple {
                    for t in targets {
                        if let Expr::Name(n) = t {
                            analysis.defined_names.insert(n.clone());
                        }
                    }
                }
                let text = print_stmt_at(simple, 0).trim_end().to_string();
                apply(simple, text, analysis);
            }
        }
    }
}

fn apply(stmt: &Stmt, text: String, analysis: &mut LoopAnalysis) {
    let changeset: BTreeSet<String> = analysis.raw_changeset.iter().cloned().collect();
    match match_rule(stmt, &changeset) {
        RuleApplication::Delta { rule, names } => {
            analysis.rule_trace.push((text, rule.number()));
            for n in names {
                if !analysis.raw_changeset.contains(&n) {
                    analysis.raw_changeset.push(n);
                }
            }
        }
        RuleApplication::NoEstimate { rule, reason } => {
            analysis.rule_trace.push((text.clone(), rule.number()));
            analysis.refusal = Some(RefusalReason {
                rule,
                stmt: text,
                reason,
            });
        }
        RuleApplication::NoMatch => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flor_lang::parse;

    fn first_loop(src: &str) -> Stmt {
        parse(src)
            .unwrap()
            .body
            .into_iter()
            .find(|s| matches!(s, Stmt::For { .. }))
            .expect("no loop in source")
    }

    #[test]
    fn training_loop_changeset() {
        // A Figure-6-style nested training loop.
        let src = "\
for batch in loader.epoch():
    optimizer.zero_grad()
    preds = net.forward(batch)
    loss = criterion.eval(preds, batch)
    avg_loss = avg_loss * 0.9 + loss * 0.1
    criterion.backward(net)
    optimizer.step()
";
        let a = analyze_loop(&first_loop(src));
        assert!(a.ok(), "refused: {:?}", a.refusal);
        assert_eq!(
            a.raw_changeset,
            vec![
                "loader",
                "batch",
                "optimizer",
                "net",
                "preds",
                "criterion",
                "loss",
                "avg_loss"
            ]
        );
        // Rule trace numbers per statement.
        let rules: Vec<u8> = a.rule_trace.iter().map(|(_, r)| *r).collect();
        assert_eq!(rules, vec![1, 4, 1, 1, 3, 4, 4]);
    }

    #[test]
    fn rule5_refuses_loop() {
        let src = "\
for epoch in range(10):
    net.train_epoch(loader)
    evaluate(net, test_data)
";
        let a = analyze_loop(&first_loop(src));
        assert!(!a.ok());
        let refusal = a.refusal.unwrap();
        assert_eq!(refusal.rule, RuleId::Rule5);
        assert!(refusal.stmt.contains("evaluate"));
    }

    #[test]
    fn rule0_refuses_loop() {
        let src = "\
for i in range(10):
    acc = accumulate(x)
    acc = acc
";
        let a = analyze_loop(&first_loop(src));
        assert!(!a.ok());
        assert_eq!(a.refusal.unwrap().rule, RuleId::Rule0);
    }

    #[test]
    fn nested_loop_effects_propagate_to_outer() {
        let src = "\
for epoch in range(5):
    for batch in loader.epoch():
        optimizer.step()
    scheduler.step()
";
        let a = analyze_loop(&first_loop(src));
        assert!(a.ok());
        assert!(a.raw_changeset.contains(&"optimizer".to_string()));
        assert!(a.raw_changeset.contains(&"scheduler".to_string()));
        assert!(a.raw_changeset.contains(&"loader".to_string()));
        assert!(a.defined_names.contains("batch"));
        assert!(a.defined_names.contains("epoch"));
    }

    #[test]
    fn rule5_in_nested_loop_refuses_outer() {
        let src = "\
for epoch in range(5):
    for batch in loader.epoch():
        mystery(batch)
";
        let a = analyze_loop(&first_loop(src));
        assert!(!a.ok());
        assert_eq!(a.refusal.unwrap().rule, RuleId::Rule5);
    }

    #[test]
    fn if_branches_are_walked() {
        let src = "\
for i in range(5):
    if i > 2:
        optimizer.step()
    else:
        warmup.step()
";
        let a = analyze_loop(&first_loop(src));
        assert!(a.ok());
        assert!(a.raw_changeset.contains(&"optimizer".to_string()));
        assert!(a.raw_changeset.contains(&"warmup".to_string()));
    }

    #[test]
    fn log_statements_do_not_refuse() {
        let src = "\
for i in range(5):
    optimizer.step()
    log(\"i\", i)
    flor.log(\"lr\", optimizer.lr)
";
        let a = analyze_loop(&first_loop(src));
        assert!(a.ok(), "log statements must be exempt: {:?}", a.refusal);
    }

    #[test]
    fn range_header_is_rule2() {
        let a = analyze_loop(&first_loop("for e in range(3):\n    optimizer.step()\n"));
        assert_eq!(a.rule_trace[0].1, 2);
        assert_eq!(a.raw_changeset[0], "e");
    }

    #[test]
    fn loader_header_is_rule1() {
        let a = analyze_loop(&first_loop(
            "for b in loader.epoch():\n    optimizer.step()\n",
        ));
        assert_eq!(a.rule_trace[0].1, 1);
        assert_eq!(a.raw_changeset, vec!["loader", "b", "optimizer"]);
    }

    #[test]
    fn duplicate_names_not_repeated() {
        let src = "\
for i in range(3):
    optimizer.zero_grad()
    optimizer.step()
";
        let a = analyze_loop(&first_loop(src));
        assert_eq!(
            a.raw_changeset.iter().filter(|n| *n == "optimizer").count(),
            1
        );
    }
}
