//! Loop-scope filtering (paper §5.2.1, step 2).
//!
//! "Flor removes from the changeset any variable that is defined in the body
//! of the loop (henceforth 'loop-scoped variable'), under the assumption that
//! this variable is local to the loop and is not read after the end of the
//! loop. Loop-scoped variables are very common and can be large, so this
//! filtering step is necessary for controlling overhead on record."
//!
//! A name is loop-scoped iff it is defined (plain-name assigned, or a loop
//! variable) inside the loop body **and** was not already defined before the
//! loop in the enclosing program — FlorScript, like Python, has no block
//! scope, so "defined in the loop" only makes a variable loop-local when the
//! loop is its first definition.

use flor_lang::ast::{Expr, Stmt};
use std::collections::BTreeSet;

/// Names defined by a statement sequence, in order, stopping at (and not
/// descending into) the statement `until` points at — used to compute the
/// set of names defined *before* a given loop.
pub fn defined_before(body: &[Stmt], target: &Stmt, defined: &mut BTreeSet<String>) -> bool {
    for stmt in body {
        if std::ptr::eq(stmt, target) {
            return true;
        }
        match stmt {
            Stmt::Assign { targets, .. } => {
                for t in targets {
                    if let Expr::Name(n) = t {
                        defined.insert(n.clone());
                    }
                }
            }
            Stmt::For { var, body, .. } => {
                defined.insert(var.clone());
                if defined_before(body, target, defined) {
                    return true;
                }
            }
            Stmt::If { then, orelse, .. }
                if defined_before(then, target, defined)
                    || defined_before(orelse, target, defined) =>
            {
                return true;
            }
            Stmt::SkipBlock { body, .. } if defined_before(body, target, defined) => {
                return true;
            }
            _ => {}
        }
    }
    false
}

/// Applies the loop-scope filter: removes from `raw_changeset` every name
/// that the loop defines (`loop_defined`) unless it was already defined
/// before the loop (`pre_defined`).
pub fn filter_loop_scoped(
    raw_changeset: &[String],
    loop_defined: &BTreeSet<String>,
    pre_defined: &BTreeSet<String>,
) -> Vec<String> {
    raw_changeset
        .iter()
        .filter(|name| !loop_defined.contains(*name) || pre_defined.contains(*name))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flor_lang::parse;

    #[test]
    fn filter_drops_fresh_loop_locals() {
        let raw = vec![
            "batch".to_string(),
            "preds".to_string(),
            "optimizer".to_string(),
        ];
        let loop_defined: BTreeSet<String> =
            ["batch", "preds"].iter().map(|s| s.to_string()).collect();
        let pre_defined = BTreeSet::new();
        assert_eq!(
            filter_loop_scoped(&raw, &loop_defined, &pre_defined),
            vec!["optimizer".to_string()]
        );
    }

    #[test]
    fn filter_keeps_predefined_names() {
        // avg_loss initialized before the loop must survive the filter even
        // though the loop assigns it.
        let raw = vec!["avg_loss".to_string(), "optimizer".to_string()];
        let loop_defined: BTreeSet<String> = ["avg_loss"].iter().map(|s| s.to_string()).collect();
        let pre_defined: BTreeSet<String> = ["avg_loss"].iter().map(|s| s.to_string()).collect();
        assert_eq!(
            filter_loop_scoped(&raw, &loop_defined, &pre_defined),
            vec!["avg_loss".to_string(), "optimizer".to_string()]
        );
    }

    #[test]
    fn defined_before_walks_program_order() {
        let prog = parse(
            "\
net = resnet()
opt = sgd(net)
for e in range(3):
    opt.step()
",
        )
        .unwrap();
        let target = &prog.body[2];
        let mut defined = BTreeSet::new();
        let found = defined_before(&prog.body, target, &mut defined);
        assert!(found);
        assert!(defined.contains("net"));
        assert!(defined.contains("opt"));
        assert!(!defined.contains("e"));
    }

    #[test]
    fn defined_before_sees_outer_loop_vars_for_inner_loop() {
        let prog = parse(
            "\
for e in range(3):
    acc = 0
    for b in loader.epoch():
        opt.step()
",
        )
        .unwrap();
        // Find the inner loop.
        let inner = match &prog.body[0] {
            Stmt::For { body, .. } => &body[1],
            _ => unreachable!(),
        };
        let mut defined = BTreeSet::new();
        let found = defined_before(&prog.body, inner, &mut defined);
        assert!(found);
        assert!(defined.contains("e"), "outer loop var visible");
        assert!(
            defined.contains("acc"),
            "outer loop body assignment visible"
        );
        assert!(!defined.contains("b"));
    }

    #[test]
    fn defined_before_stops_at_target() {
        let prog = parse(
            "\
a = 1
for e in range(3):
    opt.step()
b = 2
",
        )
        .unwrap();
        let target = &prog.body[1];
        let mut defined = BTreeSet::new();
        defined_before(&prog.body, target, &mut defined);
        assert!(defined.contains("a"));
        assert!(!defined.contains("b"), "later definitions must not count");
    }
}
