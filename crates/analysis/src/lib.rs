//! # flor-analysis
//!
//! Static side-effect analysis and instrumentation for FlorScript — the
//! "lean checkpointing" front end of flor-rs, reproducing §5.2 of *Hindsight
//! Logging for Model Training* (Garcia et al., VLDB 2020).
//!
//! The pipeline, per loop in the user's program:
//!
//! 1. **Rule matching** ([`rules`]): each statement is matched against the
//!    six templates of the paper's Table 1, in descending precedence.
//!    Rule 5 (`func(args)` — arbitrary side effects) and rule 0 (assignment
//!    to an already-changed variable) force Flor to *refuse* the loop: it is
//!    left uninstrumented and will be fully re-executed on replay.
//! 2. **Changeset construction** ([`changeset`]): the per-statement deltas
//!    accumulate into the loop's changeset.
//! 3. **Loop-scope filtering** ([`scope`]): variables first defined inside
//!    the loop body are assumed dead after the loop and dropped — the step
//!    that keeps checkpoints lean ("loop-scoped variables are very common
//!    and can be large").
//! 4. **Library augmentation** ([`augment`]): at *runtime*, encoded library
//!    knowledge closes the changeset over side-effect edges the rules cannot
//!    see: a PyTorch-style optimizer updates its model; a scheduler updates
//!    its optimizer.
//! 5. **Instrumentation** ([`instrument`]): qualifying loops are wrapped in
//!    `skipblock "sb_<n>":` constructs (paper §4.2); the main loop is left
//!    unwrapped but its iterator is wrapped in `flor.partition(...)` for
//!    hindsight parallelism (paper Figure 8).
//! 6. **Slicing** ([`slice`]): at replay time, a backward slice over the
//!    instrumented program computes the dependency cone of the log
//!    statements so everything outside it can be elided from execution
//!    (checkpoint restores cut the slice at unprobed block boundaries).

#![warn(missing_docs)]

pub mod augment;
pub mod changeset;
pub mod instrument;
pub mod rules;
pub mod scope;
pub mod slice;

pub use augment::{augment_changeset, TypeOracle};
pub use changeset::{analyze_loop, LoopAnalysis, RefusalReason};
pub use instrument::{instrument, BlockPlan, InstrumentReport};
pub use rules::{match_rule, RuleApplication, RuleId};
pub use slice::{outer_carried_state, slice_program, SlicePlan};
