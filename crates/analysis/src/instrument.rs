//! Automatic instrumentation (paper §4.2, Figures 4 and 8).
//!
//! Transforms a user program in two ways:
//!
//! 1. **SkipBlock wrapping.** Every non-main loop whose side-effect analysis
//!    succeeds is enclosed in a `skipblock "sb_<n>":` construct. Refused
//!    loops (rule 0 / rule 5) are left intact — they will be fully
//!    re-executed on replay, exactly as the paper prescribes.
//! 2. **Main-loop generator wrapping.** The outermost loop's iterator is
//!    wrapped in `flor.partition(...)` (the Flor generator of Figure 8/9),
//!    which is the identity during record and partitions iterations across
//!    parallel workers during replay. The main loop is never wrapped in a
//!    SkipBlock: its body must remain executable for worker initialization.
//!
//! Instrumentation is deterministic: identical sources instrument to
//! identical programs with identical block ids, which is what lets the
//! replay-time source diff align record and replay versions.

use crate::changeset::{analyze_loop, RefusalReason};
use crate::scope::filter_loop_scoped;
use flor_lang::ast::{Arg, Expr, Program, Stmt};
use flor_lang::printer::print_expr;
use std::collections::BTreeSet;

/// Plan for one SkipBlock: its id and statically determined changeset.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockPlan {
    /// Stable block id (`sb_0`, `sb_1`, … in traversal order).
    pub id: String,
    /// Changeset after loop-scope filtering (runtime augmentation still
    /// applies on top of this, per execution).
    pub static_changeset: Vec<String>,
    /// Rule trace: `(statement, rule number)` for each rule activation.
    pub rule_trace: Vec<(String, u8)>,
}

/// A loop the analysis refused to instrument.
#[derive(Debug, Clone, PartialEq)]
pub struct RefusedLoop {
    /// Pretty-printed loop header.
    pub header: String,
    /// Why it was refused.
    pub reason: RefusalReason,
}

/// Information about the detected main loop.
#[derive(Debug, Clone, PartialEq)]
pub struct MainLoopInfo {
    /// Loop variable name.
    pub var: String,
    /// Pretty-printed iterator expression (pre-wrapping).
    pub iter: String,
}

/// Result of instrumenting a program.
#[derive(Debug, Clone, PartialEq)]
pub struct InstrumentReport {
    /// The instrumented program.
    pub program: Program,
    /// One plan per SkipBlock, in id order.
    pub blocks: Vec<BlockPlan>,
    /// Loops left uninstrumented, with reasons.
    pub refused: Vec<RefusedLoop>,
    /// The main loop, if the program has a top-level loop.
    pub main_loop: Option<MainLoopInfo>,
    /// Whether the program opts in with `import flor`.
    pub has_flor_import: bool,
}

/// Instruments a user program. See module docs.
pub fn instrument(user: &Program) -> InstrumentReport {
    let mut ctx = Ctx {
        blocks: Vec::new(),
        refused: Vec::new(),
        next_id: 0,
        defined: BTreeSet::new(),
    };
    let has_flor_import = user
        .body
        .iter()
        .any(|s| matches!(s, Stmt::Import { module } if module == "flor"));

    let mut main_loop = None;
    let mut body = Vec::with_capacity(user.body.len());
    let mut seen_main = false;
    for stmt in &user.body {
        match stmt {
            Stmt::For {
                var,
                iter,
                body: loop_body,
            } if !seen_main => {
                // The first top-level loop is the main loop: wrap its
                // iterator in the Flor generator, instrument its body.
                seen_main = true;
                main_loop = Some(MainLoopInfo {
                    var: var.clone(),
                    iter: print_expr(iter),
                });
                // The main loop is never SkipBlocked (its body must stay
                // executable for parallel-replay worker initialization), but
                // we still run the analysis so refusals are reported, as in
                // the paper's Figure 6 ("Flor would refuse to instrument the
                // main loop due to line 21").
                if let Some(reason) = analyze_loop(stmt).refusal {
                    ctx.refused.push(RefusedLoop {
                        header: format!("for {var} in {}:", print_expr(iter)),
                        reason,
                    });
                }
                ctx.defined.insert(var.clone());
                let new_body = ctx.walk_body(loop_body);
                let wrapped_iter = Expr::call(
                    Expr::attr(Expr::name("flor"), "partition"),
                    vec![Arg::pos(iter.clone())],
                );
                body.push(Stmt::For {
                    var: var.clone(),
                    iter: wrapped_iter,
                    body: new_body,
                });
            }
            other => {
                body.push(ctx.walk_stmt(other));
            }
        }
    }

    InstrumentReport {
        program: Program::new(body),
        blocks: ctx.blocks,
        refused: ctx.refused,
        main_loop,
        has_flor_import,
    }
}

/// Removes instrumentation: unwraps SkipBlocks and `flor.partition` calls.
/// `strip(instrument(p).program) == p` for programs without pre-existing
/// instrumentation.
pub fn strip_instrumentation(prog: &Program) -> Program {
    fn strip_body(body: &[Stmt]) -> Vec<Stmt> {
        let mut out = Vec::with_capacity(body.len());
        for stmt in body {
            match stmt {
                Stmt::SkipBlock { body, .. } => out.extend(strip_body(body)),
                Stmt::For { var, iter, body } => {
                    let iter = match iter {
                        Expr::Call { func, args }
                            if matches!(
                                func.as_ref(),
                                Expr::Attr { obj, name }
                                    if name == "partition" && obj.as_name() == Some("flor")
                            ) && args.len() == 1 =>
                        {
                            args[0].value.clone()
                        }
                        other => other.clone(),
                    };
                    out.push(Stmt::For {
                        var: var.clone(),
                        iter,
                        body: strip_body(body),
                    });
                }
                Stmt::If { cond, then, orelse } => out.push(Stmt::If {
                    cond: cond.clone(),
                    then: strip_body(then),
                    orelse: strip_body(orelse),
                }),
                other => out.push(other.clone()),
            }
        }
        out
    }
    Program::new(strip_body(&prog.body))
}

struct Ctx {
    blocks: Vec<BlockPlan>,
    refused: Vec<RefusedLoop>,
    next_id: usize,
    /// Names defined before the current program point.
    defined: BTreeSet<String>,
}

impl Ctx {
    fn walk_body(&mut self, body: &[Stmt]) -> Vec<Stmt> {
        body.iter().map(|s| self.walk_stmt(s)).collect()
    }

    fn walk_stmt(&mut self, stmt: &Stmt) -> Stmt {
        match stmt {
            Stmt::For { var, iter, body } => {
                // Candidate for SkipBlock wrapping: analyze before mutating
                // the defined set with the loop's own names.
                let analysis = analyze_loop(stmt);
                let pre_defined = self.defined.clone();
                self.defined.insert(var.clone());
                let new_body = self.walk_body(body);
                let new_loop = Stmt::For {
                    var: var.clone(),
                    iter: iter.clone(),
                    body: new_body,
                };
                match analysis.refusal {
                    None => {
                        let changeset = filter_loop_scoped(
                            &analysis.raw_changeset,
                            &analysis.defined_names,
                            &pre_defined,
                        );
                        let id = format!("sb_{}", self.next_id);
                        self.next_id += 1;
                        self.blocks.push(BlockPlan {
                            id: id.clone(),
                            static_changeset: changeset,
                            rule_trace: analysis.rule_trace,
                        });
                        Stmt::SkipBlock {
                            id,
                            body: vec![new_loop],
                        }
                    }
                    Some(reason) => {
                        self.refused.push(RefusedLoop {
                            header: format!("for {var} in {}:", print_expr(iter)),
                            reason,
                        });
                        new_loop
                    }
                }
            }
            Stmt::If { cond, then, orelse } => Stmt::If {
                cond: cond.clone(),
                then: self.walk_body(then),
                orelse: self.walk_body(orelse),
            },
            Stmt::SkipBlock { id, body } => {
                // Pre-existing instrumentation: leave untouched.
                Stmt::SkipBlock {
                    id: id.clone(),
                    body: body.to_vec(),
                }
            }
            Stmt::Assign { targets, value } => {
                for t in targets {
                    if let Expr::Name(n) = t {
                        self.defined.insert(n.clone());
                    }
                }
                Stmt::Assign {
                    targets: targets.clone(),
                    value: value.clone(),
                }
            }
            other => other.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flor_lang::parse;
    use flor_lang::printer::print_program;

    /// A Figure-2-shaped training script.
    const FIG2: &str = "\
import flor
net = resnet(classes=100)
optimizer = sgd(net, lr=0.1)
loader = dataloader(cifar, batch_size=32)
for epoch in range(200):
    for batch in loader.epoch():
        optimizer.zero_grad()
        loss = net.train_step(batch)
        optimizer.step()
    evaluate(net, test_data)
    log(\"epoch\", epoch)
";

    #[test]
    fn figure4_shape() {
        // After instrumentation: main loop iterator wrapped in
        // flor.partition, nested training loop inside a SkipBlock, main loop
        // NOT wrapped (it contains a rule-5 call).
        let report = instrument(&parse(FIG2).unwrap());
        assert!(report.has_flor_import);
        assert_eq!(report.blocks.len(), 1);
        assert_eq!(report.blocks[0].id, "sb_0");
        assert_eq!(report.main_loop.as_ref().unwrap().var, "epoch");

        let printed = print_program(&report.program);
        assert!(
            printed.contains("for epoch in flor.partition(range(200)):"),
            "{printed}"
        );
        assert!(printed.contains("skipblock \"sb_0\":"), "{printed}");
        // The eval call is outside any skipblock.
        let sb_pos = printed.find("skipblock").unwrap();
        let eval_pos = printed.find("evaluate").unwrap();
        assert!(eval_pos > sb_pos);
    }

    #[test]
    fn figure6_walkthrough() {
        // Step-by-step reproduction of the paper's Figure 6 analysis on the
        // nested training loop: raw changeset → loop-scope filter. (Runtime
        // augmentation — adding `net` via the optimizer — is exercised in
        // flor-core where type information exists.)
        let report = instrument(&parse(FIG2).unwrap());
        let plan = &report.blocks[0];
        // Raw changeset in rule order: loader+batch (rule 1 header),
        // optimizer (rule 4), net+loss (rule 1), optimizer again (dedup).
        // Loop-scoped {batch, loss} are dropped by the scope filter.
        assert_eq!(plan.static_changeset, vec!["loader", "optimizer", "net"]);
        // Rule trace matches the statement forms.
        let rules: Vec<u8> = plan.rule_trace.iter().map(|(_, r)| *r).collect();
        assert_eq!(rules, vec![1, 4, 1, 4]); // header, zero_grad, train_step, step
                                             // The main loop is refused because of the rule-5 evaluate() call.
        assert_eq!(report.refused.len(), 1);
        assert!(report.refused[0].reason.reason.contains("evaluate"));
    }

    #[test]
    fn main_loop_never_skipblocked() {
        // Even a main loop that passes analysis is not wrapped.
        let src = "\
import flor
for epoch in range(10):
    optimizer.step()
";
        let report = instrument(&parse(src).unwrap());
        assert!(report.blocks.is_empty());
        assert!(report.main_loop.is_some());
        let printed = print_program(&report.program);
        assert!(!printed.contains("skipblock"));
        assert!(printed.contains("flor.partition"));
    }

    #[test]
    fn refused_inner_loop_left_intact() {
        let src = "\
import flor
for epoch in range(10):
    for batch in loader.epoch():
        mystery(batch)
";
        let report = instrument(&parse(src).unwrap());
        assert!(report.blocks.is_empty());
        // Both the main loop (effects propagate outward) and the inner loop
        // are refused.
        assert_eq!(report.refused.len(), 2);
        assert!(report
            .refused
            .iter()
            .all(|r| r.reason.reason.contains("mystery")));
        let printed = print_program(&report.program);
        assert!(!printed.contains("skipblock"));
    }

    #[test]
    fn multiple_inner_loops_get_distinct_ids() {
        let src = "\
import flor
for epoch in range(10):
    for batch in train_loader.epoch():
        optimizer.step()
    for batch in val_loader.epoch():
        meter.update(batch)
";
        let report = instrument(&parse(src).unwrap());
        assert_eq!(report.blocks.len(), 2);
        assert_eq!(report.blocks[0].id, "sb_0");
        assert_eq!(report.blocks[1].id, "sb_1");
    }

    #[test]
    fn instrumentation_is_deterministic() {
        let a = instrument(&parse(FIG2).unwrap());
        let b = instrument(&parse(FIG2).unwrap());
        assert_eq!(a.program, b.program);
        assert_eq!(a.blocks, b.blocks);
    }

    #[test]
    fn strip_is_inverse_of_instrument() {
        let user = parse(FIG2).unwrap();
        let report = instrument(&user);
        assert_eq!(strip_instrumentation(&report.program), user);
    }

    #[test]
    fn predefined_accumulator_survives_filter() {
        // avg_loss is defined before the loop, so even though the loop
        // assigns it, it stays in the changeset (it is live after the loop).
        let src = "\
import flor
avg_loss = 0.0
for epoch in range(5):
    for batch in loader.epoch():
        avg_loss = net.train_step(batch)
        optimizer.step()
    log(\"avg\", avg_loss)
";
        let report = instrument(&parse(src).unwrap());
        assert_eq!(report.blocks.len(), 1);
        assert!(
            report.blocks[0]
                .static_changeset
                .contains(&"avg_loss".to_string()),
            "{:?}",
            report.blocks[0].static_changeset
        );
    }

    #[test]
    fn no_import_flagged() {
        let report = instrument(&parse("x = 1\n").unwrap());
        assert!(!report.has_flor_import);
        assert!(report.main_loop.is_none());
    }

    #[test]
    fn instrumented_source_reparses() {
        let report = instrument(&parse(FIG2).unwrap());
        let printed = print_program(&report.program);
        let reparsed = parse(&printed).unwrap();
        assert_eq!(reparsed, report.program);
    }
}
