//! The record phase (paper §3.1).
//!
//! "Before executing, Flor first instruments the user's code to make it
//! materialize checkpoints throughout training. […] After instrumentation,
//! Flor stores a copy of the code, and begins execution with checkpointing."
//!
//! [`record`] is the whole phase: parse → instrument → persist the
//! instrumented source → execute with adaptive, background-materialized
//! checkpointing → persist the record log. The stored artifacts
//! (`source.flr`, `record_log.txt`) are exactly what the replay phase needs
//! to detect probes and run deferred correctness checks.

use crate::adaptive::{AdaptiveController, DEFAULT_EPSILON};
use crate::error::FlorError;
use crate::interp::{Interp, Mode, RecordCtx};
use crate::logstream::LogEntry;
use flor_analysis::instrument::{instrument, BlockPlan, RefusedLoop};
use flor_chkpt::{CheckpointStore, Materializer, MaterializerStats, Strategy};
use flor_lang::{parse, print_program};
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::Arc;

/// Knobs for a record run.
pub struct RecordOptions {
    /// Directory for the checkpoint store.
    pub store_root: PathBuf,
    /// Record-overhead tolerance ε (default 1/15 ≈ 6.67%, as in the paper).
    pub epsilon: f64,
    /// Background materialization strategy (default ForkBatched — the
    /// paper's fork() approach).
    pub strategy: Strategy,
    /// Adaptive checkpointing on/off (off reproduces Figure 7's
    /// "adaptivity disabled" bars).
    pub adaptive: bool,
    /// Background materializer worker threads.
    pub background_workers: usize,
    /// Lean checkpointing on/off. When off, SkipBlocks checkpoint the
    /// *entire* environment instead of the analyzed changeset — the
    /// ablation for §5.2's "avoiding the capture of too many redundancies".
    pub lean: bool,
    /// Delta-chain keyframe interval for the checkpoint store (`None` =
    /// store default; `Some(0)` disables delta encoding — every
    /// checkpoint is a full keyframe, the pre-delta pipeline).
    pub delta_keyframe_interval: Option<u32>,
}

impl RecordOptions {
    /// Defaults rooted at the given store directory.
    pub fn new(store_root: impl Into<PathBuf>) -> Self {
        RecordOptions {
            store_root: store_root.into(),
            epsilon: DEFAULT_EPSILON,
            strategy: Strategy::ForkBatched,
            adaptive: true,
            background_workers: 2,
            lean: true,
            delta_keyframe_interval: None,
        }
    }
}

/// What a record run produced.
pub struct RecordReport {
    /// Wall-clock time of the instrumented execution, ns.
    pub wall_ns: u64,
    /// Instrumented SkipBlocks and their static changesets.
    pub blocks: Vec<BlockPlan>,
    /// Loops the analysis refused.
    pub refused: Vec<RefusedLoop>,
    /// Checkpoints materialized (count).
    pub checkpoints: u64,
    /// Uncompressed checkpoint bytes.
    pub raw_bytes: u64,
    /// Compressed bytes on disk.
    pub stored_bytes: u64,
    /// The record log.
    pub log: Vec<LogEntry>,
    /// Materializer counters (main-thread blocked time, dispatches, …).
    pub materializer: MaterializerStats,
    /// Controller view of cumulative record overhead
    /// (caller-visible materialization time / loop compute time).
    pub record_overhead: f64,
    /// Final restore/materialize scaling factor `c`.
    pub scaling_c: f64,
}

/// FNV-1a 64-bit hash — the workspace's one content-fingerprint
/// primitive (source versions here, query content addresses in
/// `flor-registry`).
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Stable fingerprint of a source text (FNV-1a 64, hex) — the "source
/// version" under which a run is cataloged and its query results are
/// content-addressed by `flor-registry`.
pub fn source_version(src: &str) -> String {
    format!("{:016x}", fnv1a64(src.as_bytes()))
}

/// Number of main-loop iterations observed in a log (highest global
/// iteration index + 1).
pub fn log_iterations(log: &[LogEntry]) -> u64 {
    log.iter()
        .filter_map(|e| match e.section {
            crate::logstream::Section::Iter(g) => Some(g + 1),
            _ => None,
        })
        .max()
        .unwrap_or(0)
}

/// Name of the machine-readable run summary artifact written at the end of
/// every record phase. `flor-registry` reads it to catalog a finished run
/// (including runs recorded before any registry existed).
pub const RUN_META_ARTIFACT: &str = "run_meta.txt";

fn run_meta_text(src: &str, report: &RecordReport) -> String {
    format!(
        "source_version\t{}\niterations\t{}\ncheckpoints\t{}\nraw_bytes\t{}\n\
         stored_bytes\t{}\nrecord_overhead\t{}\nscaling_c\t{}\n",
        source_version(src),
        log_iterations(&report.log),
        report.checkpoints,
        report.raw_bytes,
        report.stored_bytes,
        report.record_overhead,
        report.scaling_c,
    )
}

/// Records a training script: the paper's "all a model developer has to do
/// in advance is add a single line — `import flor`".
pub fn record(src: &str, opts: &RecordOptions) -> Result<RecordReport, FlorError> {
    let user_prog = parse(src)?;
    let inst = instrument(&user_prog);

    let mut store_opts = flor_chkpt::StoreOptions::default();
    if let Some(k) = opts.delta_keyframe_interval {
        store_opts.delta_keyframe_interval = k;
    }
    let store = Arc::new(CheckpointStore::open_opts(&opts.store_root, store_opts)?);
    let instrumented_src = print_program(&inst.program);
    store.put_artifact("source.flr", instrumented_src.as_bytes())?;

    let mut controller = AdaptiveController::new(opts.epsilon);
    if !opts.adaptive {
        controller = controller.with_adaptivity_disabled();
    }
    let static_changesets: HashMap<String, Vec<String>> = inst
        .blocks
        .iter()
        .map(|b| (b.id.clone(), b.static_changeset.clone()))
        .collect();

    let ctx = RecordCtx {
        store: store.clone(),
        materializer: Materializer::new(store.clone(), opts.strategy, opts.background_workers),
        controller,
        static_changesets,
        lean: opts.lean,
        main_iter: None,
        standalone_seq: HashMap::new(),
        blocks_this_iter: HashSet::new(),
        profile: crate::profile::ProfileBuilder::new(),
    };

    let mut interp = Interp::new(Mode::Record(Box::new(ctx)));
    let t0 = flor_obs::clock::now_ns();
    interp.run(&inst.program)?;
    let wall_ns = flor_obs::clock::since_ns(t0);

    store.put_artifact("record_log.txt", interp.log.to_text().as_bytes())?;

    let Mode::Record(ctx) = interp.mode else {
        unreachable!()
    };
    let mat_stats = ctx.materializer.stats();
    // Persist the per-iteration cost profile: replay's work-stealing
    // scheduler sizes micro-ranges by it (skewed iterations — warmup, eval
    // epochs, LR phase changes — get their own stealable ranges).
    let cost_profile = ctx.profile.clone().finish(ctx.controller.c());
    if !cost_profile.is_empty() {
        store.put_artifact(
            crate::profile::COST_PROFILE_ARTIFACT,
            cost_profile.to_text().as_bytes(),
        )?;
    }
    let report = RecordReport {
        wall_ns,
        blocks: inst.blocks,
        refused: inst.refused,
        checkpoints: store.entries().len() as u64,
        raw_bytes: store.total_raw_bytes(),
        stored_bytes: store.total_stored_bytes(),
        log: interp.log.into_entries(),
        materializer: mat_stats,
        record_overhead: ctx.controller.record_overhead(),
        scaling_c: ctx.controller.c(),
    };
    // Machine-readable summary so a registry can catalog this run later.
    store.put_artifact(RUN_META_ARTIFACT, run_meta_text(src, &report).as_bytes())?;
    Ok(report)
}

/// Runs the same source *without* checkpointing (but with identical
/// instrumentation, so log sections match) — the paper's "vanilla
/// execution" baseline for overhead and speedup measurements.
pub fn run_vanilla(src: &str) -> Result<(u64, Vec<LogEntry>), FlorError> {
    let user_prog = parse(src)?;
    let inst = instrument(&user_prog);
    let mut interp = Interp::new(Mode::Vanilla);
    let t0 = flor_obs::clock::now_ns();
    interp.run(&inst.program)?;
    Ok((flor_obs::clock::since_ns(t0), interp.log.into_entries()))
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::logstream::Section;

    fn tmproot(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "flor-record-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Figure-2-shaped training script used across the record/replay tests.
    /// The `busy(…)` call keeps per-epoch compute well above checkpoint
    /// cost, so the adaptive controller checkpoints every epoch (the
    /// "training" regime of §5.3.4 — fine-tuning regimes are exercised
    /// separately).
    /// Note the `avg` meter: it is defined *before* the training loop, so
    /// the loop-scope filter keeps it in the changeset and the epoch loss
    /// survives loop memoization. Logging the loop-scoped `loss` directly
    /// after the loop would violate the paper's scope-filter assumption
    /// ("this variable … is not read after the end of the loop").
    pub(crate) const TRAIN_SRC: &str = "\
import flor
data = synth_data(n=60, dim=8, classes=3, spread=0.25, seed=7)
loader = dataloader(data, batch_size=20, seed=7)
net = mlp(input=8, hidden=16, classes=3, depth=2, seed=7)
optimizer = sgd(net, lr=0.1, momentum=0.9)
criterion = cross_entropy()
avg = meter()
for epoch in range(6):
    avg.reset()
    for batch in loader.epoch():
        waste = busy(2)
        optimizer.zero_grad()
        preds = net.forward(batch)
        loss = criterion.forward(preds, batch)
        grad = criterion.backward()
        net.backward(grad)
        optimizer.step()
        avg.update(loss)
    log(\"loss\", avg.mean())
acc = evaluate(net, data)
log(\"accuracy\", acc)
";

    /// Options with adaptivity off: tests asserting exact checkpoint
    /// counts must not depend on wall-clock measurements.
    pub(crate) fn opts_exact(root: &PathBuf) -> RecordOptions {
        let mut o = RecordOptions::new(root);
        o.adaptive = false;
        o
    }

    #[test]
    fn record_produces_checkpoints_and_artifacts() {
        let root = tmproot("basic");
        let report = record(TRAIN_SRC, &opts_exact(&root)).unwrap();
        assert_eq!(report.blocks.len(), 1, "one skipblock for the train loop");
        // One checkpoint per epoch (cheap checkpoints, always materialized).
        assert_eq!(report.checkpoints, 6);
        assert!(report.raw_bytes > 0);
        // Artifacts exist.
        let store = CheckpointStore::open(&root).unwrap();
        assert!(store.has_artifact("source.flr"));
        assert!(store.has_artifact("record_log.txt"));
        // The stored source is the instrumented program.
        let stored = String::from_utf8(store.get_artifact("source.flr").unwrap()).unwrap();
        assert!(stored.contains("skipblock \"sb_0\":"));
        assert!(stored.contains("flor.partition"));
    }

    #[test]
    fn record_log_matches_vanilla_log() {
        let root = tmproot("logs");
        let report = record(TRAIN_SRC, &RecordOptions::new(&root)).unwrap();
        let (_, vanilla_log) = run_vanilla(TRAIN_SRC).unwrap();
        assert_eq!(
            report.log, vanilla_log,
            "checkpointing must not perturb training"
        );
    }

    #[test]
    fn log_sections_follow_main_loop() {
        let root = tmproot("sections");
        let report = record(TRAIN_SRC, &RecordOptions::new(&root)).unwrap();
        // 6 loss entries in Iter sections + 1 accuracy entry in Post.
        let iters: Vec<_> = report
            .log
            .iter()
            .filter(|e| matches!(e.section, Section::Iter(_)))
            .collect();
        assert_eq!(iters.len(), 6);
        assert_eq!(report.log.last().unwrap().section, Section::Post);
    }

    #[test]
    fn checkpoints_keyed_by_epoch() {
        let root = tmproot("seqs");
        record(TRAIN_SRC, &opts_exact(&root)).unwrap();
        let store = CheckpointStore::open(&root).unwrap();
        for g in 0..6 {
            assert!(store.contains("sb_0", g), "missing epoch {g} checkpoint");
        }
    }

    #[test]
    fn refused_main_loop_reported() {
        let root = tmproot("refused");
        let report = record(TRAIN_SRC, &RecordOptions::new(&root)).unwrap();
        // The main loop contains `evaluate(...)`? No — evaluate is after the
        // loop here, and assigned. The main loop contains only the skipblock
        // and a log; it passes analysis but is still not wrapped.
        assert!(report.refused.is_empty());
        let stored_src = {
            let store = CheckpointStore::open(&root).unwrap();
            String::from_utf8(store.get_artifact("source.flr").unwrap()).unwrap()
        };
        // Exactly one skipblock: the main loop was not wrapped.
        assert_eq!(stored_src.matches("skipblock").count(), 1);
    }

    #[test]
    fn deterministic_across_records() {
        // Training itself is bit-deterministic. Checkpoint *placement* under
        // adaptive checkpointing depends on wall-clock measurements, so byte
        // totals are only compared with adaptivity disabled.
        let r1 = record(TRAIN_SRC, &RecordOptions::new(tmproot("det1"))).unwrap();
        let r2 = record(TRAIN_SRC, &RecordOptions::new(tmproot("det2"))).unwrap();
        assert_eq!(r1.log, r2.log);

        let mut o3 = RecordOptions::new(tmproot("det3"));
        o3.adaptive = false;
        let mut o4 = RecordOptions::new(tmproot("det4"));
        o4.adaptive = false;
        let r3 = record(TRAIN_SRC, &o3).unwrap();
        let r4 = record(TRAIN_SRC, &o4).unwrap();
        assert_eq!(r3.raw_bytes, r4.raw_bytes);
        assert_eq!(r3.checkpoints, 6);
    }
}
