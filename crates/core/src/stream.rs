//! Streaming log merge — record-order hindsight output while workers are
//! still replaying.
//!
//! The pre-refactor replay driver joined every worker at a barrier and only
//! then called `merge_worker_logs`: a hindsight query blocked on the
//! *slowest* worker even when iteration 0's entries were ready within
//! milliseconds. This module replaces the barrier with an incremental
//! merger: workers send each completed micro-range's entries over a
//! channel, and [`StreamingMerger`] emits the record-order prefix as soon
//! as it becomes contiguous — preamble first, then iterations in global
//! order, then the postamble once the final owner finishes. The deferred
//! fingerprint check (paper §5.2.2) runs incrementally on the same prefix,
//! so anomalies surface with the entries that caused them, not at the end.
//!
//! The merge is byte-identical to the old barrier merge
//! ([`merge_worker_logs`]) for every partitioning and steal order —
//! property-tested in `tests/proptests.rs`.

use crate::logstream::{LogEntry, Section};
use crate::replay::deferred_check;
use std::collections::BTreeMap;
use std::sync::mpsc::{Receiver, Sender};

/// One message from a replay worker to the merger.
#[derive(Debug)]
pub enum StreamMsg {
    /// Preamble entries (every worker executes the preamble; the merger
    /// keeps worker 0's, like the barrier merge did).
    Pre {
        /// Sending worker.
        pid: usize,
        /// Entries logged before the main loop.
        entries: Vec<LogEntry>,
    },
    /// Total main-loop iterations, announced once the queue is seeded.
    Total {
        /// One past the last global iteration.
        n_iters: u64,
    },
    /// A completed work range and its log entries.
    Range {
        /// First global iteration (inclusive).
        start: u64,
        /// One past the last global iteration.
        end: u64,
        /// True when the executing worker stole the range.
        stolen: bool,
        /// Entries logged by the range's work iterations.
        entries: Vec<LogEntry>,
    },
    /// Post-loop entries (non-empty only from the final-state owner).
    Post {
        /// Entries logged after the main loop.
        entries: Vec<LogEntry>,
    },
}

/// A worker's handle for streaming completed ranges to the merger.
#[derive(Clone)]
pub struct RangeSink {
    tx: Sender<StreamMsg>,
}

impl RangeSink {
    /// Sink over a channel sender.
    pub fn new(tx: Sender<StreamMsg>) -> Self {
        RangeSink { tx }
    }

    /// Sends one message; a closed receiver (replay driver gone) is
    /// ignored — the worker's own error path reports the failure.
    pub fn send(&self, msg: StreamMsg) {
        let _ = self.tx.send(msg);
    }
}

/// Progress and output events delivered to a streaming replay's observer.
#[derive(Debug)]
pub enum StreamEvent<'a> {
    /// A record-order chunk of the merged log (never re-delivered).
    Entries(&'a [LogEntry]),
    /// An anomaly found by the incremental deferred check.
    Anomaly(&'a str),
    /// Progress counters after a worker completed a range.
    Progress {
        /// Iterations completed across all workers (not necessarily
        /// contiguous).
        iterations_done: u64,
        /// Total main-loop iterations (0 until the queue is seeded).
        iterations_total: u64,
        /// Ranges that moved between workers so far.
        steals: u64,
    },
}

/// Incremental record-order merger with the deferred fingerprint check
/// folded in. Feed [`StreamMsg`]s (any arrival order); record-order entries
/// come out of the `on_event` callback as soon as the leading contiguous
/// prefix is complete.
pub struct StreamingMerger<'a> {
    /// Record log grouped by section, for the incremental deferred check.
    record_by_section: BTreeMap<Section, Vec<LogEntry>>,
    on_event: Box<dyn FnMut(StreamEvent<'_>) + 'a>,
    /// Replay start on the [`flor_obs::clock`] timeline, for
    /// time-to-first-entry.
    t0_ns: u64,
    /// Completed-but-not-yet-emittable ranges, keyed by start.
    pending: BTreeMap<u64, (u64, Vec<LogEntry>)>,
    /// Next iteration the contiguous prefix needs.
    next: u64,
    pre: Option<Vec<LogEntry>>,
    pre_emitted: bool,
    post: Vec<LogEntry>,
    merged: Vec<LogEntry>,
    anomalies: Vec<String>,
    n_iters: Option<u64>,
    iterations_done: u64,
    steals: u64,
    first_entry_ns: Option<u64>,
}

impl<'a> StreamingMerger<'a> {
    /// Merger checking against `record_log`, reporting to `on_event`,
    /// timing first emission relative to `t0_ns` (the replay start, on the
    /// [`flor_obs::clock`] timeline).
    pub fn new(
        record_log: &[LogEntry],
        t0_ns: u64,
        on_event: impl FnMut(StreamEvent<'_>) + 'a,
    ) -> Self {
        let mut record_by_section: BTreeMap<Section, Vec<LogEntry>> = BTreeMap::new();
        for e in record_log {
            record_by_section
                .entry(e.section)
                .or_default()
                .push(e.clone());
        }
        StreamingMerger {
            record_by_section,
            on_event: Box::new(on_event),
            t0_ns,
            pending: BTreeMap::new(),
            next: 0,
            pre: None,
            pre_emitted: false,
            post: Vec::new(),
            merged: Vec::new(),
            anomalies: Vec::new(),
            n_iters: None,
            iterations_done: 0,
            steals: 0,
            first_entry_ns: None,
        }
    }

    /// Feeds one worker message, emitting whatever prefix it completes.
    pub fn push(&mut self, msg: StreamMsg) {
        match msg {
            StreamMsg::Pre { pid, entries } => {
                if pid == 0 {
                    self.pre = Some(entries);
                }
                self.advance();
            }
            StreamMsg::Total { n_iters } => {
                self.n_iters = Some(n_iters);
            }
            StreamMsg::Range {
                start,
                end,
                stolen,
                entries,
            } => {
                self.iterations_done += end - start;
                if stolen {
                    self.steals += 1;
                }
                self.pending.insert(start, (end, entries));
                self.advance();
                let (done, total, steals) =
                    (self.iterations_done, self.n_iters.unwrap_or(0), self.steals);
                (self.on_event)(StreamEvent::Progress {
                    iterations_done: done,
                    iterations_total: total,
                    steals,
                });
            }
            StreamMsg::Post { entries } => {
                self.post.extend(entries);
            }
        }
    }

    /// Emits the contiguous prefix currently available.
    fn advance(&mut self) {
        // Nothing may precede worker 0's preamble.
        if !self.pre_emitted {
            let Some(pre) = self.pre.take() else {
                return;
            };
            self.pre_emitted = true;
            self.check_section(Section::Pre, &pre);
            self.emit(pre);
        }
        while let Some((&start, _)) = self.pending.first_key_value() {
            if start > self.next {
                break;
            }
            let (start, (end, entries)) = self.pending.pop_first().expect("non-empty");
            debug_assert_eq!(start, self.next, "ranges are disjoint and ordered");
            // Entries within a range arrive in iteration order (the worker
            // appended them while walking its iterations ascending), so one
            // forward pass slices each iteration's run without cloning —
            // the merge stays O(entries), not O(iterations × entries).
            let mut idx = 0usize;
            for g in start..end {
                let lo = idx;
                while idx < entries.len() && entries[idx].section == Section::Iter(g) {
                    idx += 1;
                }
                self.check_section(Section::Iter(g), &entries[lo..idx]);
            }
            self.next = end;
            self.emit(entries);
        }
    }

    /// Runs the deferred check for one completed section.
    fn check_section(&mut self, section: Section, replayed: &[LogEntry]) {
        let Some(recorded) = self.record_by_section.get(&section) else {
            return;
        };
        for a in deferred_check(recorded, replayed) {
            (self.on_event)(StreamEvent::Anomaly(&a));
            self.anomalies.push(a);
        }
    }

    fn emit(&mut self, entries: Vec<LogEntry>) {
        if entries.is_empty() {
            return;
        }
        if self.first_entry_ns.is_none() {
            self.first_entry_ns = Some(flor_obs::clock::since_ns(self.t0_ns));
        }
        let span = flor_obs::span(flor_obs::Category::StreamMerge, "emit");
        (self.on_event)(StreamEvent::Entries(&entries));
        drop(span);
        self.merged.extend(entries);
    }

    /// Drains a channel until every worker sender is dropped.
    pub fn run(&mut self, rx: &Receiver<StreamMsg>) {
        while let Ok(msg) = rx.recv() {
            self.push(msg);
        }
    }

    /// Finishes the merge: emits the postamble (and any pre that never
    /// emitted because no ranges arrived), returning the full merged log,
    /// the anomalies found, and the time-to-first-entry (ns since `t0`;
    /// 0 when nothing was ever emitted).
    pub fn finish(mut self) -> (Vec<LogEntry>, Vec<String>, u64) {
        // A replay with zero iterations still has a preamble.
        if !self.pre_emitted {
            if let Some(pre) = self.pre.take() {
                self.pre_emitted = true;
                self.check_section(Section::Pre, &pre);
                self.emit(pre);
            }
        }
        let post = std::mem::take(&mut self.post);
        self.check_section(Section::Post, &post);
        self.emit(post);
        (
            self.merged,
            self.anomalies,
            self.first_entry_ns.unwrap_or(0),
        )
    }

    /// Time of first emitted entry, ns since `t0` (None before emission).
    pub fn first_entry_ns(&self) -> Option<u64> {
        self.first_entry_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logstream::merge_worker_logs;

    fn e(key: &str, val: &str, section: Section) -> LogEntry {
        LogEntry {
            key: key.into(),
            value: val.into(),
            section,
        }
    }

    fn collect_merge(record: &[LogEntry], msgs: Vec<StreamMsg>) -> (Vec<LogEntry>, Vec<String>) {
        let mut streamed = Vec::new();
        let mut merger = StreamingMerger::new(record, flor_obs::clock::now_ns(), |ev| {
            if let StreamEvent::Entries(chunk) = ev {
                streamed.extend(chunk.iter().cloned());
            }
        });
        for m in msgs {
            merger.push(m);
        }
        let (merged, anomalies, _) = merger.finish();
        assert_eq!(streamed, merged, "callback stream equals returned log");
        (merged, anomalies)
    }

    #[test]
    fn out_of_order_ranges_emit_in_record_order() {
        let msgs = vec![
            StreamMsg::Total { n_iters: 4 },
            StreamMsg::Range {
                start: 2,
                end: 4,
                stolen: true,
                entries: vec![e("x", "2", Section::Iter(2)), e("x", "3", Section::Iter(3))],
            },
            StreamMsg::Pre {
                pid: 0,
                entries: vec![e("pre", "p", Section::Pre)],
            },
            StreamMsg::Range {
                start: 0,
                end: 2,
                stolen: false,
                entries: vec![e("x", "0", Section::Iter(0)), e("x", "1", Section::Iter(1))],
            },
            StreamMsg::Post {
                entries: vec![e("post", "q", Section::Post)],
            },
        ];
        let (merged, anomalies) = collect_merge(&[], msgs);
        let vals: Vec<&str> = merged.iter().map(|x| x.value.as_str()).collect();
        assert_eq!(vals, vec!["p", "0", "1", "2", "3", "q"]);
        assert!(anomalies.is_empty());
    }

    #[test]
    fn equals_barrier_merge_on_a_static_partition() {
        let w0 = vec![
            e("pre", "p", Section::Pre),
            e("k", "0", Section::Iter(0)),
            e("k", "1", Section::Iter(1)),
        ];
        let w1 = vec![
            e("pre", "p", Section::Pre),
            e("k", "2", Section::Iter(2)),
            e("post", "done", Section::Post),
        ];
        let barrier = merge_worker_logs(vec![w0.clone(), w1.clone()]);
        let msgs = vec![
            StreamMsg::Pre {
                pid: 1,
                entries: vec![e("pre", "p", Section::Pre)],
            },
            StreamMsg::Pre {
                pid: 0,
                entries: vec![e("pre", "p", Section::Pre)],
            },
            StreamMsg::Range {
                start: 0,
                end: 2,
                stolen: false,
                entries: w0[1..].to_vec(),
            },
            StreamMsg::Range {
                start: 2,
                end: 3,
                stolen: false,
                entries: vec![w1[1].clone()],
            },
            StreamMsg::Post {
                entries: vec![w1[2].clone()],
            },
        ];
        let (merged, _) = collect_merge(&[], msgs);
        assert_eq!(merged, barrier);
    }

    #[test]
    fn incremental_check_flags_divergence_with_section() {
        let record = vec![e("loss", "0.5", Section::Iter(0))];
        let msgs = vec![
            StreamMsg::Pre {
                pid: 0,
                entries: Vec::new(),
            },
            StreamMsg::Range {
                start: 0,
                end: 1,
                stolen: false,
                entries: vec![e("loss", "0.9", Section::Iter(0))],
            },
        ];
        let (_, anomalies) = collect_merge(&record, msgs);
        assert_eq!(anomalies.len(), 1);
        assert!(anomalies[0].contains("loss"), "{anomalies:?}");
    }

    #[test]
    fn incremental_check_matches_barrier_deferred_check() {
        let record = vec![
            e("a", "1", Section::Pre),
            e("loss", "0.5", Section::Iter(0)),
            e("loss", "0.4", Section::Iter(1)),
            e("skipped", "x", Section::Iter(1)),
            e("final", "f", Section::Post),
        ];
        // Replay skips "skipped", reproduces losses, diverges on "final".
        let replay_sections: Vec<LogEntry> = vec![
            e("a", "1", Section::Pre),
            e("loss", "0.5", Section::Iter(0)),
            e("loss", "0.4", Section::Iter(1)),
            e("final", "DIFFERENT", Section::Post),
        ];
        let barrier = deferred_check(&record, &replay_sections);
        let msgs = vec![
            StreamMsg::Pre {
                pid: 0,
                entries: vec![replay_sections[0].clone()],
            },
            StreamMsg::Range {
                start: 0,
                end: 1,
                stolen: false,
                entries: vec![replay_sections[1].clone()],
            },
            StreamMsg::Range {
                start: 1,
                end: 2,
                stolen: false,
                entries: vec![replay_sections[2].clone()],
            },
            StreamMsg::Post {
                entries: vec![replay_sections[3].clone()],
            },
        ];
        let (_, anomalies) = collect_merge(&record, msgs);
        assert_eq!(anomalies, barrier);
    }

    #[test]
    fn first_entry_timing_precedes_finish() {
        let mut merger = StreamingMerger::new(&[], flor_obs::clock::now_ns(), |_| {});
        assert_eq!(merger.first_entry_ns(), None);
        merger.push(StreamMsg::Pre {
            pid: 0,
            entries: vec![e("p", "1", Section::Pre)],
        });
        let early = merger.first_entry_ns().expect("pre emitted immediately");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let (_, _, first) = merger.finish();
        assert_eq!(first, early, "finish must not reset the first-entry clock");
    }

    #[test]
    fn empty_replay_still_finishes_cleanly() {
        let (merged, anomalies) = collect_merge(&[], Vec::new());
        assert!(merged.is_empty());
        assert!(anomalies.is_empty());
    }

    #[test]
    fn progress_counts_iterations_and_steals() {
        let mut events = Vec::new();
        let mut merger = StreamingMerger::new(&[], flor_obs::clock::now_ns(), |ev| {
            if let StreamEvent::Progress {
                iterations_done,
                iterations_total,
                steals,
            } = ev
            {
                events.push((iterations_done, iterations_total, steals));
            }
        });
        merger.push(StreamMsg::Total { n_iters: 6 });
        merger.push(StreamMsg::Range {
            start: 4,
            end: 6,
            stolen: true,
            entries: Vec::new(),
        });
        merger.push(StreamMsg::Range {
            start: 0,
            end: 4,
            stolen: false,
            entries: Vec::new(),
        });
        drop(merger);
        assert_eq!(events, vec![(2, 6, 1), (6, 6, 1)]);
    }
}
