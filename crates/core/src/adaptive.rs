//! Adaptive checkpointing — the paper's §5.3 (Table 2 symbols, Eqs. 1–4).
//!
//! Per loop `i`, using the paper's notation:
//!
//! - `M_i` — time to materialize the loop's side-effects (checkpoint),
//! - `R_i` — time to restore them,
//! - `C_i` — time to compute (execute) the loop,
//! - `n_i` — executions of the loop so far,
//! - `k_i` — checkpoints materialized so far,
//! - `G`   — replay parallelism (unknown at record time),
//! - `c`   — scaling factor with `R_i = c · M_i`, refined online,
//! - `ε`   — user-specifiable record-overhead tolerance.
//!
//! **Record Overhead invariant (Eq. 1):** `k_i · M_i < n_i · ε · C_i`, i.e.
//! `M_i / C_i < n_i ε / k_i` — total materialization time stays under an ε
//! fraction of total compute.
//!
//! **Replay Latency invariant (Eq. 3):** `M_i + R_i < (n_i / k_i) C_i` with
//! `R_i = c·M_i` ⇒ `M_i / C_i < n_i / (k_i (1 + c))` — record-replay must
//! beat two vanilla executions even without partial replay.
//!
//! **Joint invariant (Eq. 4), tested after a loop executes but *before*
//! materializing (hence `k_i + 1`):**
//!
//! ```text
//! M_i / C_i  <  n_i / (k_i + 1) · min( 1 / (1 + c), ε )
//! ```
//!
//! The controller is deliberately clock-agnostic: callers feed it observed
//! compute/materialize/restore durations in nanoseconds (real clocks in the
//! live engine, virtual clocks in `flor-sim`), so the exact same decision
//! logic produces both the live behaviour and the paper-scale simulations of
//! Figures 7, 10–14.

use std::collections::HashMap;

/// Default overhead tolerance: the paper's 6.67% (= 1/15), chosen so
/// memoized loops compute at least 15× longer than they take to checkpoint.
pub const DEFAULT_EPSILON: f64 = 1.0 / 15.0;

/// Default restore/materialize scaling factor prior (`c = 1.0` naive prior;
/// the paper reports an observed average of 1.38 across workloads).
pub const DEFAULT_C: f64 = 1.0;

/// Per-block bookkeeping (Table 2 row per loop `i`).
#[derive(Debug, Clone, Default)]
pub struct BlockStats {
    /// `n_i`: executions so far.
    pub executions: u64,
    /// `k_i`: checkpoints materialized so far.
    pub checkpoints: u64,
    /// Total compute time, ns.
    pub total_compute_ns: u64,
    /// Total materialize time, ns.
    pub total_materialize_ns: u64,
    /// Total restore time, ns (replay feeds this back to refine `c`).
    pub total_restore_ns: u64,
}

impl BlockStats {
    /// Mean per-execution compute time, ns.
    pub fn mean_compute_ns(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.total_compute_ns as f64 / self.executions as f64
        }
    }

    /// Mean per-checkpoint materialize time, ns.
    pub fn mean_materialize_ns(&self) -> f64 {
        if self.checkpoints == 0 {
            0.0
        } else {
            self.total_materialize_ns as f64 / self.checkpoints as f64
        }
    }
}

/// The adaptive checkpointing controller.
#[derive(Debug, Clone)]
pub struct AdaptiveController {
    epsilon: f64,
    c: f64,
    adaptive: bool,
    blocks: HashMap<String, BlockStats>,
    /// Serialization throughput estimate (ns per byte) used to predict `M_i`
    /// before the first materialization of a block; refined from
    /// observations.
    ns_per_byte: f64,
    restore_obs: u64,
}

impl Default for AdaptiveController {
    fn default() -> Self {
        Self::new(DEFAULT_EPSILON)
    }
}

impl AdaptiveController {
    /// Controller with the given overhead tolerance ε.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        AdaptiveController {
            epsilon,
            c: DEFAULT_C,
            adaptive: true,
            blocks: HashMap::new(),
            // 1 GiB/s serialization prior ≈ 1 ns per byte.
            ns_per_byte: 1.0,
            restore_obs: 0,
        }
    }

    /// Disables adaptivity: every loop execution is checkpointed. This is
    /// the "adaptivity-disabled" configuration of Figure 7 (91% overhead on
    /// RTE, 28% on CoLA).
    pub fn with_adaptivity_disabled(mut self) -> Self {
        self.adaptive = false;
        self
    }

    /// The overhead tolerance ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Whether adaptivity is enabled (false in the Figure 7 ablation).
    pub fn is_adaptive(&self) -> bool {
        self.adaptive
    }

    /// The current restore/materialize scaling factor `c`.
    pub fn c(&self) -> f64 {
        self.c
    }

    /// Predicted materialization time for a payload of `bytes`, from the
    /// calibrated throughput model.
    pub fn estimate_materialize_ns(&self, block: &str, bytes: u64) -> u64 {
        let stats = self.blocks.get(block);
        match stats {
            Some(s) if s.checkpoints > 0 => s.mean_materialize_ns() as u64,
            _ => (bytes as f64 * self.ns_per_byte) as u64,
        }
    }

    /// The Joint Invariant test (Eq. 4). Called **after** a loop execution
    /// (with its measured compute time) and **before** materialization (with
    /// the predicted materialize time). Records the execution (`n_i += 1`)
    /// and answers whether the checkpoint should be materialized.
    pub fn should_materialize(
        &mut self,
        block: &str,
        compute_ns: u64,
        est_materialize_ns: u64,
    ) -> bool {
        let stats = self.blocks.entry(block.to_string()).or_default();
        stats.executions += 1;
        stats.total_compute_ns += compute_ns;
        if !self.adaptive {
            return true;
        }
        let n = stats.executions as f64;
        let k = stats.checkpoints as f64;
        let mean_c = stats.mean_compute_ns();
        if mean_c <= 0.0 {
            // Zero-cost loop: materializing can only add overhead.
            return false;
        }
        let m = if stats.checkpoints > 0 {
            stats.mean_materialize_ns()
        } else {
            est_materialize_ns as f64
        };
        let threshold = (n / (k + 1.0)) * (1.0 / (1.0 + self.c)).min(self.epsilon);
        (m / mean_c) < threshold
    }

    /// Records an actual materialization (`k_i += 1`) and refines the
    /// byte-throughput model.
    pub fn observe_materialize(&mut self, block: &str, materialize_ns: u64, bytes: u64) {
        let stats = self.blocks.entry(block.to_string()).or_default();
        stats.checkpoints += 1;
        stats.total_materialize_ns += materialize_ns;
        if bytes > 0 {
            let obs = materialize_ns as f64 / bytes as f64;
            // EWMA keeps the prior from being washed out by one noisy sample.
            self.ns_per_byte = 0.7 * self.ns_per_byte + 0.3 * obs;
        }
    }

    /// Records an observed restore and refines `c` ("Flor gradually refines
    /// the scaling factor after observing materialization and restoration
    /// times from record-replay"; the paper's measured average was 1.38).
    pub fn observe_restore(&mut self, block: &str, restore_ns: u64) {
        let stats = self.blocks.entry(block.to_string()).or_default();
        stats.total_restore_ns += restore_ns;
        self.restore_obs += 1;
        let m = stats.mean_materialize_ns();
        if m > 0.0 {
            let obs_c = restore_ns as f64 / m;
            self.c = 0.7 * self.c + 0.3 * obs_c;
        }
    }

    /// Stats for one block.
    pub fn block_stats(&self, block: &str) -> Option<&BlockStats> {
        self.blocks.get(block)
    }

    /// All blocks seen so far.
    pub fn blocks(&self) -> impl Iterator<Item = (&str, &BlockStats)> {
        self.blocks.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Aggregate record overhead so far: total materialize / total compute.
    pub fn record_overhead(&self) -> f64 {
        let compute: u64 = self.blocks.values().map(|s| s.total_compute_ns).sum();
        let materialize: u64 = self.blocks.values().map(|s| s.total_materialize_ns).sum();
        if compute == 0 {
            0.0
        } else {
            materialize as f64 / compute as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives the controller with constant per-execution costs and returns
    /// the number of materialized checkpoints.
    fn drive(ctrl: &mut AdaptiveController, block: &str, execs: u64, c_ns: u64, m_ns: u64) -> u64 {
        let mut k = 0;
        for _ in 0..execs {
            if ctrl.should_materialize(block, c_ns, m_ns) {
                ctrl.observe_materialize(block, m_ns, m_ns); // 1 byte/ns payload
                k += 1;
            }
        }
        k
    }

    #[test]
    fn cheap_checkpoints_always_materialize() {
        // Training-style loop: compute 100ms, checkpoint 1ms → ratio 0.01
        // ≪ min(1/(1+c), ε) = min(0.5, 0.0667). Every execution checkpoints.
        let mut ctrl = AdaptiveController::new(DEFAULT_EPSILON);
        let k = drive(&mut ctrl, "sb_0", 50, 100_000_000, 1_000_000);
        assert_eq!(k, 50);
    }

    #[test]
    fn expensive_checkpoints_become_periodic() {
        // Fine-tuning regime: checkpoint as expensive as the compute
        // (ratio 1.0). Materialize only when n/(k+1)·min(…) > 1, i.e.
        // roughly every 1/0.0667 ≈ 15 executions.
        let mut ctrl = AdaptiveController::new(DEFAULT_EPSILON);
        let k = drive(&mut ctrl, "rte", 200, 1_000_000, 1_000_000);
        assert!(k > 0, "periodic checkpointing still checkpoints");
        assert!(k <= 200 / 14, "expected sparse checkpoints, got {k}");
    }

    #[test]
    fn overhead_never_exceeds_epsilon_plus_first() {
        // Property over several cost regimes: cumulative overhead stays at
        // or under ε once past the first (estimated) checkpoint.
        for (c_ns, m_ns) in [
            (10_000u64, 100u64),
            (1_000, 1_000),
            (100, 10_000),
            (500, 499),
        ] {
            let mut ctrl = AdaptiveController::new(DEFAULT_EPSILON);
            drive(&mut ctrl, "b", 500, c_ns, m_ns);
            let overhead = ctrl.record_overhead();
            // Allow the one bootstrap checkpoint's contribution.
            let slack = m_ns as f64 / (500.0 * c_ns as f64);
            assert!(
                overhead <= DEFAULT_EPSILON + slack + 1e-9,
                "overhead {overhead} for C={c_ns} M={m_ns}"
            );
        }
    }

    #[test]
    fn disabled_adaptivity_checkpoints_everything() {
        let mut ctrl = AdaptiveController::new(DEFAULT_EPSILON).with_adaptivity_disabled();
        let k = drive(&mut ctrl, "rte", 100, 1_000, 910);
        assert_eq!(k, 100);
        // This is Figure 7's adaptivity-disabled RTE bar: ~91% overhead.
        assert!((ctrl.record_overhead() - 0.91).abs() < 0.01);
    }

    #[test]
    fn replay_latency_invariant_bounds_ratio() {
        // With c = 1 the threshold is min(0.5, ε); a ratio between ε and 0.5
        // must still be limited by ε (Eq. 1 binds before Eq. 3).
        let mut ctrl = AdaptiveController::new(0.4);
        // ratio M/C = 0.45 < 0.5 but > ε=0.4 → first execution: n/(k+1)=1,
        // threshold 0.4 → no checkpoint. After 2 executions threshold 0.8 →
        // checkpoint.
        assert!(!ctrl.should_materialize("b", 1000, 450));
        assert!(ctrl.should_materialize("b", 1000, 450));
    }

    #[test]
    fn c_refines_toward_observed_ratio() {
        let mut ctrl = AdaptiveController::new(DEFAULT_EPSILON);
        ctrl.should_materialize("b", 1_000_000, 10);
        ctrl.observe_materialize("b", 1_000, 1_000);
        assert!((ctrl.c() - 1.0).abs() < 1e-9);
        // Observed restores run 1.38× materialization (paper's average).
        for _ in 0..50 {
            ctrl.observe_restore("b", 1_380);
        }
        assert!((ctrl.c() - 1.38).abs() < 0.02, "c = {}", ctrl.c());
    }

    #[test]
    fn estimate_uses_throughput_before_first_checkpoint() {
        let ctrl = AdaptiveController::new(DEFAULT_EPSILON);
        // 1 ns/byte prior.
        assert_eq!(ctrl.estimate_materialize_ns("new", 5_000), 5_000);
    }

    #[test]
    fn estimate_uses_history_after_first_checkpoint() {
        let mut ctrl = AdaptiveController::new(DEFAULT_EPSILON);
        ctrl.should_materialize("b", 1_000_000, 10);
        ctrl.observe_materialize("b", 777, 100);
        assert_eq!(ctrl.estimate_materialize_ns("b", 123_456), 777);
    }

    #[test]
    fn per_block_isolation() {
        let mut ctrl = AdaptiveController::new(DEFAULT_EPSILON);
        drive(&mut ctrl, "cheap", 10, 1_000_000, 1_000);
        drive(&mut ctrl, "costly", 10, 1_000, 1_000_000);
        assert_eq!(ctrl.block_stats("cheap").unwrap().checkpoints, 10);
        assert!(ctrl.block_stats("costly").unwrap().checkpoints <= 1);
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_epsilon_rejected() {
        AdaptiveController::new(0.0);
    }
}
