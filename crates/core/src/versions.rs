//! Queries across runs and versions (paper §8, "Queries Across Projects
//! and Versions").
//!
//! "We believe hindsight logging could support querying the past of
//! multiple versions of a model […] For example, we might be looking for
//! past Flor logs that show the 'exploding/vanishing gradient' pattern of
//! Section 2.1. […] This brings up challenges in consistently injecting
//! hindsight log statements into many programs, and then performing replay
//! as appropriate."
//!
//! This module implements the proof of concept: a [`Probe`] is a *source
//! transformation* applied uniformly to every run's own recorded source
//! (each run may differ — different hyperparameters, different epochs), and
//! [`replay_runs`] replays each store with its consistently-injected probe.
//! [`find_runs_where`] filters a fleet of past runs by a predicate over the
//! hindsight output — the paper's "which of my colleagues' runs show this
//! pattern" query.

use crate::error::FlorError;
use crate::logstream::LogEntry;
use crate::replay::{replay, ReplayOptions, ReplayReport};
use flor_analysis::instrument::strip_instrumentation;
use flor_chkpt::CheckpointStore;
use flor_lang::{parse, print_program};
use std::path::{Path, PathBuf};

/// A hindsight probe injected consistently across program versions: adds a
/// log statement after every occurrence of an anchor statement.
///
/// Working on *source text of the de-instrumented recorded program* keeps
/// the probe version-agnostic: each run's own code is probed, whatever its
/// hyperparameters or structure.
#[derive(Debug, Clone)]
pub struct Probe {
    /// Statement line to anchor on (exact text, without indentation),
    /// e.g. `optimizer.step()`.
    pub after_stmt: String,
    /// Log statement to inject (without indentation),
    /// e.g. `log("g_norm", net.grad_norm())`.
    pub log_stmt: String,
}

impl Probe {
    /// Probe adding `log_stmt` after each `after_stmt`.
    pub fn new(after_stmt: impl Into<String>, log_stmt: impl Into<String>) -> Self {
        Probe {
            after_stmt: after_stmt.into(),
            log_stmt: log_stmt.into(),
        }
    }

    /// Applies the probe to a source text. Returns `None` if the anchor
    /// statement does not occur (that version cannot answer the query).
    pub fn apply(&self, src: &str) -> Option<String> {
        let mut out = String::with_capacity(src.len() + 64);
        let mut hits = 0;
        for line in src.lines() {
            out.push_str(line);
            out.push('\n');
            if line.trim_end().ends_with(self.after_stmt.as_str())
                && line.trim_start() == self.after_stmt
            {
                let indent = &line[..line.len() - line.trim_start().len()];
                out.push_str(indent);
                out.push_str(&self.log_stmt);
                out.push('\n');
                hits += 1;
            }
        }
        (hits > 0).then_some(out)
    }
}

/// One run's answer to a cross-version query.
pub struct RunAnswer {
    /// The run's store root.
    pub store: PathBuf,
    /// The probed replay, or `None` if the probe's anchor does not occur in
    /// this version.
    pub report: Option<ReplayReport>,
}

/// Reads a run's original (de-instrumented) source back from its store.
pub fn recorded_source(store_root: &Path) -> Result<String, FlorError> {
    let store = CheckpointStore::open(store_root)?;
    let instrumented = String::from_utf8(store.get_artifact("source.flr")?)
        .map_err(|_| crate::error::rt("recorded source is not valid UTF-8"))?;
    let prog = parse(&instrumented)?;
    Ok(print_program(&strip_instrumentation(&prog)))
}

/// Injects `probe` into every run's own recorded source and replays each
/// store. Runs whose version lacks the anchor statement return
/// `report: None` rather than failing the whole query.
pub fn replay_runs(
    stores: &[PathBuf],
    probe: &Probe,
    opts: &ReplayOptions,
) -> Result<Vec<RunAnswer>, FlorError> {
    let mut answers = Vec::with_capacity(stores.len());
    for store in stores {
        let src = recorded_source(store)?;
        let report = match probe.apply(&src) {
            Some(probed) => Some(replay(&probed, store, opts)?),
            None => None,
        };
        answers.push(RunAnswer {
            store: store.clone(),
            report,
        });
    }
    Ok(answers)
}

/// Cross-run filter: replays every store with the probe and returns the
/// stores whose hindsight log satisfies `pred` — e.g. "gradient norms
/// exploded".
pub fn find_runs_where(
    stores: &[PathBuf],
    probe: &Probe,
    opts: &ReplayOptions,
    mut pred: impl FnMut(&[LogEntry]) -> bool,
) -> Result<Vec<PathBuf>, FlorError> {
    let answers = replay_runs(stores, probe, opts)?;
    Ok(answers
        .into_iter()
        .filter(|a| a.report.as_ref().map(|r| pred(&r.log)).unwrap_or(false))
        .map(|a| a.store)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{record, tests::opts_exact};

    fn tmproot(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "flor-versions-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Versions of a training script, differing in hyperparameters (like
    /// colleagues' diverging experiment branches). With lr·wd > 2 the decay
    /// update factor goes below -1 and the weights oscillate divergently —
    /// the §2.1 over-regularization failure.
    fn version_src(lr: f64, wd: f64, epochs: u64) -> String {
        format!(
            "\
import flor
data = synth_data(n=48, dim=8, classes=3, spread=0.25, seed=13)
loader = dataloader(data, batch_size=16, seed=13)
net = mlp(input=8, hidden=12, classes=3, depth=1, seed=13)
optimizer = sgd(net, lr={lr}, weight_decay={wd})
criterion = cross_entropy()
avg = meter()
for epoch in range({epochs}):
    avg.reset()
    for batch in loader.epoch():
        w = busy(1)
        optimizer.zero_grad()
        preds = net.forward(batch)
        loss = criterion.forward(preds, batch)
        grad = criterion.backward()
        net.backward(grad)
        optimizer.step()
        avg.update(loss)
    log(\"loss\", avg.mean())
"
        )
    }

    #[test]
    fn probe_applies_at_every_anchor() {
        let probe = Probe::new("optimizer.step()", "log(\"g\", net.grad_norm())");
        let probed = probe
            .apply(&version_src(0.1, 0.0, 4))
            .expect("anchor present");
        assert_eq!(probed.matches("log(\"g\"").count(), 1);
        // Indentation matches the anchor line.
        assert!(probed.contains("        optimizer.step()\n        log(\"g\""));
    }

    #[test]
    fn probe_missing_anchor_returns_none() {
        let probe = Probe::new("nonexistent.call()", "log(\"x\", 1)");
        assert!(probe.apply(&version_src(0.1, 0.0, 4)).is_none());
    }

    #[test]
    fn recorded_source_roundtrips_without_instrumentation() {
        let root = tmproot("srcback");
        let src = version_src(0.1, 0.0, 4);
        record(&src, &opts_exact(&root)).unwrap();
        let back = recorded_source(&root).unwrap();
        assert!(!back.contains("skipblock"));
        assert!(!back.contains("flor.partition"));
        assert_eq!(back, src);
    }

    #[test]
    fn cross_run_query_finds_the_unstable_version() {
        // Record three "versions": two sane, one over-regularized with
        // lr·wd > 2 (the §2.1 instability: weights oscillate divergently).
        let specs = [(0.05, 0.0, 4u64), (3.0, 0.8, 4), (0.1, 0.01, 6)];
        let mut stores = Vec::new();
        for (i, (lr, wd, epochs)) in specs.iter().enumerate() {
            let root = tmproot(&format!("fleet-{i}"));
            record(&version_src(*lr, *wd, *epochs), &opts_exact(&root)).unwrap();
            stores.push(root);
        }
        // Hindsight query: which runs show exploding *weight* magnitudes?
        let probe = Probe::new("optimizer.step()", "log(\"xw\", net.weight_norm())");
        let hits = find_runs_where(&stores, &probe, &ReplayOptions::default(), |log| {
            log.iter()
                .filter(|e| e.key == "xw")
                .filter_map(|e| e.value.parse::<f64>().ok())
                .any(|g| g > 100.0)
        })
        .unwrap();
        assert_eq!(
            hits,
            vec![stores[1].clone()],
            "only the over-regularized run explodes"
        );
    }

    #[test]
    fn versions_lacking_the_anchor_are_skipped_not_failed() {
        let root_a = tmproot("mixed-a");
        record(&version_src(0.1, 0.0, 3), &opts_exact(&root_a)).unwrap();
        // A version that never calls optimizer.step() (evaluation-only).
        let root_b = tmproot("mixed-b");
        let eval_only = "\
import flor
data = synth_data(n=24, dim=8, classes=3, seed=13)
net = mlp(input=8, hidden=12, classes=3, depth=1, seed=13)
acc = evaluate(net, data)
log(\"accuracy\", acc)
";
        record(eval_only, &opts_exact(&root_b)).unwrap();

        let probe = Probe::new("optimizer.step()", "log(\"g\", net.grad_norm())");
        let answers = replay_runs(&[root_a, root_b], &probe, &ReplayOptions::default()).unwrap();
        assert!(answers[0].report.is_some());
        assert!(answers[1].report.is_none(), "anchor absent → skipped");
    }
}
