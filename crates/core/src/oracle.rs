//! Runtime changeset augmentation over the live object graph.
//!
//! Implements `flor-analysis`'s [`TypeOracle`] against the interpreter
//! environment: "This changeset augmentation is done at runtime rather than
//! statically, so Flor has an opportunity to check whether any object in the
//! changeset is an instance of a PyTorch optimizer or learning rate
//! scheduler" (paper §5.2.1).
//!
//! The two encoded library facts become pointer-chasing over `Rc`
//! identities: an optimizer's model field is matched back to whichever
//! environment name binds that same allocation.

use crate::env::Env;
use crate::value::{Obj, Value};
use flor_analysis::TypeOracle;
use std::cell::RefCell;
use std::rc::Rc;

/// A [`TypeOracle`] over a live environment.
pub struct EnvOracle<'a> {
    env: &'a Env,
}

impl<'a> EnvOracle<'a> {
    /// Oracle view of `env`.
    pub fn new(env: &'a Env) -> Self {
        EnvOracle { env }
    }

    /// Finds the environment name bound to exactly this object allocation.
    fn name_of(&self, target: &Rc<RefCell<Obj>>) -> Option<String> {
        let mut names: Vec<&str> = self.env.names().collect();
        names.sort_unstable(); // deterministic resolution
        for name in names {
            if let Some(Value::Obj(rc)) = self.env.try_get(name) {
                if Rc::ptr_eq(rc, target) {
                    return Some(name.to_string());
                }
            }
        }
        None
    }
}

impl TypeOracle for EnvOracle<'_> {
    fn reaches(&self, name: &str) -> Vec<String> {
        let Some(Value::Obj(rc)) = self.env.try_get(name) else {
            return Vec::new();
        };
        let obj = rc.borrow();
        let reached = match &*obj {
            // Fact (a): the model may be updated via the optimizer.
            Obj::Optim { model, .. } => self.name_of(model),
            // Fact (b): the optimizer may be updated via the LR schedule.
            Obj::Sched { optimizer, .. } => self.name_of(optimizer),
            // A loader mutates nothing beyond itself (its dataset is
            // immutable).
            _ => None,
        };
        reached.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flor_analysis::augment_changeset;
    use flor_ml::models::mlp;
    use flor_ml::{Sgd, StepLr};
    use flor_tensor::Pcg64;

    fn env_with_training_objects() -> Env {
        let mut env = Env::new();
        let mut rng = Pcg64::seeded(1);
        let model = Rc::new(RefCell::new(Obj::Model(mlp(4, 8, 2, 1, &mut rng))));
        env.set("net", Value::Obj(model.clone()));
        let optim = Rc::new(RefCell::new(Obj::Optim {
            inner: Box::new(Sgd::new(0.1, 0.9, 0.0)),
            model,
        }));
        env.set("optimizer", Value::Obj(optim.clone()));
        let sched = Rc::new(RefCell::new(Obj::Sched {
            inner: Box::new(StepLr::new(0.1, 2, 0.5)),
            optimizer: optim,
        }));
        env.set("scheduler", Value::Obj(sched));
        env
    }

    #[test]
    fn optimizer_reaches_its_model_by_name() {
        let env = env_with_training_objects();
        let oracle = EnvOracle::new(&env);
        assert_eq!(oracle.reaches("optimizer"), vec!["net".to_string()]);
    }

    #[test]
    fn scheduler_reaches_its_optimizer() {
        let env = env_with_training_objects();
        let oracle = EnvOracle::new(&env);
        assert_eq!(oracle.reaches("scheduler"), vec!["optimizer".to_string()]);
    }

    #[test]
    fn figure6_augmentation_end_to_end() {
        // The paper's Figure 6 final step: {optimizer} → {optimizer, net}.
        let env = env_with_training_objects();
        let oracle = EnvOracle::new(&env);
        let augmented = augment_changeset(&["optimizer".to_string()], &oracle);
        assert_eq!(augmented, vec!["optimizer".to_string(), "net".to_string()]);
    }

    #[test]
    fn scheduler_chain_closes_to_model() {
        let env = env_with_training_objects();
        let oracle = EnvOracle::new(&env);
        let augmented = augment_changeset(&["scheduler".to_string()], &oracle);
        assert_eq!(
            augmented,
            vec![
                "scheduler".to_string(),
                "optimizer".to_string(),
                "net".to_string()
            ]
        );
    }

    #[test]
    fn plain_names_reach_nothing() {
        let mut env = env_with_training_objects();
        env.set("lr", Value::Float(0.1));
        let oracle = EnvOracle::new(&env);
        assert!(oracle.reaches("lr").is_empty());
        assert!(oracle.reaches("undefined").is_empty());
        assert!(oracle.reaches("net").is_empty());
    }

    #[test]
    fn unbound_model_reference_yields_nothing() {
        // Optimizer whose model was never bound to a name: augmentation
        // cannot name it (and the checkpoint would be flagged by deferred
        // checks if that mattered).
        let mut env = Env::new();
        let mut rng = Pcg64::seeded(2);
        let anon_model = Rc::new(RefCell::new(Obj::Model(mlp(4, 8, 2, 1, &mut rng))));
        env.set(
            "optimizer",
            Value::obj(Obj::Optim {
                inner: Box::new(Sgd::new(0.1, 0.0, 0.0)),
                model: anon_model,
            }),
        );
        let oracle = EnvOracle::new(&env);
        assert!(oracle.reaches("optimizer").is_empty());
    }
}
