//! The native Rust API: hindsight logging for Rust programs.
//!
//! The script layer reproduces the paper's zero-friction Python story; this
//! module is what a downstream *Rust* user would actually embed. The shape
//! is the same — wrap your expensive loop bodies in [`Session::skip_block`],
//! declare the state they mutate via [`Checkpointable`], and log through
//! [`Session::log`]:
//!
//! ```
//! use flor_core::native::{Checkpointable, Session, SessionKind};
//! use flor_chkpt::CVal;
//!
//! struct Weights(Vec<f64>);
//! impl Checkpointable for Weights {
//!     fn to_cval(&self) -> CVal {
//!         CVal::List(self.0.iter().map(|&x| CVal::F64(x)).collect())
//!     }
//!     fn from_cval(&mut self, v: &CVal) -> Result<(), String> {
//!         match v {
//!             CVal::List(xs) => {
//!                 self.0 = xs.iter().map(|x| match x {
//!                     CVal::F64(f) => Ok(*f),
//!                     _ => Err("bad entry".to_string()),
//!                 }).collect::<Result<_, _>>()?;
//!                 Ok(())
//!             }
//!             _ => Err("expected list".into()),
//!         }
//!     }
//! }
//!
//! let dir = std::env::temp_dir().join(format!("flor-native-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let mut state = Weights(vec![0.0; 4]);
//!
//! // Record: the block executes and its end state is checkpointed.
//! // (`record_with(…, false)` disables adaptivity so this toy block — whose
//! // compute time is negligible — is still checkpointed every iteration.)
//! let mut session = Session::record_with(&dir, 1.0 / 15.0, false).unwrap();
//! for epoch in 0..3 {
//!     session.begin_iter(epoch);
//!     session.skip_block("train", &mut state, |w| {
//!         for x in &mut w.0 { *x += 1.0; }
//!     }).unwrap();
//!     session.log("epoch", &format!("{epoch}"));
//! }
//! session.finish().unwrap();
//!
//! // Replay, unprobed: blocks restore from checkpoints instead of running.
//! let mut state2 = Weights(vec![0.0; 4]);
//! let mut session = Session::replay(&dir, &[]).unwrap();
//! for epoch in 0..3 {
//!     session.begin_iter(epoch);
//!     let ran = session.skip_block("train", &mut state2, |w| {
//!         for x in &mut w.0 { *x += 1.0; }
//!     }).unwrap();
//!     assert!(!ran, "unprobed block must restore, not execute");
//! }
//! assert_eq!(state2.0, vec![3.0; 4]);
//! ```

use crate::adaptive::{AdaptiveController, DEFAULT_EPSILON};
use crate::error::{rt, FlorError};
use crate::logstream::{LogEntry, LogStream, Section};
use flor_chkpt::{
    encode, encode_into, BytesMut, CVal, CheckpointStore, Materializer, Payload, SerializeSnapshot,
    Strategy,
};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// State a native SkipBlock can memoize.
pub trait Checkpointable {
    /// Lowers the state to a checkpointable tree.
    fn to_cval(&self) -> CVal;
    /// Restores the state from a tree produced by `to_cval`.
    #[allow(clippy::wrong_self_convention)]
    fn from_cval(&mut self, v: &CVal) -> Result<(), String>;
}

/// Whether a session records or replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionKind {
    /// Executing and checkpointing.
    Record,
    /// Restoring-or-executing against an existing store.
    Replay,
}

struct NativeSnapshot(CVal);

impl SerializeSnapshot for NativeSnapshot {
    fn serialize(&self) -> Vec<u8> {
        encode(&self.0)
    }
    fn serialize_into(&self, buf: &mut BytesMut) {
        encode_into(&self.0, buf);
    }
    fn approx_bytes(&self) -> usize {
        self.0.approx_bytes()
    }
}

/// A native hindsight-logging session.
pub struct Session {
    kind: SessionKind,
    store: Arc<CheckpointStore>,
    materializer: Option<Materializer>,
    controller: AdaptiveController,
    probed: Vec<String>,
    log: LogStream,
    iter: Option<u64>,
    standalone_seq: HashMap<String, u64>,
    restored: u64,
    executed: u64,
}

impl Session {
    /// Opens a record session rooted at `dir` with adaptive checkpointing
    /// (Eq. 4 may skip checkpoints for blocks whose compute time does not
    /// dominate their state size — replay then re-executes those blocks,
    /// which is still correct, just slower).
    pub fn record(dir: impl AsRef<Path>) -> Result<Self, FlorError> {
        Self::record_with(dir, DEFAULT_EPSILON, true)
    }

    /// Opens a record session with explicit controls. `adaptive = false`
    /// checkpoints every block execution regardless of cost (useful when
    /// deterministic restore behaviour matters more than record overhead).
    pub fn record_with(
        dir: impl AsRef<Path>,
        epsilon: f64,
        adaptive: bool,
    ) -> Result<Self, FlorError> {
        let store = Arc::new(CheckpointStore::open(dir.as_ref())?);
        let mut controller = AdaptiveController::new(epsilon);
        if !adaptive {
            controller = controller.with_adaptivity_disabled();
        }
        Ok(Session {
            kind: SessionKind::Record,
            store: store.clone(),
            materializer: Some(Materializer::new(store, Strategy::ForkBatched, 2)),
            controller,
            probed: Vec::new(),
            log: LogStream::new(),
            iter: None,
            standalone_seq: HashMap::new(),
            restored: 0,
            executed: 0,
        })
    }

    /// Opens a replay session against an existing store. `probed` names the
    /// blocks whose internals you want to observe — they will re-execute;
    /// everything else restores from checkpoints.
    pub fn replay(dir: impl AsRef<Path>, probed: &[&str]) -> Result<Self, FlorError> {
        let store = Arc::new(CheckpointStore::open(dir.as_ref())?);
        Ok(Session {
            kind: SessionKind::Replay,
            store,
            materializer: None,
            controller: AdaptiveController::new(DEFAULT_EPSILON),
            probed: probed.iter().map(|s| s.to_string()).collect(),
            log: LogStream::new(),
            iter: None,
            standalone_seq: HashMap::new(),
            restored: 0,
            executed: 0,
        })
    }

    /// Marks the start of main-loop iteration `g` (sequence numbers and log
    /// sections follow it).
    pub fn begin_iter(&mut self, g: u64) {
        self.iter = Some(g);
        self.log.set_section(Section::Iter(g));
    }

    /// Marks the end of the main loop.
    pub fn end_loop(&mut self) {
        self.iter = None;
        self.log.set_section(Section::Post);
    }

    /// Appends to the session log.
    pub fn log(&mut self, key: &str, value: &str) {
        self.log.log(key, value);
    }

    /// Runs (or restores) a SkipBlock over `state`. Returns `true` if the
    /// body executed, `false` if the state was restored from a checkpoint.
    pub fn skip_block<S: Checkpointable>(
        &mut self,
        id: &str,
        state: &mut S,
        body: impl FnOnce(&mut S),
    ) -> Result<bool, FlorError> {
        let seq = match self.iter {
            Some(g) => g,
            None => {
                let c = self.standalone_seq.entry(id.to_string()).or_insert(0);
                let seq = (1u64 << 48) + *c;
                *c += 1;
                seq
            }
        };
        match self.kind {
            SessionKind::Record => {
                let t0 = flor_obs::clock::now_ns();
                body(state);
                let compute_ns = flor_obs::clock::since_ns(t0);
                let cval = state.to_cval();
                let bytes = cval.approx_bytes() as u64;
                let est = self.controller.estimate_materialize_ns(id, bytes);
                if self.controller.should_materialize(id, compute_ns, est) {
                    let t1 = flor_obs::clock::now_ns();
                    let mat = self
                        .materializer
                        .as_ref()
                        .expect("record session has a materializer");
                    mat.submit(id, seq, Payload::Deferred(Arc::new(NativeSnapshot(cval))));
                    self.controller.observe_materialize(
                        id,
                        flor_obs::clock::since_ns(t1).max(1),
                        bytes,
                    );
                    // Same ε-driven effort tuning as the interpreter path
                    // (see `skipblock::exec_record`).
                    if self.controller.is_adaptive() {
                        let overhead = self.controller.record_overhead();
                        let eps = self.controller.epsilon();
                        let effort = self.store.compression_effort();
                        if overhead > eps && effort > flor_chkpt::compress::MIN_EFFORT {
                            self.store.set_compression_effort(effort - 1);
                        } else if overhead < 0.5 * eps && effort < flor_chkpt::compress::MAX_EFFORT
                        {
                            self.store.set_compression_effort(effort + 1);
                        }
                    }
                }
                self.executed += 1;
                Ok(true)
            }
            SessionKind::Replay => {
                let probed = self.probed.iter().any(|p| p == id);
                if !probed && self.store.contains(id, seq) {
                    let t0 = flor_obs::clock::now_ns();
                    let payload = self.store.get(id, seq)?;
                    let cval = flor_chkpt::decode(&payload)?;
                    state.from_cval(&cval).map_err(rt)?;
                    self.controller
                        .observe_restore(id, flor_obs::clock::since_ns(t0));
                    self.restored += 1;
                    Ok(false)
                } else {
                    body(state);
                    self.executed += 1;
                    Ok(true)
                }
            }
        }
    }

    /// Blocks restored so far.
    pub fn restored(&self) -> u64 {
        self.restored
    }

    /// Blocks executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Entries logged so far.
    pub fn entries(&self) -> &[LogEntry] {
        self.log.entries()
    }

    /// Finishes the session: flushes background writes (record) and
    /// persists the session log artifact. Returns the log.
    pub fn finish(mut self) -> Result<Vec<LogEntry>, FlorError> {
        if let Some(mat) = self.materializer.take() {
            mat.flush();
            drop(mat);
            self.store
                .put_artifact("native_record_log.txt", self.log.to_text().as_bytes())?;
        }
        Ok(self.log.into_entries())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(i64);

    impl Checkpointable for Counter {
        fn to_cval(&self) -> CVal {
            CVal::I64(self.0)
        }
        fn from_cval(&mut self, v: &CVal) -> Result<(), String> {
            match v {
                CVal::I64(x) => {
                    self.0 = *x;
                    Ok(())
                }
                _ => Err("expected i64".into()),
            }
        }
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "flor-native-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn record_run(dir: &std::path::Path, epochs: u64) -> Vec<LogEntry> {
        let mut state = Counter(0);
        // Adaptivity off: the toy blocks are far cheaper than any
        // checkpoint, and these tests assert deterministic restores.
        let mut s = Session::record_with(dir, 1.0 / 15.0, false).unwrap();
        for g in 0..epochs {
            s.begin_iter(g);
            s.skip_block("train", &mut state, |c| c.0 += 10).unwrap();
            s.log("count", &state.0.to_string());
        }
        s.end_loop();
        s.log("final", &state.0.to_string());
        s.finish().unwrap()
    }

    #[test]
    fn record_replay_roundtrip() {
        let dir = tmpdir("roundtrip");
        let rec_log = record_run(&dir, 5);

        let mut state = Counter(0);
        let mut s = Session::replay(&dir, &[]).unwrap();
        for g in 0..5 {
            s.begin_iter(g);
            let ran = s.skip_block("train", &mut state, |c| c.0 += 10).unwrap();
            assert!(!ran);
            s.log("count", &state.0.to_string());
        }
        s.end_loop();
        s.log("final", &state.0.to_string());
        assert_eq!(s.restored(), 5);
        let rep_log = s.finish().unwrap();
        assert_eq!(rec_log, rep_log);
    }

    #[test]
    fn probed_block_executes_on_replay() {
        let dir = tmpdir("probed");
        record_run(&dir, 3);
        let mut state = Counter(0);
        let mut s = Session::replay(&dir, &["train"]).unwrap();
        for g in 0..3 {
            s.begin_iter(g);
            let ran = s.skip_block("train", &mut state, |c| c.0 += 10).unwrap();
            assert!(ran, "probed block must execute");
        }
        assert_eq!(state.0, 30);
        assert_eq!(s.executed(), 3);
    }

    #[test]
    fn missing_checkpoints_fall_back_to_execution() {
        let dir = tmpdir("fresh");
        let mut state = Counter(0);
        let mut s = Session::replay(&dir, &[]).unwrap();
        s.begin_iter(0);
        let ran = s
            .skip_block("never_recorded", &mut state, |c| c.0 = 7)
            .unwrap();
        assert!(ran);
        assert_eq!(state.0, 7);
    }

    #[test]
    fn standalone_blocks_sequence_independently() {
        let dir = tmpdir("standalone");
        let mut state = Counter(0);
        let mut s = Session::record_with(&dir, 1.0 / 15.0, false).unwrap();
        // No begin_iter: standalone sequencing.
        s.skip_block("pre", &mut state, |c| c.0 += 1).unwrap();
        s.skip_block("pre", &mut state, |c| c.0 += 1).unwrap();
        s.finish().unwrap();

        let mut state2 = Counter(0);
        let mut s = Session::replay(&dir, &[]).unwrap();
        s.skip_block("pre", &mut state2, |c| c.0 += 1).unwrap();
        s.skip_block("pre", &mut state2, |c| c.0 += 1).unwrap();
        assert_eq!(state2.0, 2);
        assert_eq!(s.restored(), 2);
    }
}
