//! Sampling replay and replay-time search (paper §8, "Partial Replay:
//! Search and Approximation").
//!
//! "In many cases the user may be interested in only partial information
//! […] As a proof of concept, we implemented iteration sampling in Flor
//! replay. Sampling replay relies on the same initialization mechanism as
//! parallel replay, which provides random-access to any iteration of the
//! main loop. Random access to loop iterations enables Flor to schedule the
//! order of traversal (e.g. for binary search)."
//!
//! [`replay_sample`] replays only the requested main-loop iterations,
//! jump-initializing each from the nearest checkpoint anchor.
//! [`binary_search`] exploits the random access: given a monotone predicate
//! over a single iteration's hindsight output (e.g. "has the loss
//! converged?"), it finds the first satisfying iteration in O(log n)
//! sampled replays instead of a full scan.

use crate::error::FlorError;
use crate::interp::{Interp, Mode, Phase, ReplayCtx, ReplayStats};
use crate::logstream::{LogEntry, Section};
use crate::parallel::InitMode;
use crate::replay::ReplayReport;
use flor_analysis::instrument::instrument;
use flor_chkpt::CheckpointStore;
use flor_lang::{diff_programs, parse};
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::Arc;

/// Replays only the given main-loop iterations (any order; duplicates are
/// collapsed). The returned report's log contains entries for exactly the
/// sampled iterations (plus preamble).
pub fn replay_sample(
    new_src: &str,
    store_root: impl Into<PathBuf>,
    iterations: &[u64],
) -> Result<ReplayReport, FlorError> {
    let store = Arc::new(CheckpointStore::open(store_root.into())?);
    let recorded_src = String::from_utf8(store.get_artifact("source.flr")?)
        .map_err(|_| crate::error::rt("recorded source is not valid UTF-8"))?;
    let recorded_prog = parse(&recorded_src)?;
    let new_prog = parse(new_src)?;
    let inst = instrument(&new_prog);
    let diff = diff_programs(&recorded_prog, &inst.program);
    let probed_blocks: HashSet<String> = diff
        .probes
        .iter()
        .filter_map(|p| p.skipblock_id.clone())
        .collect();
    let force_execute_all = !diff.is_pure_hindsight();
    let main_blocks = crate::replay::main_loop_blocks(&inst.program);

    let mut sample: Vec<u64> = iterations.to_vec();
    sample.sort_unstable();
    sample.dedup();

    let t0 = flor_obs::clock::now_ns();
    let ctx = ReplayCtx {
        store,
        pid: 0,
        workers: 1,
        init_mode: InitMode::Weak,
        probed_blocks,
        force_execute_all,
        // Sampling replays are single-worker with no range queue — no
        // steals, so rewind soundness never comes up.
        outer_carried: false,
        main_blocks,
        phase: Phase::Work,
        main_iter: None,
        standalone_seq: HashMap::new(),
        blocks_this_iter: HashSet::new(),
        stats: ReplayStats::default(),
        plan_used: None,
        sample: Some(sample),
        prefetcher: None,
        runtime: None,
        sink: None,
    };
    let mut interp = Interp::new(Mode::Replay(Box::new(ctx)));
    interp.run(&inst.program)?;
    let Mode::Replay(ctx) = interp.mode else {
        unreachable!()
    };
    Ok(ReplayReport {
        log: interp.log.into_entries(),
        probes: diff.probes,
        other_changes: diff.other_changes,
        anomalies: Vec::new(), // sampled output is partial by design
        stats: ctx.stats,
        wall_ns: flor_obs::clock::since_ns(t0),
        worker_plans: vec![None],
    })
}

/// Extracts a sampled iteration's entries from a report.
pub fn iteration_entries(report: &ReplayReport, g: u64) -> Vec<&LogEntry> {
    report
        .log
        .iter()
        .filter(|e| e.section == Section::Iter(g))
        .collect()
}

/// Binary search over main-loop iterations: finds the **first** iteration
/// in `[0, n_iters)` whose hindsight output satisfies `pred`, assuming
/// `pred` is monotone (false … false, true … true) along the run — the
/// paper's convergence-detection example. Returns `None` if no iteration
/// satisfies it.
///
/// Each probe costs one single-iteration sampled replay, so the total cost
/// is O(log n) sampled replays instead of a full sequential scan.
pub fn binary_search(
    new_src: &str,
    store_root: impl Into<PathBuf> + Clone,
    n_iters: u64,
    mut pred: impl FnMut(&[&LogEntry]) -> bool,
) -> Result<Option<u64>, FlorError> {
    let mut lo = 0u64;
    let mut hi = n_iters; // invariant: pred true at all known ≥ hi
    let mut found = None;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let report = replay_sample(new_src, store_root.clone(), &[mid])?;
        let entries = iteration_entries(&report, mid);
        if pred(&entries) {
            found = Some(mid);
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Ok(found)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{record, tests::opts_exact, tests::TRAIN_SRC};
    use crate::replay::{replay, ReplayOptions};

    fn tmproot(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "flor-sample-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn inner_probed() -> String {
        TRAIN_SRC.replace(
            "        optimizer.step()\n",
            "        optimizer.step()\n        log(\"probe_g\", net.grad_norm())\n",
        )
    }

    #[test]
    fn sampled_iterations_match_full_replay() {
        let root = tmproot("match");
        record(TRAIN_SRC, &opts_exact(&root)).unwrap();
        let probed = inner_probed();
        let full = replay(&probed, &root, &ReplayOptions::default()).unwrap();
        for g in [0u64, 2, 5] {
            let sampled = replay_sample(&probed, &root, &[g]).unwrap();
            let s_entries: Vec<&LogEntry> = iteration_entries(&sampled, g);
            let f_entries: Vec<&LogEntry> = full
                .log
                .iter()
                .filter(|e| e.section == Section::Iter(g))
                .collect();
            assert_eq!(s_entries, f_entries, "iteration {g}");
        }
    }

    #[test]
    fn sampled_replay_touches_only_requested_iterations() {
        let root = tmproot("touch");
        record(TRAIN_SRC, &opts_exact(&root)).unwrap();
        let probed = inner_probed();
        let sampled = replay_sample(&probed, &root, &[4]).unwrap();
        // Only iteration 4 has visible entries.
        let visible: std::collections::BTreeSet<u64> = sampled
            .log
            .iter()
            .filter_map(|e| match e.section {
                Section::Iter(g) => Some(g),
                _ => None,
            })
            .collect();
        assert_eq!(visible, [4u64].into_iter().collect());
        // One probed execution (iteration 4); with every epoch
        // checkpointed, the jump initialization restores exactly one
        // checkpoint (epoch 3's Loop End Checkpoint).
        assert_eq!(sampled.stats.executed, 1);
        assert_eq!(sampled.stats.restored, 1);
    }

    #[test]
    fn multiple_samples_in_one_pass() {
        let root = tmproot("multi");
        record(TRAIN_SRC, &opts_exact(&root)).unwrap();
        let probed = inner_probed();
        let sampled = replay_sample(&probed, &root, &[5, 1, 3, 3]).unwrap();
        let visible: std::collections::BTreeSet<u64> = sampled
            .log
            .iter()
            .filter_map(|e| match e.section {
                Section::Iter(g) => Some(g),
                _ => None,
            })
            .collect();
        assert_eq!(visible, [1u64, 3, 5].into_iter().collect());
        assert_eq!(sampled.stats.executed, 3, "three sampled executions");
    }

    #[test]
    fn binary_search_finds_convergence_epoch() {
        let root = tmproot("search");
        record(TRAIN_SRC, &opts_exact(&root)).unwrap();
        // Ground truth from a full replay: first epoch with loss < 0.5.
        let full = replay(TRAIN_SRC, &root, &ReplayOptions::default()).unwrap();
        let losses: Vec<(u64, f64)> = full
            .log
            .iter()
            .filter(|e| e.key == "loss")
            .map(|e| {
                let g = match e.section {
                    Section::Iter(g) => g,
                    _ => unreachable!(),
                };
                (g, e.value.parse().unwrap())
            })
            .collect();
        let expected = losses.iter().find(|(_, l)| *l < 0.5).map(|(g, _)| *g);
        assert!(expected.is_some(), "training should converge: {losses:?}");
        // Loss is monotone decreasing here, so the predicate is monotone.
        let found = binary_search(TRAIN_SRC, &root, 6, |entries| {
            entries
                .iter()
                .find(|e| e.key == "loss")
                .and_then(|e| e.value.parse::<f64>().ok())
                .map(|l| l < 0.5)
                .unwrap_or(false)
        })
        .unwrap();
        assert_eq!(found, expected);
    }

    #[test]
    fn binary_search_none_when_never_satisfied() {
        let root = tmproot("never");
        record(TRAIN_SRC, &opts_exact(&root)).unwrap();
        let found = binary_search(TRAIN_SRC, &root, 6, |_| false).unwrap();
        assert_eq!(found, None);
    }

    #[test]
    fn out_of_range_samples_ignored() {
        let root = tmproot("oob");
        record(TRAIN_SRC, &opts_exact(&root)).unwrap();
        let sampled = replay_sample(TRAIN_SRC, &root, &[2, 999]).unwrap();
        let visible: Vec<u64> = sampled
            .log
            .iter()
            .filter_map(|e| match e.section {
                Section::Iter(g) => Some(g),
                _ => None,
            })
            .collect();
        assert_eq!(visible, vec![2]);
    }
}
