//! The FlorScript interpreter and its ML builtin surface.
//!
//! A tree-walking evaluator with Python reference semantics over
//! [`crate::value::Value`]. Three execution modes share one code path:
//!
//! - **Vanilla** — plain execution; SkipBlocks are transparent and
//!   `flor.partition` is the identity. Used as the paper's "vanilla
//!   execution" baseline.
//! - **Record** — SkipBlocks memoize their loop's side-effects through the
//!   adaptive controller and background materializer (paper §3.1).
//! - **Replay** — SkipBlocks restore-or-execute depending on probes and
//!   checkpoint availability; `flor.partition` partitions the main loop
//!   across workers with strong or weak initialization (paper §3.2, §5.4).
//!
//! The builtin surface mirrors the PyTorch-style API the paper's analysis
//! assumes: model constructors, `sgd`/`adam`, schedulers, data loaders, and
//! the `log(...)` primitive that writes the observable log stream.

use crate::adaptive::AdaptiveController;
use crate::env::Env;
use crate::error::{rt, FlorError};
use crate::logstream::{LogStream, Section};
use crate::parallel::{InitMode, WorkerPlan};
use crate::skipblock;
use crate::value::{Batch, DatasetObj, Obj, Value};
use flor_chkpt::{CheckpointStore, Materializer};
use flor_lang::ast::{Arg, BinOp, Expr, Program, Stmt, UnaryOp};
use flor_ml::metrics::{accuracy, Meter};
use flor_ml::models;
use flor_ml::swa::SwaAverager;
use flor_ml::{
    Adam, CosineLr, CrossEntropyLoss, CyclicLr, DataLoader, Sgd, StepLr, SyntheticClassification,
    SyntheticTokens,
};
use flor_tensor::{Pcg64, Tensor};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::rc::Rc;
use std::sync::Arc;

/// Which phase of parallel replay a worker is in (paper §5.4.2–5.4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Reconstructing the starting state: SkipBlocks restore, logs are
    /// suppressed.
    Init,
    /// Processing the worker's own share of iterations.
    Work,
}

/// Record-mode state.
pub struct RecordCtx {
    /// Checkpoint destination.
    pub store: Arc<CheckpointStore>,
    /// Background writer.
    pub materializer: Materializer,
    /// Adaptive checkpointing controller (Eq. 4).
    pub controller: AdaptiveController,
    /// Per-block static changesets from instrumentation.
    pub static_changesets: HashMap<String, Vec<String>>,
    /// Lean checkpointing: when false, checkpoint the whole environment
    /// (the ablation baseline for §5.2).
    pub lean: bool,
    /// Current main-loop iteration, if inside the main loop.
    pub main_iter: Option<u64>,
    /// Sequence counters for blocks outside the main loop.
    pub standalone_seq: HashMap<String, u64>,
    /// Guard: blocks already executed in the current main-loop iteration.
    pub blocks_this_iter: HashSet<String>,
    /// Per-iteration cost observations, persisted as the run's
    /// [`cost profile`](crate::profile::CostProfile) so replay can schedule
    /// cost-aware micro-ranges.
    pub profile: crate::profile::ProfileBuilder,
}

/// Replay statistics for reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// SkipBlock executions satisfied by restoring a checkpoint.
    pub restored: u64,
    /// SkipBlock executions that re-executed the loop.
    pub executed: u64,
    /// Total time spent restoring, ns.
    pub restore_ns: u64,
    /// Restores whose payload the worker's prefetcher had already read
    /// (segment I/O overlapped with interpretation).
    pub prefetch_hits: u64,
    /// Micro-ranges that moved between workers (0 without `--steal`).
    pub steals: u64,
    /// Micro-ranges executed across all workers (equals the active worker
    /// count under static partitioning).
    pub ranges_executed: u64,
    /// Time until the streaming merger emitted its first record-order log
    /// entry, ns from replay start (0 when nothing was emitted). Always
    /// strictly below the replay wall time when any worker produced output
    /// before the last one finished — the streaming-merge win.
    pub stream_first_entry_ns: u64,
    /// Restores that resolved a delta-chain entry (store-level counter,
    /// attributed to this replay).
    pub delta_restores: u64,
    /// Delta links decoded across those restores (≈ `delta_restores` when
    /// the store's restore cache rides sequential partitions).
    pub chain_links: u64,
    /// Statement nodes the dependency slicer elided from execution
    /// (0 when slicing was off, refused, or found nothing dead).
    pub statements_elided: u64,
    /// Live fraction of the sliceable region in permille; 1000 means the
    /// full program ran (slicing off or nothing elidable).
    pub slice_permille: u32,
    /// Queries answered from the content-addressed slice cache instead
    /// of replaying (registry-level, attributed to the query's stats).
    pub slice_cache_hits: u64,
}

impl ReplayStats {
    /// Live region fraction as a ratio in `[0, 1]`, treating an unset
    /// (zero) permille as "nothing elided".
    pub fn slice_fraction(&self) -> f64 {
        if self.slice_permille == 0 {
            1.0
        } else {
            f64::from(self.slice_permille) / 1000.0
        }
    }
}

/// Replay-mode state for one worker.
pub struct ReplayCtx {
    /// Checkpoint source.
    pub store: Arc<CheckpointStore>,
    /// This worker's id.
    pub pid: usize,
    /// Total workers.
    pub workers: usize,
    /// Strong or weak initialization.
    pub init_mode: InitMode,
    /// SkipBlocks probed by hindsight log statements.
    pub probed_blocks: HashSet<String>,
    /// Non-hindsight source changes detected: no checkpoint may be reused.
    pub force_execute_all: bool,
    /// The main loop carries state across iterations outside every
    /// skipblock (`analysis::outer_carried_state`): a rewound prefix
    /// would roll it forward from already-advanced values, so backward
    /// steals are disabled.
    pub outer_carried: bool,
    /// SkipBlock ids that live inside the main loop (participate in
    /// anchor-based weak-init planning).
    pub main_blocks: Vec<String>,
    /// Current phase.
    pub phase: Phase,
    /// Current main-loop iteration.
    pub main_iter: Option<u64>,
    /// Sequence counters for blocks outside the main loop.
    pub standalone_seq: HashMap<String, u64>,
    /// Guard: blocks already executed in the current iteration.
    pub blocks_this_iter: HashSet<String>,
    /// Restore/execute counters.
    pub stats: ReplayStats,
    /// The partition this worker ended up executing (set by the main loop).
    pub plan_used: Option<WorkerPlan>,
    /// Sampling replay (paper §8): when set, visit only these main-loop
    /// iterations (sorted, deduplicated), jump-initializing each from the
    /// nearest checkpoint anchor. Overrides partition-based planning.
    pub sample: Option<Vec<u64>>,
    /// Per-worker checkpoint prefetcher, spawned once the worker's plan is
    /// fixed so segment reads overlap with interpretation (re-targeted per
    /// micro-range under the work-stealing executor).
    pub prefetcher: Option<crate::prefetch::Prefetcher>,
    /// Shared work-stealing runtime (cost-aware micro-range queue). `None`
    /// falls back to static per-worker partitioning via
    /// [`crate::parallel::plan`] — the pre-refactor behavior, kept for
    /// direct interpreter embedding.
    pub runtime: Option<Arc<crate::replay::ReplayRuntime>>,
    /// Channel to the streaming merger: completed ranges are drained from
    /// the log and sent as soon as they finish.
    pub sink: Option<crate::stream::RangeSink>,
}

impl ReplayCtx {
    /// Iterations `g` at which every main-loop block has a Loop End
    /// Checkpoint — the only places weak initialization may start a work
    /// segment after (paper §5.4.2: weak init "depends entirely on a
    /// checkpoint").
    pub fn anchors(&self, n_iters: u64) -> BTreeSet<u64> {
        let mut anchors = BTreeSet::new();
        anchors.insert(0);
        if self.main_blocks.is_empty() {
            // No memoized blocks: any boundary is as good as any other
            // (workers re-execute from scratch anyway).
            anchors.extend(1..n_iters);
            return anchors;
        }
        for g in 0..n_iters.saturating_sub(1) {
            if self.main_blocks.iter().all(|b| self.store.contains(b, g)) {
                anchors.insert(g + 1);
            }
        }
        anchors
    }
}

/// Execution mode.
pub enum Mode {
    /// Plain execution (the vanilla baseline).
    Vanilla,
    /// Record with checkpointing.
    Record(Box<RecordCtx>),
    /// Replay worker.
    Replay(Box<ReplayCtx>),
}

/// A main-loop body, abstracted over the executor: the tree-walker
/// re-walks the statement list per iteration; the VM re-enters a
/// compiled instruction range at an iteration boundary (which is what
/// lets stolen ranges resume from checkpoint-restored slots).
pub(crate) enum LoopBody<'a> {
    /// Walk the AST statements.
    Tree {
        /// Loop variable name.
        var: &'a str,
        /// Body statements.
        body: &'a [Stmt],
    },
    /// Execute a compiled instruction range on the VM.
    Vm {
        /// Loop-variable frame slot.
        var_slot: u16,
        /// First instruction of the body.
        start: usize,
        /// One past the last instruction of the body.
        end: usize,
    },
}

/// The interpreter.
pub struct Interp {
    /// Global variable bindings.
    pub env: Env,
    /// The observable log stream.
    pub log: LogStream,
    /// Execution mode.
    pub mode: Mode,
    /// Counter deriving default seeds for constructors without an explicit
    /// `seed=` kwarg (deterministic across runs).
    ctor_counter: u64,
    /// Live VM frame when executing compiled bytecode (`None` under the
    /// tree-walker). Boxed so the tree-walking fast path pays one
    /// pointer.
    pub(crate) vm: Option<Box<crate::vm::VmFrame>>,
}

impl Interp {
    /// New interpreter in the given mode.
    pub fn new(mode: Mode) -> Self {
        Interp {
            env: Env::new(),
            log: LogStream::new(),
            mode,
            ctor_counter: 0,
            vm: None,
        }
    }

    /// Runs a whole program.
    pub fn run(&mut self, prog: &Program) -> Result<(), FlorError> {
        self.exec_body(&prog.body)?;
        if let Mode::Record(ctx) = &mut self.mode {
            ctx.materializer.flush();
        }
        Ok(())
    }

    /// Executes a statement sequence.
    pub fn exec_body(&mut self, body: &[Stmt]) -> Result<(), FlorError> {
        for stmt in body {
            self.exec_stmt(stmt)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, stmt: &Stmt) -> Result<(), FlorError> {
        match stmt {
            Stmt::Import { .. } | Stmt::Pass => Ok(()),
            Stmt::Assign { targets, value } => {
                let v = self.eval(value)?;
                self.assign(targets, v)
            }
            Stmt::ExprStmt { expr } => {
                self.eval(expr)?;
                Ok(())
            }
            Stmt::If { cond, then, orelse } => {
                if self.eval(cond)?.truthy() {
                    self.exec_body(then)
                } else {
                    self.exec_body(orelse)
                }
            }
            Stmt::SkipBlock { id, body } => skipblock::exec_skipblock(self, id, body),
            Stmt::For { var, iter, body } => {
                // The main loop: `for v in flor.partition(inner):`.
                if let Expr::Call { func, args } = iter {
                    if let Expr::Attr { obj, name } = func.as_ref() {
                        if name == "partition" && obj.as_name() == Some("flor") && args.len() == 1 {
                            return self.exec_main_loop(var, &args[0].value, body);
                        }
                    }
                }
                let items = self.eval_to_items(iter)?;
                for item in items {
                    self.env.set(var.clone(), item);
                    self.exec_body(body)?;
                }
                Ok(())
            }
        }
    }

    fn eval_to_items(&mut self, iter: &Expr) -> Result<Vec<Value>, FlorError> {
        let v = self.eval(iter)?;
        items_of(v)
    }

    /// Executes the partition-wrapped main loop (paper Figures 8 & 9).
    fn exec_main_loop(&mut self, var: &str, inner: &Expr, body: &[Stmt]) -> Result<(), FlorError> {
        let items = self.eval_to_items(inner)?;
        self.exec_main_loop_impl(&LoopBody::Tree { var, body }, items)
    }

    /// Runs one main-loop iteration: section/iter bookkeeping, bind the
    /// loop variable, execute the body — on whichever executor `lb`
    /// names (tree-walker or VM bytecode range).
    fn run_loop_iter(&mut self, lb: &LoopBody<'_>, g: u64, item: Value) -> Result<(), FlorError> {
        self.enter_iter(g);
        match lb {
            LoopBody::Tree { var, body } => {
                self.env.set(var.to_string(), item);
                self.exec_body(body)
            }
            LoopBody::Vm {
                var_slot,
                start,
                end,
            } => {
                self.vm_set_slot(*var_slot, item);
                self.vm_run_range(*start, *end)
            }
        }
    }

    /// The mode dispatch behind [`Self::exec_main_loop`], shared by the
    /// tree-walker and the VM's `MainLoop` op: the four replay shapes
    /// (sequential, sampled, work-stealing, static partition) are
    /// executor-agnostic once iteration execution is behind
    /// [`LoopBody`].
    pub(crate) fn exec_main_loop_impl(
        &mut self,
        lb: &LoopBody<'_>,
        items: Vec<Value>,
    ) -> Result<(), FlorError> {
        let n = items.len() as u64;
        match &mut self.mode {
            Mode::Vanilla | Mode::Record(_) => {
                for g in 0..n {
                    self.run_loop_iter(lb, g, items[g as usize].clone())?;
                }
                self.exit_main_loop();
                Ok(())
            }
            Mode::Replay(ctx) if ctx.sample.is_some() => {
                // Sampling replay (paper §8): visit only the sampled
                // iterations. Each visit jump-initializes from the nearest
                // checkpoint anchor at or before it, re-executing any gap.
                let samples: Vec<u64> = ctx
                    .sample
                    .clone()
                    .unwrap()
                    .into_iter()
                    .filter(|&g| g < n)
                    .collect();
                let anchors = ctx.anchors(n);
                // State progress: iterations already reflected in program
                // state (exclusive upper bound).
                let mut state_at = 0u64;
                let mut first = true;
                for &g in &samples {
                    // Two ways to reach the state at the start of iteration
                    // g: continue forward from the current state, or jump to
                    // the nearest anchor a ≤ g (an anchor a > 0 means the
                    // Loop End Checkpoint of iteration a-1 exists, so
                    // initialization starts at a-1 to restore it). Pick
                    // whichever needs fewer initialization iterations.
                    let anchor = anchors.range(..=g).next_back().copied().unwrap_or(0);
                    let jump_from = anchor.saturating_sub(1);
                    let continue_cost = if !first && state_at <= g {
                        Some(g - state_at)
                    } else {
                        None
                    };
                    let init_from = match continue_cost {
                        Some(cc) if cc <= g - jump_from => state_at,
                        _ => jump_from,
                    };
                    if let Mode::Replay(ctx) = &mut self.mode {
                        ctx.phase = Phase::Init;
                    }
                    self.log.set_suppressed(true);
                    for j in init_from..g {
                        self.run_loop_iter(lb, j, items[j as usize].clone())?;
                    }
                    self.log.set_suppressed(false);
                    if let Mode::Replay(ctx) = &mut self.mode {
                        ctx.phase = Phase::Work;
                    }
                    self.run_loop_iter(lb, g, items[g as usize].clone())?;
                    state_at = g + 1;
                    first = false;
                }
                self.exit_main_loop();
                // Sampled replay never owns the final state unless the last
                // sample is the last iteration.
                if state_at < n {
                    self.log.set_suppressed(true);
                }
                Ok(())
            }
            Mode::Replay(ctx) if ctx.runtime.is_some() => {
                let runtime = ctx.runtime.clone().expect("guarded");
                self.exec_main_loop_ranges(lb, &items, n, &runtime)
            }
            Mode::Replay(ctx) => {
                // Build this worker's plan. Weak init restricts partition
                // boundaries to checkpoint anchors.
                let plans = match ctx.init_mode {
                    InitMode::Strong => crate::parallel::plan(n, ctx.workers, InitMode::Strong),
                    InitMode::Weak => {
                        let anchors = ctx.anchors(n);
                        crate::parallel::plan_anchored(n, &anchors, ctx.workers)
                    }
                };
                let plan = plans.get(ctx.pid).cloned();
                ctx.plan_used = plan.clone();
                // The worker's restore schedule is now fixed: every main
                // block restores across the init segment, and across the
                // work segment unless probed. Start the per-worker
                // prefetcher so segment I/O overlaps with interpretation.
                if let Some(plan) = &plan {
                    if !ctx.force_execute_all && !ctx.main_blocks.is_empty() {
                        let mut keys: Vec<(String, u64)> =
                            Vec::with_capacity((plan.init_len() + plan.work_len()) as usize);
                        for g in plan.init_iters() {
                            for b in &ctx.main_blocks {
                                keys.push((b.clone(), g));
                            }
                        }
                        for g in plan.work_iters() {
                            for b in &ctx.main_blocks {
                                if !ctx.probed_blocks.contains(b) {
                                    keys.push((b.clone(), g));
                                }
                            }
                        }
                        if !keys.is_empty() {
                            ctx.prefetcher =
                                Some(crate::prefetch::Prefetcher::spawn(ctx.store.clone(), keys));
                        }
                    }
                }
                let Some(plan) = plan else {
                    // More workers than segments: nothing to do. Suppress
                    // the postamble too — this worker owns no state, so its
                    // post-loop logs would be wrong duplicates.
                    self.exit_main_loop();
                    self.log.set_suppressed(true);
                    return Ok(());
                };
                // Initialization phase: logs suppressed, SkipBlocks restore.
                if plan.init_len() > 0 {
                    if let Mode::Replay(ctx) = &mut self.mode {
                        ctx.phase = Phase::Init;
                    }
                    self.log.set_suppressed(true);
                    for g in plan.init_iters() {
                        self.run_loop_iter(lb, g, items[g as usize].clone())?;
                    }
                    self.log.set_suppressed(false);
                }
                // Work phase.
                if let Mode::Replay(ctx) = &mut self.mode {
                    ctx.phase = Phase::Work;
                }
                for g in plan.work_iters() {
                    self.run_loop_iter(lb, g, items[g as usize].clone())?;
                }
                self.exit_main_loop();
                // Only the worker owning the final segment has the true
                // final state; everyone else's postamble logs are
                // suppressed (the merge keeps the final-segment worker's).
                if plan.work_end < n {
                    self.log.set_suppressed(true);
                }
                Ok(())
            }
        }
    }

    /// The cost-aware work-stealing replay executor (the tentpole runtime).
    ///
    /// Instead of owning one fixed partition, the worker pulls micro-ranges
    /// from the shared [`RangeQueue`](crate::parallel::RangeQueue): its own
    /// contiguous seed first (each pop continues exactly where the last
    /// range ended — no re-initialization), then steals off stragglers. A
    /// stolen range is a fresh init+work segment: the worker re-initializes
    /// via checkpoint restores (rolling forward under strong init, jumping
    /// to the range's anchor under weak init) and re-targets its
    /// [`Prefetcher`](crate::prefetch::Prefetcher) to the new restore
    /// schedule. Completed ranges are drained from the log and streamed to
    /// the incremental merger immediately.
    fn exec_main_loop_ranges(
        &mut self,
        lb: &LoopBody<'_>,
        items: &[Value],
        n: u64,
        runtime: &Arc<crate::replay::ReplayRuntime>,
    ) -> Result<(), FlorError> {
        // Seed the queue once; workers race, all would compute the same
        // deterministic seeding, the first wins.
        let seeded = {
            let Mode::Replay(ctx) = &mut self.mode else {
                unreachable!()
            };
            let deques = || runtime.seed_ranges(ctx, n);
            runtime.queue.seed_once(n, deques)
        };
        let (pid, init_mode, rewind_ok, sink) = {
            let Mode::Replay(ctx) = &mut self.mode else {
                unreachable!()
            };
            // Rewinding (taking a range behind the current state) rebuilds
            // earlier state by checkpoint restores in the init phase;
            // poisoned reuse re-executes instead, so a rewound prefix
            // would run from already-advanced state and corrupt it. The
            // same applies to loop-carried state living outside every
            // skipblock changeset: no restore repairs it, so a rewound
            // prefix would roll it forward from advanced values.
            (
                ctx.pid,
                ctx.init_mode,
                !ctx.force_execute_all && !ctx.outer_carried,
                ctx.sink.clone(),
            )
        };
        // Replay workers trace on their own lane, keyed by pid.
        flor_obs::set_lane(pid as u32, &format!("worker-{pid}"));
        if seeded {
            if let Some(sink) = &sink {
                sink.send(crate::stream::StreamMsg::Total { n_iters: n });
            }
        }
        // Stream the preamble (the merger keeps worker 0's).
        if let Some(sink) = &sink {
            sink.send(crate::stream::StreamMsg::Pre {
                pid,
                entries: self.log.drain(),
            });
        }

        // Program state sits at the start of this iteration (exclusive
        // upper bound of applied iterations); the preamble leaves it at 0.
        let mut state_at = 0u64;
        // One past the last iteration the current prefetcher covers; a
        // range inside coverage keeps it (seed pops are contiguous — no
        // churn), a discontinuity or overrun re-targets it.
        let mut prefetched_to = 0u64;
        let seeded_end = runtime.queue.seeded_span(pid).map(|s| s.end).unwrap_or(0);
        while let Some(next) = runtime.queue.next(pid, state_at, rewind_ok) {
            if runtime.cancelled() {
                return Err(FlorError::Cancelled);
            }
            let range = next.range;
            // Initialization segment for this range. A seed pop continues
            // where the previous range ended (no init); a steal rolls
            // checkpoints forward from the current state (strong) or jumps
            // to the range's anchor (weak). A backward steal under strong
            // init must rewind to iteration 0 — the queue avoids handing
            // those out unless nothing else remains.
            let init_from = match init_mode {
                InitMode::Strong => {
                    if state_at <= range.start {
                        state_at
                    } else {
                        0
                    }
                }
                InitMode::Weak => {
                    if state_at == range.start {
                        range.start
                    } else {
                        // Range starts are anchors: iteration start-1 has a
                        // full Loop End Checkpoint to jump from.
                        range.start.saturating_sub(1)
                    }
                }
            };
            // Re-target the prefetcher when this range leaves the current
            // coverage: on the first range it spans the whole seeded share
            // (seed pops continue contiguously — one prefetcher serves
            // them all); on a steal it spans the stolen range's fresh
            // init+work segment. Ranges stolen *from* this worker by
            // others waste some prefetched buffers — they sit at the
            // share's back, fetched last, and are reclaimed on drop.
            if range.start < state_at.min(prefetched_to) || range.end > prefetched_to {
                let Mode::Replay(ctx) = &mut self.mode else {
                    unreachable!()
                };
                if !ctx.force_execute_all && !ctx.main_blocks.is_empty() {
                    let cover_end = if !next.stolen && range.end <= seeded_end {
                        seeded_end
                    } else {
                        range.end
                    };
                    let mut keys: Vec<(String, u64)> = Vec::new();
                    for j in init_from..range.start {
                        for b in &ctx.main_blocks {
                            keys.push((b.clone(), j));
                        }
                    }
                    for g in range.start..cover_end {
                        for b in &ctx.main_blocks {
                            if !ctx.probed_blocks.contains(b) {
                                keys.push((b.clone(), g));
                            }
                        }
                    }
                    ctx.prefetcher = if keys.is_empty() {
                        None
                    } else {
                        Some(crate::prefetch::Prefetcher::spawn(ctx.store.clone(), keys))
                    };
                    prefetched_to = cover_end;
                }
            }
            // Init phase: logs suppressed, SkipBlocks restore.
            if init_from < range.start {
                let mut span = flor_obs::span(flor_obs::Category::RangeExec, "init");
                span.set_args(init_from, range.start);
                if let Mode::Replay(ctx) = &mut self.mode {
                    ctx.phase = Phase::Init;
                }
                self.log.set_suppressed(true);
                for j in init_from..range.start {
                    self.run_loop_iter(lb, j, items[j as usize].clone())?;
                }
                self.log.set_suppressed(false);
            }
            // Work phase.
            let mut span = flor_obs::span(flor_obs::Category::RangeExec, "range");
            span.set_args(range.start, range.end);
            if let Mode::Replay(ctx) = &mut self.mode {
                ctx.phase = Phase::Work;
            }
            // Bytecode execution of a work range is the hot path this
            // whole layer exists for: give it its own nested span and
            // latency histogram.
            let vm_span = match lb {
                LoopBody::Vm { .. } => {
                    let mut s = flor_obs::span(flor_obs::Category::VmExec, "vm-range");
                    s.set_args(range.start, range.end);
                    Some((s, flor_obs::clock::now_ns()))
                }
                LoopBody::Tree { .. } => None,
            };
            for g in range.iters() {
                if runtime.cancelled() {
                    return Err(FlorError::Cancelled);
                }
                self.run_loop_iter(lb, g, items[g as usize].clone())?;
            }
            if let Some((s, t0)) = vm_span {
                flor_obs::histogram!("vm.exec_ns").observe(flor_obs::clock::since_ns(t0));
                drop(s);
            }
            drop(span);
            state_at = range.end;
            if let Mode::Replay(ctx) = &mut self.mode {
                ctx.stats.ranges_executed += 1;
            }
            if let Some(sink) = &sink {
                sink.send(crate::stream::StreamMsg::Range {
                    start: range.start,
                    end: range.end,
                    stolen: next.stolen,
                    entries: self.log.drain(),
                });
            }
            // The final range's owner exits holding the true final program
            // state: pulling further (earlier) ranges would rewind it and
            // corrupt the postamble.
            if range.end == n {
                break;
            }
        }

        self.exit_main_loop();
        let Mode::Replay(ctx) = &mut self.mode else {
            unreachable!()
        };
        // Report the seeded span as this worker's plan (stealing blurs the
        // boundary, but the seed is what partitioning decided).
        ctx.plan_used = runtime.queue.seeded_span(pid).map(|span| WorkerPlan {
            pid,
            work_start: span.start,
            work_end: span.end,
            init_start: match init_mode {
                _ if span.start == 0 => 0,
                InitMode::Strong => 0,
                InitMode::Weak => span.start - 1,
            },
        });
        // A second `flor.partition` loop (not the paper's model, but legal
        // input) falls back to the static planner: the shared queue was
        // consumed by this one.
        ctx.runtime = None;
        // Only a worker ending at the final iteration owns the true final
        // state; everyone else's postamble is suppressed. An empty main
        // loop matches the static path: no worker owns it.
        if n == 0 || state_at != n {
            self.log.set_suppressed(true);
        }
        Ok(())
    }

    fn enter_iter(&mut self, g: u64) {
        self.log.set_section(Section::Iter(g));
        match &mut self.mode {
            Mode::Record(ctx) => {
                ctx.main_iter = Some(g);
                ctx.blocks_this_iter.clear();
            }
            Mode::Replay(ctx) => {
                ctx.main_iter = Some(g);
                ctx.blocks_this_iter.clear();
            }
            Mode::Vanilla => {}
        }
    }

    fn exit_main_loop(&mut self) {
        self.log.set_section(Section::Post);
        match &mut self.mode {
            Mode::Record(ctx) => ctx.main_iter = None,
            Mode::Replay(ctx) => ctx.main_iter = None,
            Mode::Vanilla => {}
        }
    }

    fn assign(&mut self, targets: &[Expr], value: Value) -> Result<(), FlorError> {
        if targets.len() == 1 {
            return self.assign_one(&targets[0], value);
        }
        let items = unpack_values(value, targets.len())?;
        for (t, v) in targets.iter().zip(items) {
            self.assign_one(t, v)?;
        }
        Ok(())
    }

    fn assign_one(&mut self, target: &Expr, value: Value) -> Result<(), FlorError> {
        match target {
            Expr::Name(n) => {
                self.env.set(n.clone(), value);
                Ok(())
            }
            Expr::Attr { obj, name } => {
                let recv = self.eval(obj)?;
                store_attr_value(recv, name, value)
            }
            Expr::Subscript { obj, index } => {
                let recv = self.eval(obj)?;
                let idx = self.eval(index)?;
                store_index_value(recv, idx, value)
            }
            other => Err(rt(format!("invalid assignment target {other}"))),
        }
    }

    // ---- expressions -------------------------------------------------------

    /// Evaluates an expression.
    pub fn eval(&mut self, expr: &Expr) -> Result<Value, FlorError> {
        match expr {
            Expr::Int(i) => Ok(Value::Int(*i)),
            Expr::Float(x) => Ok(Value::Float(*x)),
            Expr::Str(s) => Ok(Value::Str(s.clone())),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::NoneLit => Ok(Value::None),
            Expr::Name(n) => {
                if n == "flor" {
                    // `flor` resolves as a pseudo-module; only flor.log /
                    // flor.partition are meaningful and both are handled at
                    // their call sites.
                    return Ok(Value::Str("<module flor>".into()));
                }
                self.env.get(n).cloned()
            }
            Expr::List(items) => Ok(Value::list(
                items
                    .iter()
                    .map(|e| self.eval(e))
                    .collect::<Result<_, _>>()?,
            )),
            Expr::Tuple(items) => Ok(Value::Tuple(
                items
                    .iter()
                    .map(|e| self.eval(e))
                    .collect::<Result<_, _>>()?,
            )),
            Expr::Unary { op, expr } => {
                let v = self.eval(expr)?;
                unary_op_value(*op, v)
            }
            Expr::Bin { op, lhs, rhs } => self.eval_bin(*op, lhs, rhs),
            Expr::Subscript { obj, index } => {
                let recv = self.eval(obj)?;
                let idx = self.eval(index)?;
                index_value(recv, idx)
            }
            Expr::Attr { obj, name } => {
                let recv = self.eval(obj)?;
                self.read_attr(recv, name)
            }
            Expr::Call { func, args } => self.eval_call(func, args),
        }
    }

    fn eval_bin(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> Result<Value, FlorError> {
        // Short-circuit boolean ops.
        match op {
            BinOp::And => {
                let l = self.eval(lhs)?;
                return if l.truthy() { self.eval(rhs) } else { Ok(l) };
            }
            BinOp::Or => {
                let l = self.eval(lhs)?;
                return if l.truthy() { Ok(l) } else { self.eval(rhs) };
            }
            _ => {}
        }
        let l = self.eval(lhs)?;
        let r = self.eval(rhs)?;
        bin_op_values(op, l, r)
    }

    pub(crate) fn read_attr(&mut self, recv: Value, name: &str) -> Result<Value, FlorError> {
        match recv {
            Value::Obj(rc) => {
                let o = rc.borrow();
                match (&*o, name) {
                    (Obj::Optim { inner, .. }, "lr") => Ok(Value::Float(inner.lr() as f64)),
                    (Obj::Optim { inner, .. }, "weight_decay") => {
                        Ok(Value::Float(inner.weight_decay() as f64))
                    }
                    (Obj::Sched { inner, .. }, "lr") => Ok(Value::Float(inner.current_lr() as f64)),
                    (Obj::Meter(m), "count") => Ok(Value::Int(m.count() as i64)),
                    (Obj::Swa(s), "count") => Ok(Value::Int(s.count() as i64)),
                    (o, attr) => Err(rt(format!("no attribute {attr:?} on {}", o.kind()))),
                }
            }
            other => Err(rt(format!("no attribute {name:?} on {}", other.kind()))),
        }
    }

    fn eval_call(&mut self, func: &Expr, args: &[Arg]) -> Result<Value, FlorError> {
        // flor.log / log: the logging primitive.
        let is_flor_attr = |target: &str| -> bool {
            matches!(func, Expr::Attr { obj, name } if name == target && obj.as_name() == Some("flor"))
        };
        if matches!(func, Expr::Name(n) if n == "log") || is_flor_attr("log") {
            return self.call_log(args);
        }
        if is_flor_attr("partition") {
            // Outside a For header, partition is the identity (record) —
            // evaluate its argument.
            return self.eval(&args[0].value);
        }
        match func {
            Expr::Name(n) => {
                let call_args = self.eval_args(args)?;
                self.call_builtin(n, call_args)
            }
            Expr::Attr { obj, name } => {
                let recv = self.eval(obj)?;
                let call_args = self.eval_args(args)?;
                self.call_method(recv, name, call_args)
            }
            other => Err(rt(format!("cannot call {other}"))),
        }
    }

    fn call_log(&mut self, args: &[Arg]) -> Result<Value, FlorError> {
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            vals.push(self.eval(&a.value)?);
        }
        self.log_values(vals)
    }

    /// Emits one log entry from already-evaluated `log(...)` arguments:
    /// first value is the key (strings pass through, everything else
    /// displays), the rest join with spaces. Keyword names are ignored.
    /// Shared by the tree-walker and the VM's `CallLog` op.
    pub(crate) fn log_values(&mut self, vals: Vec<Value>) -> Result<Value, FlorError> {
        let mut it = vals.into_iter();
        let Some(first) = it.next() else {
            return Err(rt("log() requires a key argument"));
        };
        let key = match first {
            Value::Str(s) => s,
            other => other.display(),
        };
        let vals: Vec<String> = it.map(|v| v.display()).collect();
        self.log.log(key, vals.join(" "));
        Ok(Value::None)
    }

    fn eval_args(&mut self, args: &[Arg]) -> Result<CallArgs, FlorError> {
        let mut pos = Vec::new();
        let mut kw = Vec::new();
        for a in args {
            let v = self.eval(&a.value)?;
            match &a.name {
                Some(n) => kw.push((n.clone(), v)),
                None => pos.push(v),
            }
        }
        Ok(CallArgs { pos, kw })
    }

    fn next_seed(&mut self) -> u64 {
        self.ctor_counter += 1;
        0x5EED_0000 + self.ctor_counter
    }

    // ---- builtins -----------------------------------------------------------

    pub(crate) fn call_builtin(&mut self, name: &str, mut a: CallArgs) -> Result<Value, FlorError> {
        match name {
            "range" => {
                let (lo, hi) = match a.pos.len() {
                    1 => (0, a.pos[0].as_i64()?),
                    2 => (a.pos[0].as_i64()?, a.pos[1].as_i64()?),
                    n => return Err(rt(format!("range() takes 1-2 args, got {n}"))),
                };
                Ok(Value::list((lo..hi).map(Value::Int).collect()))
            }
            "len" => {
                let v = a.req(0, "len")?;
                let n = match v {
                    Value::List(l) => l.borrow().len(),
                    Value::Tuple(t) => t.len(),
                    Value::Str(s) => s.len(),
                    Value::Obj(rc) => match &*rc.borrow() {
                        Obj::Dataset(d) => d.len(),
                        Obj::Batch(b) => b.y.len(),
                        o => return Err(rt(format!("len() unsupported for {}", o.kind()))),
                    },
                    other => return Err(rt(format!("len() unsupported for {}", other.kind()))),
                };
                Ok(Value::Int(n as i64))
            }
            "min" => {
                let x = a.req(0, "min")?.as_f64()?;
                let y = a.req(1, "min")?.as_f64()?;
                Ok(Value::Float(x.min(y)))
            }
            "max" => {
                let x = a.req(0, "max")?.as_f64()?;
                let y = a.req(1, "max")?.as_f64()?;
                Ok(Value::Float(x.max(y)))
            }
            "abs" => {
                let x = a.req(0, "abs")?.as_f64()?;
                Ok(Value::Float(x.abs()))
            }
            "busy" => {
                // Deterministic spin-compute: inflates loop compute time in
                // tests and benches without touching training state.
                let units = a.req(0, "busy")?.as_i64()?.max(0) as u64;
                let mut acc = 0.3f64;
                for _ in 0..units * 8_000 {
                    acc = (acc * 1.0000001 + 0.1).sin();
                }
                // Data-dependent side channel prevents the spin from being
                // optimized away.
                if acc > 2.0 {
                    return Err(rt("unreachable busy() overflow"));
                }
                Ok(Value::None)
            }
            "evaluate" => {
                // evaluate(net, dataset) → accuracy over the whole dataset.
                let net = a.req(0, "evaluate")?;
                let data = a.req(1, "evaluate")?;
                let (net_rc, data_rc) = match (net, data) {
                    (Value::Obj(n), Value::Obj(d)) => (n, d),
                    _ => return Err(rt("evaluate(net, dataset) expects objects")),
                };
                let batch = {
                    let d = data_rc.borrow();
                    match &*d {
                        Obj::Dataset(ds) => {
                            let all: Vec<usize> = (0..ds.len()).collect();
                            ds.gather(&all)
                        }
                        o => {
                            return Err(rt(format!(
                                "evaluate() expects a dataset, got {}",
                                o.kind()
                            )))
                        }
                    }
                };
                let mut n = net_rc.borrow_mut();
                match &mut *n {
                    Obj::Model(m) => {
                        let logits = m.forward(&model_input(m, &batch)?);
                        Ok(Value::Float(accuracy(&logits, &batch.y) as f64))
                    }
                    o => Err(rt(format!("evaluate() expects a model, got {}", o.kind()))),
                }
            }
            "synth_data" => {
                let n = a.kw_i64("n", 128)? as usize;
                let dim = a.kw_i64("dim", 8)? as usize;
                let classes = a.kw_i64("classes", 3)? as usize;
                let spread = a.kw_f64("spread", 0.3)?;
                let seed = a.kw_i64("seed", self.next_seed() as i64)? as u64;
                Ok(Value::obj(Obj::Dataset(DatasetObj::Classification(
                    SyntheticClassification::generate(n, dim, classes, spread as f32, seed),
                ))))
            }
            "token_data" => {
                let n = a.kw_i64("n", 128)? as usize;
                let seq = a.kw_i64("seq", 8)? as usize;
                let vocab = a.kw_i64("vocab", 64)? as usize;
                let classes = a.kw_i64("classes", 3)? as usize;
                let seed = a.kw_i64("seed", self.next_seed() as i64)? as u64;
                Ok(Value::obj(Obj::Dataset(DatasetObj::Tokens(
                    SyntheticTokens::generate(n, seq, vocab, classes, seed),
                ))))
            }
            "dataloader" => {
                let ds = a.req(0, "dataloader")?;
                let batch_size = a.kw_i64("batch_size", 16)? as usize;
                let seed = a.kw_i64("seed", self.next_seed() as i64)? as u64;
                let rc = match ds {
                    Value::Obj(rc) => rc,
                    other => {
                        return Err(rt(format!(
                            "dataloader() expects a dataset, got {}",
                            other.kind()
                        )))
                    }
                };
                let n = match &*rc.borrow() {
                    Obj::Dataset(d) => d.len(),
                    o => {
                        return Err(rt(format!(
                            "dataloader() expects a dataset, got {}",
                            o.kind()
                        )))
                    }
                };
                Ok(Value::obj(Obj::Loader {
                    inner: DataLoader::new(n, batch_size, seed),
                    dataset: rc,
                }))
            }
            "mlp" => {
                let input = a.kw_i64("input", 8)? as usize;
                let hidden = a.kw_i64("hidden", 16)? as usize;
                let classes = a.kw_i64("classes", 3)? as usize;
                let depth = a.kw_i64("depth", 2)? as usize;
                let seed = a.kw_i64("seed", self.next_seed() as i64)? as u64;
                let mut rng = Pcg64::seeded(seed);
                Ok(Value::obj(Obj::Model(models::mlp(
                    input, hidden, classes, depth, &mut rng,
                ))))
            }
            "resnet" => {
                let input = a.kw_i64("input", 8)? as usize;
                let hidden = a.kw_i64("hidden", 16)? as usize;
                let classes = a.kw_i64("classes", 3)? as usize;
                let blocks = a.kw_i64("blocks", 2)? as usize;
                let seed = a.kw_i64("seed", self.next_seed() as i64)? as u64;
                let mut rng = Pcg64::seeded(seed);
                Ok(Value::obj(Obj::Model(models::resnet_mini(
                    input, hidden, classes, blocks, &mut rng,
                ))))
            }
            "convnet" => {
                let features = a.kw_i64("features", 16)? as usize;
                let channels = a.kw_i64("channels", 2)? as usize;
                let conv_channels = a.kw_i64("conv_channels", 4)? as usize;
                let kernel = a.kw_i64("kernel", 3)? as usize;
                let classes = a.kw_i64("classes", 3)? as usize;
                let seed = a.kw_i64("seed", self.next_seed() as i64)? as u64;
                let mut rng = Pcg64::seeded(seed);
                Ok(Value::obj(Obj::Model(models::convnet1d_flat(
                    features,
                    channels,
                    conv_channels,
                    kernel,
                    classes,
                    &mut rng,
                ))))
            }
            "textnet" => {
                let vocab = a.kw_i64("vocab", 64)? as usize;
                let dim = a.kw_i64("dim", 16)? as usize;
                let classes = a.kw_i64("classes", 3)? as usize;
                let seed = a.kw_i64("seed", self.next_seed() as i64)? as u64;
                let mut rng = Pcg64::seeded(seed);
                Ok(Value::obj(Obj::Model(models::textnet(
                    vocab, dim, classes, &mut rng,
                ))))
            }
            "finetune" => {
                let input = a.kw_i64("input", 8)? as usize;
                let hidden = a.kw_i64("hidden", 32)? as usize;
                let classes = a.kw_i64("classes", 3)? as usize;
                let ballast = a.kw_i64("ballast", 100_000)? as usize;
                let seed = a.kw_i64("seed", self.next_seed() as i64)? as u64;
                let mut rng = Pcg64::seeded(seed);
                Ok(Value::obj(Obj::Model(models::finetune_net(
                    input, hidden, classes, ballast, &mut rng,
                ))))
            }
            "sgd" => {
                let net = a.req(0, "sgd")?;
                let lr = a.kw_f64("lr", 0.1)?;
                let momentum = a.kw_f64("momentum", 0.0)?;
                let weight_decay = a.kw_f64("weight_decay", 0.0)?;
                let model = as_model_rc(net)?;
                Ok(Value::obj(Obj::Optim {
                    inner: Box::new(Sgd::new(lr as f32, momentum as f32, weight_decay as f32)),
                    model,
                }))
            }
            "adam" => {
                let net = a.req(0, "adam")?;
                let lr = a.kw_f64("lr", 0.001)?;
                let weight_decay = a.kw_f64("weight_decay", 0.0)?;
                let model = as_model_rc(net)?;
                Ok(Value::obj(Obj::Optim {
                    inner: Box::new(Adam::new(lr as f32, weight_decay as f32)),
                    model,
                }))
            }
            "step_lr" => {
                let opt = a.req(0, "step_lr")?;
                let base_lr = a.kw_f64("base_lr", 0.1)?;
                let step_size = a.kw_i64("step_size", 10)? as u32;
                let gamma = a.kw_f64("gamma", 0.5)?;
                let optimizer = as_optim_rc(opt)?;
                Ok(Value::obj(Obj::Sched {
                    inner: Box::new(StepLr::new(base_lr as f32, step_size, gamma as f32)),
                    optimizer,
                }))
            }
            "cosine_lr" => {
                let opt = a.req(0, "cosine_lr")?;
                let base_lr = a.kw_f64("base_lr", 0.1)?;
                let eta_min = a.kw_f64("eta_min", 0.0)?;
                let t_max = a.kw_i64("t_max", 10)? as u32;
                let optimizer = as_optim_rc(opt)?;
                Ok(Value::obj(Obj::Sched {
                    inner: Box::new(CosineLr::new(base_lr as f32, eta_min as f32, t_max)),
                    optimizer,
                }))
            }
            "cyclic_lr" => {
                let opt = a.req(0, "cyclic_lr")?;
                let min_lr = a.kw_f64("min_lr", 0.01)?;
                let max_lr = a.kw_f64("max_lr", 0.5)?;
                let period = a.kw_i64("period", 4)? as u32;
                let optimizer = as_optim_rc(opt)?;
                Ok(Value::obj(Obj::Sched {
                    inner: Box::new(CyclicLr::new(min_lr as f32, max_lr as f32, period)),
                    optimizer,
                }))
            }
            "cross_entropy" => Ok(Value::obj(Obj::Loss(CrossEntropyLoss::new()))),
            "swa_averager" => Ok(Value::obj(Obj::Swa(SwaAverager::new()))),
            "meter" => Ok(Value::obj(Obj::Meter(Meter::new()))),
            other => Err(rt(format!("unknown function {other:?}"))),
        }
    }

    // ---- methods -------------------------------------------------------------

    pub(crate) fn call_method(
        &mut self,
        recv: Value,
        name: &str,
        mut a: CallArgs,
    ) -> Result<Value, FlorError> {
        // Tensor methods (value receiver).
        if let Value::Tensor(t) = &recv {
            return match name {
                "norm" => Ok(Value::Float(t.norm() as f64)),
                "mean" => Ok(Value::Float(t.mean() as f64)),
                "max" => Ok(Value::Float(t.max() as f64)),
                "item" => Ok(Value::Float(t.item() as f64)),
                "shape" => Ok(Value::Str(t.shape().to_string())),
                other => Err(rt(format!("no method {other:?} on tensor"))),
            };
        }
        let rc = match recv {
            Value::Obj(rc) => rc,
            other => return Err(rt(format!("no method {name:?} on {}", other.kind()))),
        };
        // Methods that need another object borrowed are handled with care
        // to avoid double borrows.
        enum Action {
            None,
            Value(Value),
        }
        let kind = rc.borrow().kind();
        let action: Action = match (kind, name) {
            ("model", "forward") => {
                let arg = a.req(0, "forward")?;
                let batch = as_batch(&arg)?;
                let mut o = rc.borrow_mut();
                let Obj::Model(m) = &mut *o else {
                    unreachable!()
                };
                let x = model_input(m, &batch)?;
                Action::Value(Value::Tensor(m.forward(&x)))
            }
            ("model", "backward") => {
                let grad = match a.req(0, "backward")? {
                    Value::Tensor(t) => t,
                    other => {
                        return Err(rt(format!(
                            "backward() expects a tensor, got {}",
                            other.kind()
                        )))
                    }
                };
                let mut o = rc.borrow_mut();
                let Obj::Model(m) = &mut *o else {
                    unreachable!()
                };
                m.backward(&grad);
                Action::None
            }
            ("model", "zero_grad") => {
                let mut o = rc.borrow_mut();
                let Obj::Model(m) = &mut *o else {
                    unreachable!()
                };
                m.zero_grad();
                Action::None
            }
            ("model", "weight_norm") => {
                let o = rc.borrow();
                let Obj::Model(m) = &*o else { unreachable!() };
                Action::Value(Value::Float(m.weight_norm() as f64))
            }
            ("model", "grad_norm") => {
                let o = rc.borrow();
                let Obj::Model(m) = &*o else { unreachable!() };
                Action::Value(Value::Float(m.grad_norm() as f64))
            }
            ("model", "num_params") => {
                let o = rc.borrow();
                let Obj::Model(m) = &*o else { unreachable!() };
                Action::Value(Value::Int(m.numel() as i64))
            }
            ("model", "accuracy") => {
                let arg = a.req(0, "accuracy")?;
                let batch = as_batch(&arg)?;
                let mut o = rc.borrow_mut();
                let Obj::Model(m) = &mut *o else {
                    unreachable!()
                };
                let logits = m.forward(&model_input(m, &batch)?);
                Action::Value(Value::Float(accuracy(&logits, &batch.y) as f64))
            }
            ("optimizer", "step") => {
                let o = rc.borrow();
                let Obj::Optim { model, .. } = &*o else {
                    unreachable!()
                };
                let model = model.clone();
                drop(o);
                let mut o = rc.borrow_mut();
                let Obj::Optim { inner, .. } = &mut *o else {
                    unreachable!()
                };
                let mut m = model.borrow_mut();
                let Obj::Model(net) = &mut *m else {
                    return Err(rt("optimizer's model reference is not a model"));
                };
                inner.step(net);
                Action::None
            }
            ("optimizer", "zero_grad") => {
                let o = rc.borrow();
                let Obj::Optim { model, .. } = &*o else {
                    unreachable!()
                };
                let model = model.clone();
                drop(o);
                let mut m = model.borrow_mut();
                let Obj::Model(net) = &mut *m else {
                    return Err(rt("optimizer's model reference is not a model"));
                };
                net.zero_grad();
                Action::None
            }
            ("optimizer", "set_lr") => {
                let lr = a.req(0, "set_lr")?.as_f64()?;
                let mut o = rc.borrow_mut();
                let Obj::Optim { inner, .. } = &mut *o else {
                    unreachable!()
                };
                inner.set_lr(lr as f32);
                Action::None
            }
            ("optimizer", "set_weight_decay") => {
                let wd = a.req(0, "set_weight_decay")?.as_f64()?;
                let mut o = rc.borrow_mut();
                let Obj::Optim { inner, .. } = &mut *o else {
                    unreachable!()
                };
                inner.set_weight_decay(wd as f32);
                Action::None
            }
            ("scheduler", "step") => {
                let o = rc.borrow();
                let Obj::Sched { optimizer, .. } = &*o else {
                    unreachable!()
                };
                let optimizer = optimizer.clone();
                drop(o);
                let mut s = rc.borrow_mut();
                let Obj::Sched { inner, .. } = &mut *s else {
                    unreachable!()
                };
                let mut opt = optimizer.borrow_mut();
                let Obj::Optim {
                    inner: opt_inner, ..
                } = &mut *opt
                else {
                    return Err(rt("scheduler's optimizer reference is not an optimizer"));
                };
                inner.step(opt_inner.as_mut());
                Action::None
            }
            ("loader", "epoch") => {
                let mut o = rc.borrow_mut();
                let Obj::Loader { inner, dataset } = &mut *o else {
                    unreachable!()
                };
                let batches = inner.next_epoch();
                let dataset = dataset.clone();
                drop(o);
                let d = dataset.borrow();
                let Obj::Dataset(ds) = &*d else {
                    return Err(rt("loader's dataset reference is not a dataset"));
                };
                let items: Vec<Value> = batches
                    .iter()
                    .map(|idx| Value::obj(Obj::Batch(ds.gather(idx))))
                    .collect();
                Action::Value(Value::list(items))
            }
            ("loader", "num_batches") => {
                let o = rc.borrow();
                let Obj::Loader { inner, .. } = &*o else {
                    unreachable!()
                };
                Action::Value(Value::Int(inner.batches_per_epoch() as i64))
            }
            ("loss", "forward") => {
                let preds = match a.req(0, "forward")? {
                    Value::Tensor(t) => t,
                    other => {
                        return Err(rt(format!(
                            "loss.forward expects logits tensor, got {}",
                            other.kind()
                        )))
                    }
                };
                let batch_val = a.req(1, "forward")?;
                let batch = as_batch(&batch_val)?;
                let mut o = rc.borrow_mut();
                let Obj::Loss(loss) = &mut *o else {
                    unreachable!()
                };
                Action::Value(Value::Float(loss.forward(&preds, &batch.y) as f64))
            }
            ("loss", "backward") => {
                let mut o = rc.borrow_mut();
                let Obj::Loss(loss) = &mut *o else {
                    unreachable!()
                };
                Action::Value(Value::Tensor(loss.backward()))
            }
            ("swa", "update") | ("swa", "update_buggy") => {
                let net = a.req(0, name)?;
                let model_rc = as_model_rc(net)?;
                let m = model_rc.borrow();
                let Obj::Model(model) = &*m else {
                    unreachable!()
                };
                let mut o = rc.borrow_mut();
                let Obj::Swa(swa) = &mut *o else {
                    unreachable!()
                };
                if name == "update" {
                    swa.update(model);
                } else {
                    swa.update_buggy(model);
                }
                Action::None
            }
            ("swa", "apply") => {
                let net = a.req(0, "apply")?;
                let model_rc = as_model_rc(net)?;
                let mut m = model_rc.borrow_mut();
                let Obj::Model(model) = &mut *m else {
                    unreachable!()
                };
                let o = rc.borrow();
                let Obj::Swa(swa) = &*o else { unreachable!() };
                swa.try_apply(model).map_err(rt)?;
                Action::None
            }
            ("meter", "update") => {
                let x = a.req(0, "update")?.as_f64()?;
                let mut o = rc.borrow_mut();
                let Obj::Meter(m) = &mut *o else {
                    unreachable!()
                };
                m.update(x as f32);
                Action::None
            }
            ("meter", "mean") => {
                let o = rc.borrow();
                let Obj::Meter(m) = &*o else { unreachable!() };
                Action::Value(Value::Float(m.mean() as f64))
            }
            ("meter", "reset") => {
                let mut o = rc.borrow_mut();
                let Obj::Meter(m) = &mut *o else {
                    unreachable!()
                };
                m.reset();
                Action::None
            }
            ("batch", "size") => {
                let o = rc.borrow();
                let Obj::Batch(b) = &*o else { unreachable!() };
                Action::Value(Value::Int(b.y.len() as i64))
            }
            (kind, method) => {
                return Err(rt(format!("no method {method:?} on {kind}")));
            }
        };
        Ok(match action {
            Action::None => Value::None,
            Action::Value(v) => v,
        })
    }
}

// ---- shared executor semantics ---------------------------------------------
//
// The tree-walker and the bytecode VM must agree byte-for-byte on values
// and error strings (the VM is differentially tested against the
// tree-walker); these helpers are the single home for value-level
// semantics so the two executors cannot drift.

/// Snapshot of an iterable's items (lists are cloned before the loop
/// body runs, so mutation during iteration is invisible — both
/// executors).
pub(crate) fn items_of(v: Value) -> Result<Vec<Value>, FlorError> {
    match v {
        Value::List(l) => Ok(l.borrow().clone()),
        Value::Tuple(t) => Ok(t),
        other => Err(rt(format!("cannot iterate over {}", other.kind()))),
    }
}

/// Splits a multi-assignment RHS into exactly `n` values.
pub(crate) fn unpack_values(value: Value, n: usize) -> Result<Vec<Value>, FlorError> {
    let items = match value {
        Value::Tuple(t) => t,
        Value::List(l) => l.borrow().clone(),
        other => {
            return Err(rt(format!(
                "cannot unpack {} into {n} targets",
                other.kind()
            )))
        }
    };
    if items.len() != n {
        return Err(rt(format!(
            "unpack mismatch: {} values into {n} targets",
            items.len()
        )));
    }
    Ok(items)
}

/// Applies a unary operator to an evaluated operand.
#[inline]
pub(crate) fn unary_op_value(op: UnaryOp, v: Value) -> Result<Value, FlorError> {
    match op {
        UnaryOp::Neg => match v {
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(x) => Ok(Value::Float(-x)),
            other => Err(rt(format!("cannot negate {}", other.kind()))),
        },
        UnaryOp::Not => Ok(Value::Bool(!v.truthy())),
    }
}

/// Numeric fast path shared by both executors: `Some(result)` for
/// int∘int and float∘float operands, `None` when the pair needs the
/// general path in [`bin_op_values`] (string ops, int/float promotion,
/// division/modulo-by-zero errors, type errors). Borrows its operands
/// so the VM's fused ops can evaluate straight out of frame slots and
/// the constant pool without cloning.
#[inline(always)]
pub(crate) fn bin_op_fast(op: BinOp, l: &Value, r: &Value) -> Option<Value> {
    match (l, r) {
        // Integer arithmetic stays integral.
        (Value::Int(a), Value::Int(b)) => {
            let (a, b) = (*a, *b);
            Some(match op {
                BinOp::Add => Value::Int(a + b),
                BinOp::Sub => Value::Int(a - b),
                BinOp::Mul => Value::Int(a * b),
                BinOp::Div if b != 0 => Value::Float(a as f64 / b as f64),
                BinOp::Mod if b != 0 => Value::Int(a.rem_euclid(b)),
                BinOp::Eq => Value::Bool(a == b),
                BinOp::Ne => Value::Bool(a != b),
                BinOp::Lt => Value::Bool(a < b),
                BinOp::Le => Value::Bool(a <= b),
                BinOp::Gt => Value::Bool(a > b),
                BinOp::Ge => Value::Bool(a >= b),
                // Division/modulo by zero error on the general path;
                // And/Or never reach a binary op.
                _ => return None,
            })
        }
        (Value::Float(a), Value::Float(b)) => {
            let (a, b) = (*a, *b);
            Some(match op {
                BinOp::Add => Value::Float(a + b),
                BinOp::Sub => Value::Float(a - b),
                BinOp::Mul => Value::Float(a * b),
                BinOp::Div if b != 0.0 => Value::Float(a / b),
                BinOp::Mod => Value::Float(a % b),
                BinOp::Eq => Value::Bool(a == b),
                BinOp::Ne => Value::Bool(a != b),
                BinOp::Lt => Value::Bool(a < b),
                BinOp::Le => Value::Bool(a <= b),
                BinOp::Gt => Value::Bool(a > b),
                BinOp::Ge => Value::Bool(a >= b),
                _ => return None,
            })
        }
        _ => None,
    }
}

/// Applies a non-short-circuit binary operator to evaluated operands
/// (`and`/`or` are control flow in both executors and never reach
/// here).
#[inline]
pub(crate) fn bin_op_values(op: BinOp, l: Value, r: Value) -> Result<Value, FlorError> {
    if let Some(v) = bin_op_fast(op, &l, &r) {
        return Ok(v);
    }
    // String concatenation.
    if op == BinOp::Add {
        if let (Value::Str(a), Value::Str(b)) = (&l, &r) {
            return Ok(Value::Str(format!("{a}{b}")));
        }
    }
    // Same-type integer pairs only fall through for the zero-divisor
    // errors — the fast path handled every other combination.
    if let (Value::Int(_), Value::Int(b)) = (&l, &r) {
        match op {
            BinOp::Div if *b == 0 => return Err(rt("division by zero")),
            BinOp::Mod if *b == 0 => return Err(rt("modulo by zero")),
            _ => {}
        }
    }
    // String equality.
    if let (Value::Str(a), Value::Str(b)) = (&l, &r) {
        match op {
            BinOp::Eq => return Ok(Value::Bool(a == b)),
            BinOp::Ne => return Ok(Value::Bool(a != b)),
            _ => {}
        }
    }
    let a = l.as_f64()?;
    let b = r.as_f64()?;
    Ok(match op {
        BinOp::Add => Value::Float(a + b),
        BinOp::Sub => Value::Float(a - b),
        BinOp::Mul => Value::Float(a * b),
        BinOp::Div => {
            if b == 0.0 {
                return Err(rt("division by zero"));
            }
            Value::Float(a / b)
        }
        BinOp::Mod => Value::Float(a % b),
        BinOp::Eq => Value::Bool(a == b),
        BinOp::Ne => Value::Bool(a != b),
        BinOp::Lt => Value::Bool(a < b),
        BinOp::Le => Value::Bool(a <= b),
        BinOp::Gt => Value::Bool(a > b),
        BinOp::Ge => Value::Bool(a >= b),
        BinOp::And | BinOp::Or => unreachable!(),
    })
}

/// Subscript load on evaluated receiver and index.
#[inline]
pub(crate) fn index_value(recv: Value, index: Value) -> Result<Value, FlorError> {
    let idx = index.as_i64()?;
    match recv {
        Value::List(l) => {
            let items = l.borrow();
            let len = items.len() as i64;
            let i = if idx < 0 { idx + len } else { idx };
            items
                .get(i as usize)
                .cloned()
                .ok_or_else(|| rt(format!("list index {idx} out of range")))
        }
        Value::Tuple(t) => {
            let len = t.len() as i64;
            let i = if idx < 0 { idx + len } else { idx };
            t.get(i as usize)
                .cloned()
                .ok_or_else(|| rt(format!("tuple index {idx} out of range")))
        }
        other => Err(rt(format!("cannot index {}", other.kind()))),
    }
}

/// Subscript store on evaluated receiver, index, and value.
pub(crate) fn store_index_value(recv: Value, index: Value, value: Value) -> Result<(), FlorError> {
    let idx = index.as_i64()?;
    match recv {
        Value::List(l) => {
            let mut items = l.borrow_mut();
            let len = items.len() as i64;
            let i = if idx < 0 { idx + len } else { idx };
            if i < 0 || i >= len {
                return Err(rt(format!("list index {idx} out of range")));
            }
            items[i as usize] = value;
            Ok(())
        }
        other => Err(rt(format!("cannot index-assign {}", other.kind()))),
    }
}

/// Attribute store on an evaluated receiver (only optimizer
/// hyperparameters are assignable, mirroring the paper's API surface).
pub(crate) fn store_attr_value(recv: Value, name: &str, value: Value) -> Result<(), FlorError> {
    match recv {
        Value::Obj(rc) => {
            let mut o = rc.borrow_mut();
            match (&mut *o, name) {
                (Obj::Optim { inner, .. }, "lr") => {
                    inner.set_lr(value.as_f64()? as f32);
                    Ok(())
                }
                (Obj::Optim { inner, .. }, "weight_decay") => {
                    inner.set_weight_decay(value.as_f64()? as f32);
                    Ok(())
                }
                (o, attr) => Err(rt(format!(
                    "cannot assign attribute {attr:?} on {}",
                    o.kind()
                ))),
            }
        }
        other => Err(rt(format!("cannot assign attribute on {}", other.kind()))),
    }
}

/// Evaluated call arguments: the positional/keyword split.
pub struct CallArgs {
    pos: Vec<Value>,
    kw: Vec<(String, Value)>,
}

impl CallArgs {
    /// Builds from an already-evaluated positional/keyword split (the
    /// VM's call ops rebuild this from the operand stack).
    pub(crate) fn new(pos: Vec<Value>, kw: Vec<(String, Value)>) -> Self {
        CallArgs { pos, kw }
    }

    fn req(&mut self, i: usize, func: &str) -> Result<Value, FlorError> {
        self.pos
            .get(i)
            .cloned()
            .ok_or_else(|| rt(format!("{func}() missing positional argument {i}")))
    }

    fn kw_get(&self, name: &str) -> Option<&Value> {
        self.kw.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    fn kw_i64(&self, name: &str, default: i64) -> Result<i64, FlorError> {
        match self.kw_get(name) {
            Some(v) => v.as_i64(),
            None => Ok(default),
        }
    }

    fn kw_f64(&self, name: &str, default: f64) -> Result<f64, FlorError> {
        match self.kw_get(name) {
            Some(v) => v.as_f64(),
            None => Ok(default),
        }
    }
}

fn as_model_rc(v: Value) -> Result<Rc<std::cell::RefCell<Obj>>, FlorError> {
    match v {
        Value::Obj(rc) => {
            if matches!(&*rc.borrow(), Obj::Model(_)) {
                Ok(rc)
            } else {
                Err(rt(format!("expected a model, got {}", rc.borrow().kind())))
            }
        }
        other => Err(rt(format!("expected a model, got {}", other.kind()))),
    }
}

fn as_optim_rc(v: Value) -> Result<Rc<std::cell::RefCell<Obj>>, FlorError> {
    match v {
        Value::Obj(rc) => {
            if matches!(&*rc.borrow(), Obj::Optim { .. }) {
                Ok(rc)
            } else {
                Err(rt(format!(
                    "expected an optimizer, got {}",
                    rc.borrow().kind()
                )))
            }
        }
        other => Err(rt(format!("expected an optimizer, got {}", other.kind()))),
    }
}

fn as_batch(v: &Value) -> Result<Batch, FlorError> {
    match v {
        Value::Obj(rc) => match &*rc.borrow() {
            Obj::Batch(b) => Ok(b.clone()),
            o => Err(rt(format!("expected a batch, got {}", o.kind()))),
        },
        other => Err(rt(format!("expected a batch, got {}", other.kind()))),
    }
}

/// Prepares a batch's features for a model: token models get the raw id
/// matrix; feature models get it as-is too — the distinction lives in the
/// dataset that produced the batch.
fn model_input(_m: &flor_ml::Sequential, batch: &Batch) -> Result<Tensor, FlorError> {
    Ok(batch.x.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flor_lang::parse;

    fn run_vanilla(src: &str) -> Interp {
        let prog = parse(src).unwrap();
        let mut interp = Interp::new(Mode::Vanilla);
        interp
            .run(&prog)
            .unwrap_or_else(|e| panic!("script failed: {e}\n{src}"));
        interp
    }

    #[test]
    fn arithmetic_and_bindings() {
        let i = run_vanilla("x = 1 + 2 * 3\ny = x - 1\nz = y / 2\n");
        assert_eq!(i.env.get("x").unwrap().as_i64().unwrap(), 7);
        assert_eq!(i.env.get("y").unwrap().as_i64().unwrap(), 6);
        assert_eq!(i.env.get("z").unwrap().as_f64().unwrap(), 3.0);
    }

    #[test]
    fn for_loop_over_range() {
        let i = run_vanilla("total = 0\nfor k in range(5):\n    total = total + k\n");
        assert_eq!(i.env.get("total").unwrap().as_i64().unwrap(), 10);
    }

    #[test]
    fn if_else_branches() {
        let i = run_vanilla("x = 5\nif x > 3:\n    y = 1\nelse:\n    y = 2\n");
        assert_eq!(i.env.get("y").unwrap().as_i64().unwrap(), 1);
    }

    #[test]
    fn log_emits_entries() {
        let i = run_vanilla("log(\"loss\", 0.5)\nlog(\"acc\", 0.9, 12)\n");
        assert_eq!(i.log.entries().len(), 2);
        assert_eq!(i.log.entries()[0].key, "loss");
        assert_eq!(i.log.entries()[1].value, "0.9 12");
    }

    #[test]
    fn multi_assignment_unpack() {
        let i = run_vanilla("a, b = 1, 2\nc, d = (3, 4)\n");
        assert_eq!(i.env.get("a").unwrap().as_i64().unwrap(), 1);
        assert_eq!(i.env.get("d").unwrap().as_i64().unwrap(), 4);
    }

    #[test]
    fn list_indexing_and_mutation() {
        let i = run_vanilla("xs = [1, 2, 3]\nxs[1] = 9\ny = xs[1]\nz = xs[-1]\n");
        assert_eq!(i.env.get("y").unwrap().as_i64().unwrap(), 9);
        assert_eq!(i.env.get("z").unwrap().as_i64().unwrap(), 3);
    }

    #[test]
    fn training_pipeline_end_to_end() {
        // A full mini training script: the loss must decrease.
        let src = "\
data = synth_data(n=60, dim=8, classes=3, spread=0.25, seed=7)
loader = dataloader(data, batch_size=20, seed=7)
net = mlp(input=8, hidden=16, classes=3, depth=2, seed=7)
optimizer = sgd(net, lr=0.1, momentum=0.9)
criterion = cross_entropy()
first = 0.0
last = 0.0
for epoch in range(15):
    for batch in loader.epoch():
        optimizer.zero_grad()
        preds = net.forward(batch)
        loss = criterion.forward(preds, batch)
        grad = criterion.backward()
        net.backward(grad)
        optimizer.step()
    if epoch == 0:
        first = loss
    last = loss
acc = evaluate(net, data)
";
        let i = run_vanilla(src);
        let first = i.env.get("first").unwrap().as_f64().unwrap();
        let last = i.env.get("last").unwrap().as_f64().unwrap();
        let acc = i.env.get("acc").unwrap().as_f64().unwrap();
        assert!(last < first, "loss should fall: {first} -> {last}");
        assert!(acc > 0.8, "accuracy {acc}");
    }

    #[test]
    fn scheduler_changes_optimizer_lr() {
        let src = "\
net = mlp(seed=1)
optimizer = sgd(net, lr=1.0)
sched = step_lr(optimizer, base_lr=1.0, step_size=1, gamma=0.5)
sched.step()
lr1 = optimizer.lr
sched.step()
lr2 = optimizer.lr
";
        let i = run_vanilla(src);
        assert_eq!(i.env.get("lr1").unwrap().as_f64().unwrap(), 0.5);
        assert_eq!(i.env.get("lr2").unwrap().as_f64().unwrap(), 0.25);
    }

    #[test]
    fn optimizer_attr_assignment() {
        let src = "\
net = mlp(seed=1)
optimizer = sgd(net, lr=1.0, weight_decay=0.5)
optimizer.weight_decay = 0.0
wd = optimizer.weight_decay
";
        let i = run_vanilla(src);
        assert_eq!(i.env.get("wd").unwrap().as_f64().unwrap(), 0.0);
    }

    #[test]
    fn determinism_across_runs() {
        let src = "\
data = synth_data(n=40, dim=4, classes=2, seed=3)
loader = dataloader(data, batch_size=10, seed=3)
net = mlp(input=4, hidden=8, classes=2, depth=1, seed=3)
optimizer = sgd(net, lr=0.1)
criterion = cross_entropy()
for epoch in range(3):
    for batch in loader.epoch():
        optimizer.zero_grad()
        preds = net.forward(batch)
        loss = criterion.forward(preds, batch)
        grad = criterion.backward()
        net.backward(grad)
        optimizer.step()
    log(\"loss\", loss)
";
        let a = run_vanilla(src);
        let b = run_vanilla(src);
        assert_eq!(a.log.entries(), b.log.entries());
    }

    #[test]
    fn partitioned_loop_in_vanilla_sets_sections() {
        let src = "\
import flor
log(\"start\", 1)
for e in flor.partition(range(3)):
    log(\"epoch\", e)
log(\"end\", 1)
";
        let i = run_vanilla(src);
        let sections: Vec<Section> = i.log.entries().iter().map(|e| e.section).collect();
        assert_eq!(
            sections,
            vec![
                Section::Pre,
                Section::Iter(0),
                Section::Iter(1),
                Section::Iter(2),
                Section::Post
            ]
        );
    }

    #[test]
    fn swa_buggy_corrupts_square_model_silently() {
        // Square hidden layers: update_buggy transposes values without
        // breaking shapes — Alice's silent corruption.
        let src = "\
net = mlp(input=8, hidden=8, classes=8, depth=1, seed=5)
swa = swa_averager()
swa.update_buggy(net)
swa.apply(net)
w = net.weight_norm()
";
        let i = run_vanilla(src);
        assert!(i.env.get("w").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn unknown_function_errors() {
        let prog = parse("mystery(1)\n").unwrap();
        let mut interp = Interp::new(Mode::Vanilla);
        let err = interp.run(&prog).unwrap_err();
        assert!(err.to_string().contains("mystery"));
    }

    #[test]
    fn unknown_name_errors() {
        let prog = parse("x = y + 1\n").unwrap();
        let mut interp = Interp::new(Mode::Vanilla);
        assert!(interp.run(&prog).is_err());
    }

    #[test]
    fn division_by_zero_errors() {
        let prog = parse("x = 1 / 0\n").unwrap();
        assert!(Interp::new(Mode::Vanilla).run(&prog).is_err());
    }

    #[test]
    fn adam_script_trains() {
        let src = "\
data = synth_data(n=40, dim=6, classes=2, spread=0.25, seed=8)
loader = dataloader(data, batch_size=20, seed=8)
net = mlp(input=6, hidden=12, classes=2, depth=1, seed=8)
optimizer = adam(net, lr=0.02)
criterion = cross_entropy()
for epoch in range(10):
    for batch in loader.epoch():
        optimizer.zero_grad()
        preds = net.forward(batch)
        loss = criterion.forward(preds, batch)
        grad = criterion.backward()
        net.backward(grad)
        optimizer.step()
acc = evaluate(net, data)
";
        let i = run_vanilla(src);
        assert!(i.env.get("acc").unwrap().as_f64().unwrap() > 0.8);
    }

    #[test]
    fn textnet_script_trains_on_tokens() {
        let src = "\
data = token_data(n=60, seq=8, vocab=32, classes=3, seed=9)
loader = dataloader(data, batch_size=20, seed=9)
net = textnet(vocab=32, dim=12, classes=3, seed=9)
optimizer = sgd(net, lr=0.3, momentum=0.9)
criterion = cross_entropy()
for epoch in range(12):
    for batch in loader.epoch():
        optimizer.zero_grad()
        preds = net.forward(batch)
        loss = criterion.forward(preds, batch)
        grad = criterion.backward()
        net.backward(grad)
        optimizer.step()
acc = evaluate(net, data)
";
        let i = run_vanilla(src);
        assert!(i.env.get("acc").unwrap().as_f64().unwrap() > 0.6);
    }

    #[test]
    fn cosine_and_cyclic_schedules_from_script() {
        let src = "\
net = mlp(seed=1)
opt1 = sgd(net, lr=1.0)
cos = cosine_lr(opt1, base_lr=1.0, eta_min=0.0, t_max=4)
for i in range(4):
    cos.step()
final_cos = opt1.lr
opt2 = sgd(net, lr=0.0)
cyc = cyclic_lr(opt2, min_lr=0.1, max_lr=0.9, period=4)
cyc.step()
cyc.step()
peak = opt2.lr
";
        let i = run_vanilla(src);
        assert!(i.env.get("final_cos").unwrap().as_f64().unwrap() < 1e-6);
        assert!((i.env.get("peak").unwrap().as_f64().unwrap() - 0.9).abs() < 1e-6);
    }

    #[test]
    fn string_ops_and_comparisons() {
        let i = run_vanilla("a = \"x\" + \"y\"\nb = a == \"xy\"\nc = a != \"xy\"\n");
        assert_eq!(i.env.get("a").unwrap().display(), "xy");
        assert!(i.env.get("b").unwrap().truthy());
        assert!(!i.env.get("c").unwrap().truthy());
    }

    #[test]
    fn builtin_math_helpers() {
        let i = run_vanilla("a = min(3, 1.5)\nb = max(3, 1.5)\nc = abs(0 - 4)\n");
        assert_eq!(i.env.get("a").unwrap().as_f64().unwrap(), 1.5);
        assert_eq!(i.env.get("b").unwrap().as_f64().unwrap(), 3.0);
        assert_eq!(i.env.get("c").unwrap().as_f64().unwrap(), 4.0);
    }

    #[test]
    fn len_over_containers_and_objects() {
        let src = "\
data = synth_data(n=17, dim=4, classes=2, seed=2)
a = len([1, 2, 3])
b = len(\"hello\")
c = len(data)
";
        let i = run_vanilla(src);
        assert_eq!(i.env.get("a").unwrap().as_i64().unwrap(), 3);
        assert_eq!(i.env.get("b").unwrap().as_i64().unwrap(), 5);
        assert_eq!(i.env.get("c").unwrap().as_i64().unwrap(), 17);
    }

    #[test]
    fn tensor_methods_from_script() {
        let src = "\
data = synth_data(n=8, dim=4, classes=2, seed=2)
loader = dataloader(data, batch_size=8, seed=2)
net = mlp(input=4, hidden=4, classes=2, depth=1, seed=2)
batches = loader.epoch()
preds = net.forward(batches[0])
n = preds.norm()
m = preds.mean()
s = preds.shape()
";
        let i = run_vanilla(src);
        assert!(i.env.get("n").unwrap().as_f64().unwrap() >= 0.0);
        assert_eq!(i.env.get("s").unwrap().display(), "(8, 2)");
        let _ = i.env.get("m").unwrap().as_f64().unwrap();
    }

    #[test]
    fn range_with_two_args() {
        let i = run_vanilla("total = 0\nfor k in range(3, 6):\n    total = total + k\n");
        assert_eq!(i.env.get("total").unwrap().as_i64().unwrap(), 12);
    }

    #[test]
    fn modulo_and_negative_numbers() {
        let i = run_vanilla("a = 7 % 3\nb = -7 % 3\n");
        assert_eq!(i.env.get("a").unwrap().as_i64().unwrap(), 1);
        // rem_euclid semantics, like Python.
        assert_eq!(i.env.get("b").unwrap().as_i64().unwrap(), 2);
    }

    #[test]
    fn unknown_method_and_attr_errors_name_the_kind() {
        let prog = parse("net = mlp(seed=1)\nnet.frobnicate()\n").unwrap();
        let err = Interp::new(Mode::Vanilla).run(&prog).unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
        let prog = parse("net = mlp(seed=1)\nx = net.bogus_attr\n").unwrap();
        let err = Interp::new(Mode::Vanilla).run(&prog).unwrap_err();
        assert!(err.to_string().contains("bogus_attr"));
    }

    #[test]
    fn unpack_mismatch_errors() {
        let prog = parse("a, b, c = 1, 2\n").unwrap();
        assert!(Interp::new(Mode::Vanilla).run(&prog).is_err());
    }

    #[test]
    fn loss_argument_type_errors() {
        let prog = parse("criterion = cross_entropy()\nx = criterion.forward(1, 2)\n").unwrap();
        assert!(Interp::new(Mode::Vanilla).run(&prog).is_err());
    }

    #[test]
    fn meter_accumulates() {
        let src = "\
m = meter()
m.update(1.0)
m.update(3.0)
avg = m.mean()
n = m.count
m.reset()
avg2 = m.mean()
";
        let i = run_vanilla(src);
        assert_eq!(i.env.get("avg").unwrap().as_f64().unwrap(), 2.0);
        assert_eq!(i.env.get("n").unwrap().as_i64().unwrap(), 2);
        assert_eq!(i.env.get("avg2").unwrap().as_f64().unwrap(), 0.0);
    }
}
