//! Structured log output — the observable surface of a training run.
//!
//! "The standard metrics that get logged on model training (e.g. the loss
//! and accuracy) form a fairly unique fingerprint of a model's training
//! characteristics" (paper §5.2.2). Flor's deferred correctness checks diff
//! this stream between record and replay.
//!
//! Entries are tagged with the [`Section`] of the program they came from so
//! parallel replay can (a) suppress duplicate output from worker
//! *initialization* iterations, and (b) merge worker partitions back into
//! record order.

use std::fmt;

/// Which part of the program produced a log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Section {
    /// Before the main loop.
    Pre,
    /// Inside main-loop iteration `g` (global index).
    Iter(u64),
    /// After the main loop.
    Post,
}

/// One `log(...)` output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// The log key (first argument of `log`).
    pub key: String,
    /// Canonical rendering of the remaining arguments, space-joined.
    pub value: String,
    /// Program section.
    pub section: Section,
}

impl fmt::Display for LogEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sec = match self.section {
            Section::Pre => "pre".to_string(),
            Section::Iter(g) => format!("it{g:06}"),
            Section::Post => "post".to_string(),
        };
        write!(f, "[{sec}] {}\t{}", self.key, self.value)
    }
}

/// An append-only log stream with section tracking and a suppression gate
/// (used during replay-initialization iterations).
#[derive(Debug, Default)]
pub struct LogStream {
    entries: Vec<LogEntry>,
    section: Option<Section>,
    suppressed: bool,
}

impl LogStream {
    /// Empty stream, positioned in the preamble.
    pub fn new() -> Self {
        LogStream {
            entries: Vec::new(),
            section: Some(Section::Pre),
            suppressed: false,
        }
    }

    /// Appends an entry (unless suppressed).
    pub fn log(&mut self, key: impl Into<String>, value: impl Into<String>) {
        if self.suppressed {
            return;
        }
        self.entries.push(LogEntry {
            key: key.into(),
            value: value.into(),
            section: self.section.unwrap_or(Section::Pre),
        });
    }

    /// Sets the current section.
    pub fn set_section(&mut self, section: Section) {
        self.section = Some(section);
    }

    /// Current section.
    pub fn section(&self) -> Section {
        self.section.unwrap_or(Section::Pre)
    }

    /// Gates output (replay-initialization iterations re-execute unskippable
    /// code whose logs already exist in other workers' partitions).
    pub fn set_suppressed(&mut self, suppressed: bool) {
        self.suppressed = suppressed;
    }

    /// All entries, in append order.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Consumes the stream.
    pub fn into_entries(self) -> Vec<LogEntry> {
        self.entries
    }

    /// Removes and returns everything logged so far (section and
    /// suppression state are untouched). The streaming replay executor
    /// drains after each completed micro-range so entries flow to the
    /// incremental merger instead of accumulating until the barrier.
    pub fn drain(&mut self) -> Vec<LogEntry> {
        std::mem::take(&mut self.entries)
    }

    /// Serializes entries to the artifact text format (one entry per line).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }

    /// Parses the artifact text format.
    pub fn parse_text(text: &str) -> Vec<LogEntry> {
        text.lines()
            .filter_map(|line| {
                let rest = line.strip_prefix('[')?;
                let close = rest.find(']')?;
                let (sec_str, tail) = rest.split_at(close);
                let tail = tail[1..].trim_start();
                let section = if sec_str == "pre" {
                    Section::Pre
                } else if sec_str == "post" {
                    Section::Post
                } else {
                    Section::Iter(sec_str.strip_prefix("it")?.parse().ok()?)
                };
                let (key, value) = tail.split_once('\t')?;
                Some(LogEntry {
                    key: key.to_string(),
                    value: value.to_string(),
                    section,
                })
            })
            .collect()
    }
}

/// Merges per-worker replay logs back into record order: worker-0 preamble,
/// then all Iter entries sorted by global iteration (stable within an
/// iteration), then the postamble.
///
/// Only the worker owning the final segment emits postamble entries — the
/// interpreter suppresses everyone else's (their post-loop state is
/// intermediate) — so collecting Post entries across all workers yields
/// exactly the true postamble.
pub fn merge_worker_logs(worker_logs: Vec<Vec<LogEntry>>) -> Vec<LogEntry> {
    let mut merged = Vec::new();
    // Preamble from worker 0 (all workers execute it identically).
    if let Some(first) = worker_logs.first() {
        merged.extend(first.iter().filter(|e| e.section == Section::Pre).cloned());
    }
    // Iteration entries from every worker, sorted by global iteration.
    let mut iters: Vec<&LogEntry> = worker_logs
        .iter()
        .flatten()
        .filter(|e| matches!(e.section, Section::Iter(_)))
        .collect();
    iters.sort_by_key(|e| match e.section {
        Section::Iter(g) => g,
        _ => unreachable!(),
    });
    merged.extend(iters.into_iter().cloned());
    // Postamble: exactly one worker emits it (see above).
    merged.extend(
        worker_logs
            .iter()
            .flatten()
            .filter(|e| e.section == Section::Post)
            .cloned(),
    );
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_appends_with_section() {
        let mut s = LogStream::new();
        s.log("a", "1");
        s.set_section(Section::Iter(3));
        s.log("b", "2");
        s.set_section(Section::Post);
        s.log("c", "3");
        assert_eq!(s.entries().len(), 3);
        assert_eq!(s.entries()[0].section, Section::Pre);
        assert_eq!(s.entries()[1].section, Section::Iter(3));
        assert_eq!(s.entries()[2].section, Section::Post);
    }

    #[test]
    fn suppression_gates_output() {
        let mut s = LogStream::new();
        s.set_suppressed(true);
        s.log("hidden", "x");
        s.set_suppressed(false);
        s.log("visible", "y");
        assert_eq!(s.entries().len(), 1);
        assert_eq!(s.entries()[0].key, "visible");
    }

    #[test]
    fn text_roundtrip() {
        let mut s = LogStream::new();
        s.log("loss", "0.5 extra");
        s.set_section(Section::Iter(12));
        s.log("acc", "0.91");
        s.set_section(Section::Post);
        s.log("final", "done");
        let text = s.to_text();
        let parsed = LogStream::parse_text(&text);
        assert_eq!(parsed, s.entries());
    }

    #[test]
    fn parse_ignores_malformed_lines() {
        let parsed = LogStream::parse_text("garbage\n[pre] key\tvalue\nmore garbage\n");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].key, "key");
    }

    #[test]
    fn merge_orders_iterations_across_workers() {
        // Worker 0 owns epochs 0-1 (its postamble is suppressed by the
        // interpreter, so its log has no Post entries); worker 1 owns the
        // final segment and emits the postamble.
        let w0 = vec![
            LogEntry {
                key: "pre".into(),
                value: "p".into(),
                section: Section::Pre,
            },
            LogEntry {
                key: "e".into(),
                value: "0".into(),
                section: Section::Iter(0),
            },
            LogEntry {
                key: "e".into(),
                value: "1".into(),
                section: Section::Iter(1),
            },
        ];
        let w1 = vec![
            LogEntry {
                key: "pre".into(),
                value: "p".into(),
                section: Section::Pre,
            },
            LogEntry {
                key: "e".into(),
                value: "2".into(),
                section: Section::Iter(2),
            },
            LogEntry {
                key: "e".into(),
                value: "3".into(),
                section: Section::Iter(3),
            },
            LogEntry {
                key: "post".into(),
                value: "w1".into(),
                section: Section::Post,
            },
        ];
        let merged = merge_worker_logs(vec![w0, w1]);
        let keys: Vec<&str> = merged.iter().map(|e| e.value.as_str()).collect();
        assert_eq!(keys, vec!["p", "0", "1", "2", "3", "w1"]);
    }

    #[test]
    fn merge_survives_trailing_workers_without_segments() {
        // A worker with no plan produces an empty (fully suppressed) log;
        // the postamble still comes through from the final-segment owner.
        let w0 = vec![
            LogEntry {
                key: "e".into(),
                value: "0".into(),
                section: Section::Iter(0),
            },
            LogEntry {
                key: "post".into(),
                value: "final".into(),
                section: Section::Post,
            },
        ];
        let w1: Vec<LogEntry> = Vec::new();
        let merged = merge_worker_logs(vec![w0, w1]);
        assert_eq!(merged.last().unwrap().value, "final");
    }

    #[test]
    fn merge_is_stable_within_iteration() {
        let w0 = vec![
            LogEntry {
                key: "a".into(),
                value: "1".into(),
                section: Section::Iter(0),
            },
            LogEntry {
                key: "b".into(),
                value: "2".into(),
                section: Section::Iter(0),
            },
        ];
        let merged = merge_worker_logs(vec![w0]);
        assert_eq!(merged[0].key, "a");
        assert_eq!(merged[1].key, "b");
    }

    #[test]
    fn merge_single_worker_is_identity_shape() {
        let w = vec![
            LogEntry {
                key: "p".into(),
                value: "".into(),
                section: Section::Pre,
            },
            LogEntry {
                key: "i".into(),
                value: "".into(),
                section: Section::Iter(0),
            },
            LogEntry {
                key: "q".into(),
                value: "".into(),
                section: Section::Post,
            },
        ];
        let merged = merge_worker_logs(vec![w.clone()]);
        assert_eq!(merged, w);
    }
}
