//! # flor-core
//!
//! The Flor engine: a record–replay system for **hindsight logging**,
//! reproducing *Hindsight Logging for Model Training* (Garcia, Liu,
//! Sreekanti, Yan, Dandamudi, Gonzalez, Hellerstein, Sen — VLDB 2020) in
//! Rust.
//!
//! Hindsight logging lets a model developer add log statements to training
//! code *after* a run and obtain their output without re-executing training
//! from scratch. Flor achieves this physiologically, in the
//! database-recovery sense: a **record** phase takes lean, adaptive
//! checkpoints of loop side-effects at negligible overhead, and a **replay**
//! phase mixes physical recovery (loading checkpoints) with logical recovery
//! (re-executing only the probed code), parallelized across workers by
//! *hindsight parallelism*.
//!
//! ## The two API layers
//!
//! - **Script layer** (the paper's interface): run a FlorScript training
//!   program through [`record::record`], add `log(...)` probes to the
//!   source, and hand the new source to [`replay::replay`]. Everything —
//!   instrumentation, side-effect analysis, checkpoint placement, probe
//!   detection, parallelization — is automatic; the only opt-in is
//!   `import flor` at the top of the script.
//! - **Native layer** ([`native`]): a typed Rust API (`Session`,
//!   `skip_block`) for embedding hindsight logging in Rust programs that
//!   have Flor-style loop structure.
//!
//! ## Module map (paper section in parentheses)
//!
//! - [`value`] / [`env`]: the interpreter's Python-like object graph —
//!   reference semantics make the optimizer→model aliasing real (§5.2.1).
//! - [`interp`]: tree-walking interpreter + the ML builtin surface.
//! - [`logstream`]: structured log output; the replay/record fingerprint
//!   (§5.2.2).
//! - [`skipblock`]: the SkipBlock construct — parameterized branching,
//!   side-effect memoization, restoration (§4.2).
//! - [`adaptive`]: the record-overhead / replay-latency invariants and the
//!   joint invariant, Eqs. 1–4 (§5.3).
//! - [`record`]: the record phase (§3.1).
//! - [`replay`]: the replay phase — probe detection by source diff, partial
//!   replay, deferred correctness checks (§3.2, §5.2.2).
//! - [`parallel`]: hindsight parallelism — iterator partitioning, strong and
//!   weak worker initialization (§5.4), plus the cost-aware micro-range
//!   splitter and work-stealing queue the replay runtime schedules with.
//! - [`profile`]: per-iteration cost profiles recorded alongside the run,
//!   consumed by the micro-range splitter.
//! - [`stream`]: the incremental record-order log merger — hindsight
//!   queries stream results as leading iterations complete instead of
//!   blocking on the last worker.
//! - [`oracle`]: runtime changeset augmentation over the live object graph
//!   (§5.2.1 step 3).
//! - [`vm`]: the bytecode replay VM — executes `flor-lang`'s compiled
//!   modules with slot-resolved variables and a compiled-module cache,
//!   keeping the tree-walker as fallback and differential oracle.

#![warn(missing_docs)]

pub mod adaptive;
pub mod env;
pub mod error;
pub mod interp;
pub mod logstream;
pub mod native;
pub mod oracle;
pub mod parallel;
pub mod prefetch;
pub mod profile;
pub mod record;
pub mod replay;
pub mod sample;
pub mod skipblock;
pub mod stream;
pub mod value;
pub mod versions;
pub mod vm;

pub use adaptive::AdaptiveController;
pub use error::FlorError;
pub use logstream::{LogEntry, LogStream, Section};
pub use parallel::{CancelToken, InitMode};
pub use profile::CostProfile;
pub use record::{record, RecordOptions, RecordReport};
pub use replay::{replay, ReplayOptions, ReplayReport};
pub use stream::StreamEvent;
pub use vm::{compile_program, ModuleCache};
