//! Per-iteration cost profiles — the record-time measurements that drive
//! cost-aware replay scheduling.
//!
//! The adaptive controller (paper §5.3, Table 2) already measures per-loop
//! compute (`C_i`), materialize (`M_i`), and restore (`R_i = c·M_i`) times
//! to place checkpoints. Those same measurements, kept *per main-loop
//! iteration* instead of aggregated per block, describe exactly how skewed
//! a training run is (warmup iterations, eval epochs, LR-schedule phase
//! changes…) — and skew is what caps static contiguous partitioning: the
//! slowest worker gates the barrier join, so Figure 13's 200 epochs over
//! 16 GPUs tops out at 15.38× no matter how fast the other 15 finish.
//!
//! [`ProfileBuilder`] accumulates the per-iteration observations during
//! record; [`CostProfile`] is the persisted artifact
//! ([`COST_PROFILE_ARTIFACT`]) the replay planner loads to size micro-ranges
//! ([`crate::parallel::split_micro_ranges`]) and to compute the
//! profile-aware speedup bound
//! ([`crate::parallel::max_speedup_profiled`]).

/// Artifact name under which the record phase persists the profile.
pub const COST_PROFILE_ARTIFACT: &str = "cost_profile.txt";

/// Largest iteration index [`CostProfile::parse_text`] accepts — the
/// profile is advisory, so a corrupt index line is skipped rather than
/// allowed to drive an arbitrarily large allocation.
pub const MAX_PROFILED_ITERATIONS: u64 = 1 << 24;

/// Slice-adjusted estimate of one *executed* iteration's replay cost:
/// the recorded compute cost scaled by the slice's live statement
/// fraction (in permille). Recorded profiles measure the full loop
/// body; when dead-statement elision drops part of it, pricing seeded
/// ranges at full cost would skew work-stealing balance.
pub fn sliced_cost(cost_ns: u64, live_permille: u32) -> u64 {
    ((cost_ns as u128 * u128::from(live_permille.min(1000))) / 1000).max(1) as u64
}

/// Measured costs of one main-loop iteration at record time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IterCost {
    /// Total SkipBlock compute time in this iteration, ns (`C_i`).
    pub compute_ns: u64,
    /// Caller-visible materialization time in this iteration, ns (`M_i`,
    /// the quantity the controller's scaling factor `c` is calibrated
    /// against).
    pub materialize_ns: u64,
    /// SkipBlock executions observed in this iteration.
    pub blocks: u32,
    /// How many of them materialized a Loop End Checkpoint.
    pub checkpointed_blocks: u32,
}

impl IterCost {
    /// True when every block of the iteration left a checkpoint (the
    /// iteration can be *restored* during replay).
    pub fn fully_checkpointed(&self) -> bool {
        self.blocks > 0 && self.checkpointed_blocks == self.blocks
    }
}

/// A per-iteration cost profile for one recorded run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostProfile {
    /// Cost of each main-loop iteration, indexed by global iteration.
    pub iters: Vec<IterCost>,
    /// The controller's final restore/materialize scaling factor
    /// (`R_i = c·M_i`).
    pub scaling_c: f64,
}

impl CostProfile {
    /// Number of profiled iterations.
    pub fn len(&self) -> usize {
        self.iters.len()
    }

    /// True when no iteration was profiled.
    pub fn is_empty(&self) -> bool {
        self.iters.is_empty()
    }

    /// Estimated replay cost of iteration `g` in ns, never zero (zero-cost
    /// iterations would make every cost-balanced split degenerate).
    ///
    /// `execute` says whether replay will re-execute the iteration (probed
    /// blocks, poisoned reuse, missing checkpoints) or restore it. An
    /// executed iteration costs its recorded compute time; a restored one
    /// costs `c·M_i`. Iterations beyond the profile (the replayed run may
    /// be longer than the profiled one) fall back to the mean cost of the
    /// profiled iterations.
    pub fn replay_cost_ns(&self, g: u64, execute: bool) -> u64 {
        let Some(it) = self.iters.get(g as usize) else {
            return self.mean_cost_ns(execute);
        };
        let ns = if execute || !it.fully_checkpointed() {
            it.compute_ns
        } else {
            (self.scaling_c * it.materialize_ns as f64) as u64
        };
        ns.max(1)
    }

    /// Mean replay cost across profiled iterations (≥ 1 ns).
    pub fn mean_cost_ns(&self, execute: bool) -> u64 {
        if self.iters.is_empty() {
            return 1;
        }
        let total: u64 = (0..self.iters.len() as u64)
            .map(|g| self.replay_cost_ns(g, execute))
            .sum();
        (total / self.iters.len() as u64).max(1)
    }

    /// Replay cost vector for iterations `0..n`, extending past the profile
    /// with the mean cost when the replayed loop is longer. The mean is
    /// computed once — this runs inside the range queue's seeding lock, so
    /// it must stay O(n + p), not O(n·p).
    pub fn replay_costs(&self, n: u64, execute: bool) -> Vec<u64> {
        let mean = self.mean_cost_ns(execute);
        (0..n)
            .map(|g| {
                if (g as usize) < self.iters.len() {
                    self.replay_cost_ns(g, execute)
                } else {
                    mean
                }
            })
            .collect()
    }

    /// True when every profiled iteration left a full set of block
    /// checkpoints — the precondition for the slicer's checkpoint cuts
    /// (an unprobed block provably restores instead of executing).
    pub fn dense_checkpoints(&self) -> bool {
        !self.iters.is_empty() && self.iters.iter().all(|it| it.fully_checkpointed())
    }

    /// Serializes to the artifact text format (one iteration per line).
    pub fn to_text(&self) -> String {
        let mut out = format!("scaling_c\t{}\n", self.scaling_c);
        for (g, it) in self.iters.iter().enumerate() {
            out.push_str(&format!(
                "iter\t{g}\t{}\t{}\t{}\t{}\n",
                it.compute_ns, it.materialize_ns, it.blocks, it.checkpointed_blocks
            ));
        }
        out
    }

    /// Parses the artifact text format. Malformed lines are skipped (the
    /// profile is advisory — a torn artifact degrades to a shorter profile,
    /// never an error). Returns `None` when nothing parseable remains.
    pub fn parse_text(text: &str) -> Option<CostProfile> {
        let mut profile = CostProfile::default();
        let mut saw_header = false;
        for line in text.lines() {
            let mut parts = line.split('\t');
            match parts.next() {
                Some("scaling_c") => {
                    if let Some(c) = parts.next().and_then(|v| v.parse().ok()) {
                        profile.scaling_c = c;
                        saw_header = true;
                    }
                }
                Some("iter") => {
                    let mut num = || parts.next().and_then(|v| v.parse::<u64>().ok());
                    let (Some(g), Some(c), Some(m), Some(b), Some(k)) =
                        (num(), num(), num(), num(), num())
                    else {
                        continue;
                    };
                    // A corrupt index must degrade like any other malformed
                    // line, not drive a giant resize: cap at a bound far
                    // above any real main loop.
                    if g > MAX_PROFILED_ITERATIONS {
                        continue;
                    }
                    let g = g as usize;
                    if profile.iters.len() <= g {
                        profile.iters.resize(g + 1, IterCost::default());
                    }
                    profile.iters[g] = IterCost {
                        compute_ns: c,
                        materialize_ns: m,
                        blocks: b as u32,
                        checkpointed_blocks: k as u32,
                    };
                }
                _ => {}
            }
        }
        if saw_header || !profile.iters.is_empty() {
            Some(profile)
        } else {
            None
        }
    }
}

/// Accumulates per-iteration observations during the record phase.
#[derive(Debug, Clone, Default)]
pub struct ProfileBuilder {
    iters: Vec<IterCost>,
}

impl ProfileBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        ProfileBuilder::default()
    }

    /// Records one SkipBlock execution inside main-loop iteration `g`.
    pub fn observe(&mut self, g: u64, compute_ns: u64, materialize_ns: Option<u64>) {
        let g = g as usize;
        if self.iters.len() <= g {
            self.iters.resize(g + 1, IterCost::default());
        }
        let it = &mut self.iters[g];
        it.compute_ns += compute_ns;
        it.blocks += 1;
        if let Some(m) = materialize_ns {
            it.materialize_ns += m;
            it.checkpointed_blocks += 1;
        }
    }

    /// Finishes the profile with the controller's final scaling factor.
    pub fn finish(self, scaling_c: f64) -> CostProfile {
        CostProfile {
            iters: self.iters,
            scaling_c,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed() -> CostProfile {
        let mut b = ProfileBuilder::new();
        for g in 0..8u64 {
            let c = if g == 3 { 1_000_000 } else { 1_000 };
            b.observe(g, c, Some(100));
        }
        b.finish(1.38)
    }

    #[test]
    fn builder_accumulates_per_iteration() {
        let mut b = ProfileBuilder::new();
        b.observe(0, 100, Some(10));
        b.observe(0, 200, None);
        b.observe(2, 50, Some(5));
        let p = b.finish(1.0);
        assert_eq!(p.len(), 3);
        assert_eq!(p.iters[0].compute_ns, 300);
        assert_eq!(p.iters[0].blocks, 2);
        assert_eq!(p.iters[0].checkpointed_blocks, 1);
        assert!(!p.iters[0].fully_checkpointed());
        assert!(p.iters[2].fully_checkpointed());
        // Iteration 1 never observed: zero blocks, not checkpointed.
        assert!(!p.iters[1].fully_checkpointed());
    }

    #[test]
    fn text_roundtrip_is_exact() {
        let p = skewed();
        let parsed = CostProfile::parse_text(&p.to_text()).unwrap();
        assert_eq!(parsed, p);
    }

    #[test]
    fn parse_skips_garbage_lines() {
        let text = "garbage\nscaling_c\t2.0\niter\t0\t5\t1\t1\t1\niter\tbroken\n";
        let p = CostProfile::parse_text(text).unwrap();
        assert_eq!(p.scaling_c, 2.0);
        assert_eq!(p.len(), 1);
        assert_eq!(p.iters[0].compute_ns, 5);
        assert!(CostProfile::parse_text("nothing here\n").is_none());
    }

    #[test]
    fn parse_rejects_absurd_iteration_indices() {
        // A corrupt index line must be skipped, not drive a terabyte-scale
        // resize (the profile is advisory; replay must keep working).
        let text = "scaling_c\t1.0\niter\t99999999999\t1\t1\t1\t1\niter\t1\t7\t1\t1\t1\n";
        let p = CostProfile::parse_text(text).unwrap();
        assert_eq!(p.len(), 2, "only the sane line lands");
        assert_eq!(p.iters[1].compute_ns, 7);
    }

    #[test]
    fn replay_cost_distinguishes_execute_and_restore() {
        let p = skewed();
        // Executed iterations cost their compute time.
        assert_eq!(p.replay_cost_ns(3, true), 1_000_000);
        // Restored iterations cost c·M.
        assert_eq!(p.replay_cost_ns(3, false), 138);
        // Beyond the profile: mean cost.
        assert_eq!(p.replay_cost_ns(99, true), p.mean_cost_ns(true));
    }

    #[test]
    fn uncheckpointed_iterations_always_cost_compute() {
        let mut b = ProfileBuilder::new();
        b.observe(0, 500, None);
        let p = b.finish(1.0);
        assert_eq!(
            p.replay_cost_ns(0, false),
            500,
            "no checkpoint → must execute"
        );
    }

    #[test]
    fn zero_cost_iterations_are_floored() {
        let mut b = ProfileBuilder::new();
        b.observe(0, 0, None);
        let p = b.finish(1.0);
        assert_eq!(p.replay_cost_ns(0, true), 1);
        assert!(p.mean_cost_ns(true) >= 1);
        assert!(CostProfile::default().mean_cost_ns(false) >= 1);
    }
}
