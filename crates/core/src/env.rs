//! The interpreter environment: a single global scope, like a Python module.

use crate::error::{rt, FlorError};
use crate::value::Value;
use std::collections::HashMap;

/// Variable bindings for a running script.
#[derive(Default)]
pub struct Env {
    vars: HashMap<String, Value>,
}

impl Env {
    /// Empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds (or rebinds) a name.
    pub fn set(&mut self, name: impl Into<String>, value: Value) {
        self.vars.insert(name.into(), value);
    }

    /// Looks up a name. Returns a borrow — callers that need ownership
    /// clone at the call site, so cheap inspections (type checks, size
    /// estimates, identity probes) stop paying for a deep `Value` clone.
    pub fn get(&self, name: &str) -> Result<&Value, FlorError> {
        self.vars
            .get(name)
            .ok_or_else(|| rt(format!("name {name:?} is not defined")))
    }

    /// Looks up a name without erroring. Borrowing, like [`Env::get`].
    pub fn try_get(&self, name: &str) -> Option<&Value> {
        self.vars.get(name)
    }

    /// True if the name is bound.
    pub fn contains(&self, name: &str) -> bool {
        self.vars.contains_key(name)
    }

    /// All bound names (unordered).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.vars.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut env = Env::new();
        env.set("x", Value::Int(3));
        assert_eq!(env.get("x").unwrap().as_i64().unwrap(), 3);
        env.set("x", Value::Float(1.5));
        assert_eq!(env.get("x").unwrap().as_f64().unwrap(), 1.5);
    }

    #[test]
    fn missing_name_errors() {
        let env = Env::new();
        let err = env.get("nope").unwrap_err();
        assert!(err.to_string().contains("nope"));
        assert!(env.try_get("nope").is_none());
        assert!(!env.contains("nope"));
    }
}
