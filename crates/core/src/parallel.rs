//! Hindsight parallelism planning (paper §5.4, Figures 8–10, 13).
//!
//! "Even sequential code can be re-executed in parallel if the right
//! checkpoints are materialized on the first pass." The planner is pure
//! arithmetic shared by the live replay engine and the `flor-sim`
//! discrete-event simulator: contiguous partitioning of the main loop's
//! iterations over `G` workers, strong/weak initialization segments, and
//! the load-balance speedup bound (e.g. the paper's 200 epochs over 16 GPUs
//! → ⌈200/16⌉ = 13 epochs per worker → max speedup 200/13 = 15.38×).

/// Worker initialization mode (paper §5.4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitMode {
    /// Initialize every iteration preceding the work segment by restoring
    /// each one's checkpoints in turn. Correct whenever record checkpointed
    /// (the default, per the paper).
    Strong,
    /// Jump directly to the last preceding iteration's checkpoint. Needed
    /// when checkpoints are sparse/periodic (RTE & CoLA under adaptive
    /// checkpointing), risky if checkpoints miss side-effects.
    Weak,
}

/// One worker's share of the main loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPlan {
    /// Worker id (the paper's PID).
    pub pid: usize,
    /// First global iteration of the work segment (inclusive).
    pub work_start: u64,
    /// One past the last global iteration of the work segment.
    pub work_end: u64,
    /// Initialization segment `[init_start, work_start)`; empty when the
    /// worker starts at iteration 0.
    pub init_start: u64,
}

impl WorkerPlan {
    /// Number of work iterations.
    pub fn work_len(&self) -> u64 {
        self.work_end - self.work_start
    }

    /// Number of initialization iterations.
    pub fn init_len(&self) -> u64 {
        self.work_start - self.init_start
    }

    /// Global iterations of the init segment.
    pub fn init_iters(&self) -> std::ops::Range<u64> {
        self.init_start..self.work_start
    }

    /// Global iterations of the work segment.
    pub fn work_iters(&self) -> std::ops::Range<u64> {
        self.work_start..self.work_end
    }
}

/// Partitions `n_iters` main-loop iterations over `workers` workers into
/// contiguous, disjoint, covering segments (the first `n_iters % workers`
/// workers take one extra iteration), and attaches each worker's
/// initialization segment per `mode`.
///
/// Workers whose segment would be empty are omitted — "RTE & CoLA only have
/// 6 epoch-partitions each, so parallelism on 4 GPUs leads to at best
/// 2/6 = 33% replay time" (Figure 10): you cannot use more workers than
/// iterations.
pub fn plan(n_iters: u64, workers: usize, mode: InitMode) -> Vec<WorkerPlan> {
    if n_iters == 0 || workers == 0 {
        return Vec::new();
    }
    let g = (workers as u64).min(n_iters);
    let base = n_iters / g;
    let extra = n_iters % g;
    let mut plans = Vec::with_capacity(g as usize);
    let mut start = 0u64;
    for pid in 0..g {
        let len = base + if pid < extra { 1 } else { 0 };
        let work_start = start;
        let work_end = start + len;
        let init_start = match mode {
            _ if work_start == 0 => 0,
            InitMode::Strong => 0,
            InitMode::Weak => work_start - 1,
        };
        plans.push(WorkerPlan {
            pid: pid as usize,
            work_start,
            work_end,
            init_start,
        });
        start = work_end;
    }
    plans
}

/// Partitions `n_iters` iterations over `workers` workers when segment
/// boundaries are restricted to `anchors` — iterations where every
/// main-loop block has a checkpoint. This is how weak initialization copes
/// with *periodic* checkpointing (paper §5.4.2): "RTE & CoLA only have 6
/// epoch-partitions each, so parallelism on 4 GPUs leads to at best
/// 2/6 = 33% replay time" (Figure 10).
///
/// Anchors must include 0. Each worker receives a contiguous run of
/// checkpoint intervals, greedily balanced by iteration count; weak
/// initialization for a worker starting at anchor `a > 0` is the single
/// iteration `a - 1` (whose Loop End Checkpoint exists by construction).
pub fn plan_anchored(
    n_iters: u64,
    anchors: &std::collections::BTreeSet<u64>,
    workers: usize,
) -> Vec<WorkerPlan> {
    if n_iters == 0 || workers == 0 {
        return Vec::new();
    }
    // Segment boundaries: the anchors below n_iters, plus the end.
    let mut bounds: Vec<u64> = anchors.iter().copied().filter(|&a| a < n_iters).collect();
    if bounds.first() != Some(&0) {
        bounds.insert(0, 0);
    }
    bounds.push(n_iters);
    let n_segments = bounds.len() - 1;
    let g = workers.min(n_segments);
    let target = (n_iters as f64 / g as f64).ceil() as u64;

    let mut plans: Vec<WorkerPlan> = Vec::with_capacity(g);
    let mut seg = 0usize;
    for pid in 0..g {
        if seg >= n_segments {
            break;
        }
        let work_start = bounds[seg];
        let mut end_seg = seg;
        let remaining_workers = g - pid - 1;
        // Take segments until reaching the target, but leave at least one
        // segment for each remaining worker.
        while end_seg + 1 < n_segments
            && (n_segments - (end_seg + 1)) > remaining_workers
            && bounds[end_seg + 1] - work_start < target
        {
            end_seg += 1;
        }
        let work_end = bounds[end_seg + 1];
        let init_start = if work_start == 0 { 0 } else { work_start - 1 };
        plans.push(WorkerPlan {
            pid,
            work_start,
            work_end,
            init_start,
        });
        seg = end_seg + 1;
    }
    // Any leftover segments go to the last worker.
    if seg < n_segments {
        if let Some(last) = plans.last_mut() {
            last.work_end = n_iters;
        }
    }
    plans
}

/// Maximum achievable parallel speedup for `n_iters` over `workers`
/// workers, limited by the largest share: `n / ⌈n/G⌉`.
pub fn max_speedup(n_iters: u64, workers: usize) -> f64 {
    if n_iters == 0 || workers == 0 {
        return 1.0;
    }
    let g = (workers as u64).min(n_iters);
    let largest = n_iters.div_ceil(g);
    n_iters as f64 / largest as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_covering(n: u64, plans: &[WorkerPlan]) {
        let mut covered = Vec::new();
        for p in plans {
            assert!(p.work_start <= p.work_end);
            covered.extend(p.work_iters());
        }
        covered.sort_unstable();
        assert_eq!(covered, (0..n).collect::<Vec<_>>(), "plans must cover 0..{n} disjointly");
    }

    #[test]
    fn even_partition() {
        let plans = plan(8, 4, InitMode::Strong);
        assert_eq!(plans.len(), 4);
        for p in &plans {
            assert_eq!(p.work_len(), 2);
        }
        assert_covering(8, &plans);
    }

    #[test]
    fn uneven_partition_front_loads_extras() {
        let plans = plan(10, 4, InitMode::Strong);
        let lens: Vec<u64> = plans.iter().map(WorkerPlan::work_len).collect();
        assert_eq!(lens, vec![3, 3, 2, 2]);
        assert_covering(10, &plans);
    }

    #[test]
    fn more_workers_than_iterations() {
        let plans = plan(3, 8, InitMode::Strong);
        assert_eq!(plans.len(), 3, "workers beyond the iteration count are dropped");
        assert_covering(3, &plans);
    }

    #[test]
    fn strong_init_reaches_back_to_zero() {
        let plans = plan(8, 4, InitMode::Strong);
        assert_eq!(plans[0].init_len(), 0);
        assert_eq!(plans[1].init_iters(), 0..2);
        assert_eq!(plans[3].init_iters(), 0..6);
    }

    #[test]
    fn weak_init_is_single_iteration() {
        let plans = plan(8, 4, InitMode::Weak);
        assert_eq!(plans[0].init_len(), 0);
        for p in &plans[1..] {
            assert_eq!(p.init_len(), 1);
            assert_eq!(p.init_start, p.work_start - 1);
        }
    }

    #[test]
    fn figure13_rsnt_bound() {
        // 200 epochs on 16 GPUs → max share ⌈200/16⌉ = 13 → 15.38×.
        let s = max_speedup(200, 16);
        assert!((s - 200.0 / 13.0).abs() < 1e-9);
        assert!((s - 15.3846).abs() < 1e-3);
    }

    #[test]
    fn figure10_rte_bound() {
        // 6 epoch-partitions on 4 GPUs → best replay time 2/6 = 33%.
        let s = max_speedup(6, 4);
        assert!((s - 3.0).abs() < 1e-9, "6/⌈6/4⌉ = 3 → 33% of vanilla");
    }

    #[test]
    fn single_worker_is_identity() {
        let plans = plan(5, 1, InitMode::Strong);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].work_iters(), 0..5);
        assert_eq!(plans[0].init_len(), 0);
        assert_eq!(max_speedup(5, 1), 1.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(plan(0, 4, InitMode::Strong).is_empty());
        assert!(plan(4, 0, InitMode::Strong).is_empty());
        assert_eq!(max_speedup(0, 4), 1.0);
    }

    #[test]
    fn workers_exceed_iterations_in_both_modes() {
        // G > n: exactly n single-iteration plans, ids 0..n, regardless of
        // how extreme the ratio is.
        for (n, g) in [(1u64, 2usize), (1, 64), (3, 8), (5, 1000)] {
            for mode in [InitMode::Strong, InitMode::Weak] {
                let plans = plan(n, g, mode);
                assert_eq!(plans.len(), n as usize, "n={n} g={g} {mode:?}");
                assert_covering(n, &plans);
                for (i, p) in plans.iter().enumerate() {
                    assert_eq!(p.pid, i);
                    assert_eq!(p.work_len(), 1, "n={n} g={g}: every share is one iter");
                }
                // Speedup saturates at n when workers outnumber iterations.
                assert!((max_speedup(n, g) - n as f64).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn zero_iterations_yield_no_plans_in_both_modes() {
        for g in [0usize, 1, 4, 64] {
            assert!(plan(0, g, InitMode::Strong).is_empty());
            assert!(plan(0, g, InitMode::Weak).is_empty());
        }
        assert!(plan_anchored(0, &std::collections::BTreeSet::from([0]), 4).is_empty());
        assert_eq!(max_speedup(0, 0), 1.0);
    }

    #[test]
    fn single_worker_degenerate_plan_has_no_init_segment() {
        for n in [1u64, 2, 7, 100] {
            for mode in [InitMode::Strong, InitMode::Weak] {
                let plans = plan(n, 1, mode);
                assert_eq!(plans.len(), 1, "n={n} {mode:?}");
                let p = &plans[0];
                assert_eq!(p.pid, 0);
                assert_eq!(p.work_iters(), 0..n);
                assert_eq!(p.init_len(), 0, "worker 0 never initializes");
                assert_eq!(p.init_iters(), 0..0);
            }
        }
    }

    #[test]
    fn one_iteration_many_workers_single_plan() {
        let plans = plan(1, 16, InitMode::Weak);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].work_iters(), 0..1);
        assert_eq!(plans[0].init_len(), 0);
    }

    #[test]
    fn anchored_plan_respects_boundaries() {
        use std::collections::BTreeSet;
        // Checkpoints every 15 iterations of 90 → anchors 0,15,30,…,75.
        let anchors: BTreeSet<u64> = (0..6).map(|i| i * 15).collect();
        let plans = plan_anchored(90, &anchors, 4);
        assert!(!plans.is_empty());
        assert_covering(90, &plans);
        for p in &plans {
            assert!(
                anchors.contains(&p.work_start),
                "work_start {} must be an anchor",
                p.work_start
            );
            if p.work_start > 0 {
                assert_eq!(p.init_start, p.work_start - 1);
            }
        }
    }

    #[test]
    fn anchored_plan_limits_parallelism_to_segments() {
        use std::collections::BTreeSet;
        // 6 checkpoint intervals (RTE-style) over 4 workers → ≤ 4 plans,
        // the largest covering at least 2 intervals.
        let anchors: BTreeSet<u64> = (0..6).map(|i| i * 33).collect();
        let plans = plan_anchored(198, &anchors, 4);
        assert!(plans.len() <= 4);
        assert_covering(198, &plans);
        let largest = plans.iter().map(WorkerPlan::work_len).max().unwrap();
        assert!(largest >= 66, "largest share {largest} covers ≥ 2 intervals");
    }

    #[test]
    fn anchored_plan_with_dense_anchors_matches_plain() {
        use std::collections::BTreeSet;
        let anchors: BTreeSet<u64> = (0..20).collect();
        let plans = plan_anchored(20, &anchors, 4);
        assert_covering(20, &plans);
        assert_eq!(plans.len(), 4);
    }

    #[test]
    fn anchored_plan_single_anchor_is_sequential() {
        use std::collections::BTreeSet;
        let anchors: BTreeSet<u64> = [0].into_iter().collect();
        let plans = plan_anchored(10, &anchors, 4);
        assert_eq!(plans.len(), 1, "no checkpoints → no parallelism");
        assert_covering(10, &plans);
    }

    #[test]
    fn property_partitions_cover_for_many_shapes() {
        for n in [1u64, 2, 3, 7, 16, 100, 200] {
            for g in [1usize, 2, 3, 4, 5, 16, 64] {
                let plans = plan(n, g, InitMode::Strong);
                assert_covering(n, &plans);
                let plans = plan(n, g, InitMode::Weak);
                assert_covering(n, &plans);
            }
        }
    }
}
