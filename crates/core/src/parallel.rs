//! Hindsight parallelism planning (paper §5.4, Figures 8–10, 13).
//!
//! "Even sequential code can be re-executed in parallel if the right
//! checkpoints are materialized on the first pass." The planner is pure
//! arithmetic shared by the live replay engine and the `flor-sim`
//! discrete-event simulator: contiguous partitioning of the main loop's
//! iterations over `G` workers, strong/weak initialization segments, and
//! the load-balance speedup bound (e.g. the paper's 200 epochs over 16 GPUs
//! → ⌈200/16⌉ = 13 epochs per worker → max speedup 200/13 = 15.38×).

/// Worker initialization mode (paper §5.4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitMode {
    /// Initialize every iteration preceding the work segment by restoring
    /// each one's checkpoints in turn. Correct whenever record checkpointed
    /// (the default, per the paper).
    Strong,
    /// Jump directly to the last preceding iteration's checkpoint. Needed
    /// when checkpoints are sparse/periodic (RTE & CoLA under adaptive
    /// checkpointing), risky if checkpoints miss side-effects.
    Weak,
}

/// One worker's share of the main loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPlan {
    /// Worker id (the paper's PID).
    pub pid: usize,
    /// First global iteration of the work segment (inclusive).
    pub work_start: u64,
    /// One past the last global iteration of the work segment.
    pub work_end: u64,
    /// Initialization segment `[init_start, work_start)`; empty when the
    /// worker starts at iteration 0.
    pub init_start: u64,
}

impl WorkerPlan {
    /// Number of work iterations.
    pub fn work_len(&self) -> u64 {
        self.work_end - self.work_start
    }

    /// Number of initialization iterations.
    pub fn init_len(&self) -> u64 {
        self.work_start - self.init_start
    }

    /// Global iterations of the init segment.
    pub fn init_iters(&self) -> std::ops::Range<u64> {
        self.init_start..self.work_start
    }

    /// Global iterations of the work segment.
    pub fn work_iters(&self) -> std::ops::Range<u64> {
        self.work_start..self.work_end
    }
}

/// Partitions `n_iters` main-loop iterations over `workers` workers into
/// contiguous, disjoint, covering segments (the first `n_iters % workers`
/// workers take one extra iteration), and attaches each worker's
/// initialization segment per `mode`.
///
/// Workers whose segment would be empty are omitted — "RTE & CoLA only have
/// 6 epoch-partitions each, so parallelism on 4 GPUs leads to at best
/// 2/6 = 33% replay time" (Figure 10): you cannot use more workers than
/// iterations.
pub fn plan(n_iters: u64, workers: usize, mode: InitMode) -> Vec<WorkerPlan> {
    if n_iters == 0 || workers == 0 {
        return Vec::new();
    }
    let g = (workers as u64).min(n_iters);
    let base = n_iters / g;
    let extra = n_iters % g;
    let mut plans = Vec::with_capacity(g as usize);
    let mut start = 0u64;
    for pid in 0..g {
        let len = base + if pid < extra { 1 } else { 0 };
        let work_start = start;
        let work_end = start + len;
        let init_start = match mode {
            _ if work_start == 0 => 0,
            InitMode::Strong => 0,
            InitMode::Weak => work_start - 1,
        };
        plans.push(WorkerPlan {
            pid: pid as usize,
            work_start,
            work_end,
            init_start,
        });
        start = work_end;
    }
    plans
}

/// Partitions `n_iters` iterations over `workers` workers when segment
/// boundaries are restricted to `anchors` — iterations where every
/// main-loop block has a checkpoint. This is how weak initialization copes
/// with *periodic* checkpointing (paper §5.4.2): "RTE & CoLA only have 6
/// epoch-partitions each, so parallelism on 4 GPUs leads to at best
/// 2/6 = 33% replay time" (Figure 10).
///
/// Anchors must include 0. Each worker receives a contiguous run of
/// checkpoint intervals, greedily balanced by iteration count; weak
/// initialization for a worker starting at anchor `a > 0` is the single
/// iteration `a - 1` (whose Loop End Checkpoint exists by construction).
pub fn plan_anchored(
    n_iters: u64,
    anchors: &std::collections::BTreeSet<u64>,
    workers: usize,
) -> Vec<WorkerPlan> {
    if n_iters == 0 || workers == 0 {
        return Vec::new();
    }
    // Segment boundaries: the anchors below n_iters, plus the end.
    let mut bounds: Vec<u64> = anchors.iter().copied().filter(|&a| a < n_iters).collect();
    if bounds.first() != Some(&0) {
        bounds.insert(0, 0);
    }
    bounds.push(n_iters);
    let n_segments = bounds.len() - 1;
    let g = workers.min(n_segments);
    let target = (n_iters as f64 / g as f64).ceil() as u64;

    let mut plans: Vec<WorkerPlan> = Vec::with_capacity(g);
    let mut seg = 0usize;
    for pid in 0..g {
        if seg >= n_segments {
            break;
        }
        let work_start = bounds[seg];
        let mut end_seg = seg;
        let remaining_workers = g - pid - 1;
        // Take segments until reaching the target, but leave at least one
        // segment for each remaining worker.
        while end_seg + 1 < n_segments
            && (n_segments - (end_seg + 1)) > remaining_workers
            && bounds[end_seg + 1] - work_start < target
        {
            end_seg += 1;
        }
        let work_end = bounds[end_seg + 1];
        let init_start = if work_start == 0 { 0 } else { work_start - 1 };
        plans.push(WorkerPlan {
            pid,
            work_start,
            work_end,
            init_start,
        });
        seg = end_seg + 1;
    }
    // Any leftover segments go to the last worker.
    if seg < n_segments {
        if let Some(last) = plans.last_mut() {
            last.work_end = n_iters;
        }
    }
    plans
}

/// Maximum achievable parallel speedup for `n_iters` over `workers`
/// workers, limited by the largest share: `n / ⌈n/G⌉`.
pub fn max_speedup(n_iters: u64, workers: usize) -> f64 {
    if n_iters == 0 || workers == 0 {
        return 1.0;
    }
    let g = (workers as u64).min(n_iters);
    let largest = n_iters.div_ceil(g);
    n_iters as f64 / largest as f64
}

/// Profile-aware speedup bound: with per-iteration replay costs known, the
/// makespan of *any* schedule is at least `max(total/G, max single
/// iteration)`, so the speedup is at most `total / max(total/G, max_iter)`.
///
/// This is far tighter than [`max_speedup`] under skew — one iteration
/// 1000× the rest caps the speedup near `total/max_iter` regardless of
/// worker count — and reduces to the continuous relaxation `G` (which
/// upper-bounds `n/⌈n/G⌉`) on uniform costs. Work-stealing over
/// cost-sized micro-ranges approaches this bound; static contiguous
/// partitioning generally cannot (the slowest contiguous share exceeds the
/// greedy makespan whenever costs are skewed).
pub fn max_speedup_profiled(iter_costs: &[u64], workers: usize) -> f64 {
    if iter_costs.is_empty() || workers == 0 {
        return 1.0;
    }
    let total: u64 = iter_costs.iter().map(|&c| c.max(1)).sum();
    let largest: u64 = iter_costs.iter().map(|&c| c.max(1)).max().unwrap_or(1);
    let lower_bound = (total as f64 / workers as f64).max(largest as f64);
    total as f64 / lower_bound
}

// ---- cost-aware micro-range scheduling -------------------------------------

/// A contiguous span of main-loop iterations — the unit of work-stealing.
/// Smaller than a [`WorkerPlan`] work segment: a worker's seed partition is
/// split into several micro-ranges so a drained worker can steal load off a
/// straggler without breaking checkpoint-restore locality for the victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroRange {
    /// First global iteration (inclusive).
    pub start: u64,
    /// One past the last global iteration.
    pub end: u64,
}

impl MicroRange {
    /// Iterations covered.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True for a degenerate empty range.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Global iterations of the range.
    pub fn iters(&self) -> std::ops::Range<u64> {
        self.start..self.end
    }
}

/// Micro-ranges a worker's seed deque should hold, as a multiple of the
/// worker count: enough granularity that stealing can rebalance, few enough
/// that per-range re-initialization stays negligible.
pub const RANGES_PER_WORKER: u64 = 4;

/// Candidate boundaries for range splitting: the anchors below `n_iters`
/// plus both ends, or every iteration when unconstrained.
fn split_bounds(n_iters: u64, anchors: Option<&std::collections::BTreeSet<u64>>) -> Vec<u64> {
    match anchors {
        Some(a) => {
            let mut b: Vec<u64> = a.iter().copied().filter(|&x| x < n_iters).collect();
            if b.first() != Some(&0) {
                b.insert(0, 0);
            }
            b.push(n_iters);
            b
        }
        None => (0..=n_iters).collect(),
    }
}

/// Greedily packs the segments `bounds[lo..hi]` into at most `parts`
/// contiguous spans of roughly equal cost. "Take-if-closer": a span keeps
/// absorbing the next segment while doing so lands it nearer its cost
/// target than stopping would — the rounding rule that reproduces the
/// static planner's exact shares on uniform costs (stealing must tie
/// there, not lose to seeding noise). The target is re-derived from the
/// remaining cost before each span, so early rounding never dumps a
/// remainder on the last span.
fn pack_spans(bounds: &[u64], parts: usize, seg_cost: &[u64]) -> Vec<MicroRange> {
    let n_segments = bounds.len() - 1;
    let parts = parts.min(n_segments);
    let mut spans = Vec::with_capacity(parts);
    let mut remaining: u64 = seg_cost.iter().sum();
    let mut seg = 0usize;
    for part in 0..parts {
        if seg >= n_segments {
            break;
        }
        let spans_left = (parts - part) as u64;
        let target = remaining.div_ceil(spans_left).max(1);
        let start = bounds[seg];
        let mut acc = seg_cost[seg];
        seg += 1;
        while seg < n_segments && (n_segments - seg) as u64 >= spans_left {
            let c = seg_cost[seg];
            let take = (acc + c).abs_diff(target) <= target.abs_diff(acc);
            if !take {
                break;
            }
            acc += c;
            seg += 1;
        }
        remaining -= acc;
        spans.push(MicroRange {
            start,
            end: bounds[seg],
        });
    }
    // The rounding rule leaves ≥1 segment per remaining span, so by the
    // last span everything is consumed.
    if let (Some(last), true) = (spans.last_mut(), seg < n_segments) {
        last.end = bounds[n_segments];
    }
    spans
}

/// Seeds `workers` deques with cost-balanced contiguous micro-ranges for
/// an `n_iters`-iteration main loop: first `0..n_iters` is partitioned
/// into one contiguous *share* per worker, balanced by per-iteration
/// `costs` (ns; uniform when empty — missing profile entries cost the
/// mean), then each share is split into up to [`RANGES_PER_WORKER`]
/// micro-ranges so a drained worker can steal off a straggler without
/// taking its whole share.
///
/// A single expensive iteration is never split (one iteration is the
/// atomic unit of replay), and when `anchors` is non-empty every boundary
/// is clamped to an anchor (weak initialization may only start a segment
/// at a full-checkpoint boundary — paper §5.4.2). Workers may receive
/// empty deques when there are fewer splittable segments than workers.
pub fn seed_cost_ranges(
    n_iters: u64,
    workers: usize,
    costs: &[u64],
    anchors: Option<&std::collections::BTreeSet<u64>>,
) -> Vec<Vec<MicroRange>> {
    let mut deques: Vec<Vec<MicroRange>> = vec![Vec::new(); workers];
    if n_iters == 0 || workers == 0 {
        return deques;
    }
    let mean = if costs.is_empty() {
        1
    } else {
        (costs.iter().sum::<u64>() / costs.len() as u64).max(1)
    };
    let cost_of = |g: u64| -> u64 { costs.get(g as usize).copied().unwrap_or(mean).max(1) };
    let bounds = split_bounds(n_iters, anchors);
    let seg_cost: Vec<u64> = bounds
        .windows(2)
        .map(|w| (w[0]..w[1]).map(cost_of).sum())
        .collect();
    let shares = pack_spans(&bounds, workers, &seg_cost);
    for (pid, share) in shares.iter().enumerate() {
        // Split the share along its own boundary subset.
        let lo = bounds.partition_point(|&b| b < share.start);
        let hi = bounds.partition_point(|&b| b < share.end);
        let share_bounds = &bounds[lo..=hi];
        let share_costs = &seg_cost[lo..hi];
        deques[pid] = pack_spans(share_bounds, RANGES_PER_WORKER as usize, share_costs);
    }
    deques
}

/// [`seed_cost_ranges`] flattened: the contiguous micro-range cover of
/// `0..n_iters` in ascending order (the seeding's range inventory).
pub fn split_micro_ranges(
    n_iters: u64,
    workers: usize,
    costs: &[u64],
    anchors: Option<&std::collections::BTreeSet<u64>>,
) -> Vec<MicroRange> {
    seed_cost_ranges(n_iters, workers, costs, anchors)
        .into_iter()
        .flatten()
        .collect()
}

/// What [`RangeQueue::next`] hands a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NextRange {
    /// The range to execute.
    pub range: MicroRange,
    /// True when the range came off another worker's deque.
    pub stolen: bool,
}

struct QueueState {
    seeded: bool,
    deques: Vec<std::collections::VecDeque<MicroRange>>,
    /// Snapshot of each worker's seeded span (taken at seed time — the
    /// live deques drain as workers pull).
    spans: Vec<Option<MicroRange>>,
    /// Per-iteration cost estimates used at seed time (empty = uniform);
    /// victim selection weighs remaining ranges by it.
    iter_cost: Vec<u64>,
    /// One past the last global iteration. The final range (`end ==
    /// n_iters`) is stolen only as a last resort: its executor retires
    /// holding the true final program state (and owns the postamble).
    n_iters: u64,
}

impl QueueState {
    fn range_cost(&self, r: &MicroRange) -> u64 {
        r.iters()
            .map(|g| self.iter_cost.get(g as usize).copied().unwrap_or(1).max(1))
            .sum()
    }
}

/// The shared work-stealing range queue (the tentpole's scheduling core).
///
/// Each worker owns a deque seeded with a contiguous run of micro-ranges
/// and pops from its *front* (ascending iteration order — every pop
/// continues exactly where the previous range ended, so no
/// re-initialization). A drained worker steals from the *back* of the
/// most-loaded victim: the work farthest from the victim's current
/// position, which the victim would have reached last anyway. Two
/// preferences keep the paper's replay semantics cheap:
///
/// - thieves prefer ranges **ahead of their own position** (`start ≥`
///   their current state), because a forward steal re-initializes by
///   rolling checkpoints forward while a backward steal must rewind;
/// - the **final range** (ending at `n_iters`) is taken only as a last
///   resort: whoever executes it exits the pull loop holding the true
///   final program state (and owns the postamble), so handing it out
///   early would retire a worker while other ranges still wait.
pub struct RangeQueue {
    state: parking_lot::Mutex<QueueState>,
    steal_enabled: bool,
    steals: std::sync::atomic::AtomicU64,
}

impl RangeQueue {
    /// Unseeded queue for `workers` deques. `steal_enabled = false` reduces
    /// the executor to static partitioning (each worker drains only its own
    /// seed — bitwise the pre-refactor behavior).
    pub fn new(workers: usize, steal_enabled: bool) -> Self {
        RangeQueue {
            state: parking_lot::Mutex::new(QueueState {
                seeded: false,
                deques: vec![std::collections::VecDeque::new(); workers],
                spans: vec![None; workers],
                iter_cost: Vec::new(),
                n_iters: 0,
            }),
            steal_enabled,
            steals: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Seeds the queue exactly once (workers race to seed; all compute the
    /// same deterministic seeding, the first wins). `seed` returns the
    /// per-worker deques plus the per-iteration cost vector they were
    /// balanced by (empty = uniform), which steers victim selection.
    /// Returns true for the seeding caller.
    pub fn seed_once(
        &self,
        n_iters: u64,
        seed: impl FnOnce() -> (Vec<Vec<MicroRange>>, Vec<u64>),
    ) -> bool {
        let mut state = self.state.lock();
        if state.seeded {
            return false;
        }
        let (deques, iter_cost) = seed();
        state.iter_cost = iter_cost;
        state.spans = deques
            .iter()
            .map(|d| {
                let (first, last) = (d.first()?, d.last()?);
                Some(MicroRange {
                    start: first.start,
                    end: last.end,
                })
            })
            .collect();
        state.deques = deques
            .into_iter()
            .map(std::collections::VecDeque::from)
            .collect();
        state.n_iters = n_iters;
        state.seeded = true;
        true
    }

    /// The contiguous span seeded for `pid` (for reporting; a snapshot
    /// taken at seed time, stable as the live deques drain).
    pub fn seeded_span(&self, pid: usize) -> Option<MicroRange> {
        self.state.lock().spans.get(pid).copied().flatten()
    }

    /// Pops the next range for worker `pid`, whose program state currently
    /// sits at iteration `state_at`. Own deque first (front); then, with
    /// stealing enabled, the back of the most-loaded victim — preferring
    /// forward ranges and never the final range. `None` means the replay's
    /// range pool is exhausted for this worker.
    ///
    /// `rewind_ok` says whether this worker can take a range *behind* its
    /// current state: rewinding means re-initializing from iteration 0 on
    /// the strength of checkpoint restores, so it is only sound while
    /// checkpoints are reusable. Poisoned reuse (`force_execute_all`) must
    /// pass `false` — the init phase then re-executes for real, and
    /// re-executing a prefix from an already-advanced program state
    /// corrupts it. Forward-only workers may retire while victims still
    /// hold backward work; owners always drain their own deques in order,
    /// so no range is orphaned.
    pub fn next(&self, pid: usize, state_at: u64, rewind_ok: bool) -> Option<NextRange> {
        let mut state = self.state.lock();
        if let Some(r) = state.deques.get_mut(pid).and_then(|d| d.pop_front()) {
            return Some(NextRange {
                range: r,
                stolen: false,
            });
        }
        if !self.steal_enabled {
            return None;
        }
        let n = state.n_iters;
        // Candidate victims by remaining load (seed-cost weighted — under
        // skew the straggler is whoever holds the expensive ranges, not
        // the most iterations), descending.
        let mut victims: Vec<usize> = (0..state.deques.len())
            .filter(|&v| v != pid && !state.deques[v].is_empty())
            .collect();
        victims.sort_by_key(|&v| {
            std::cmp::Reverse(
                state.deques[v]
                    .iter()
                    .map(|r| state.range_cost(r))
                    .sum::<u64>(),
            )
        });
        // Three passes: forward steals of non-final ranges, then backward
        // ones, then — nothing else left anywhere — the final range, whose
        // thief will retire holding the final program state. A backward
        // steal of a range starting at 0 is never allowed for a worker
        // already past it: there is no checkpoint before iteration 0 to
        // rewind to. With `rewind_ok` false, *no* backward steal is — the
        // worker cannot rebuild earlier state at all.
        for (forward_only, allow_final) in [(true, false), (false, false), (false, true)] {
            for &vid in &victims {
                let deque = &mut state.deques[vid];
                // From the back: the work farthest from the victim's own
                // position, which it would have reached last anyway.
                let idx = deque
                    .iter()
                    .enumerate()
                    .rev()
                    .find(|(_, r)| {
                        (allow_final || r.end != n)
                            && (!forward_only || r.start >= state_at)
                            && ((rewind_ok && r.start > 0) || r.start >= state_at)
                    })
                    .map(|(i, _)| i);
                if let Some(i) = idx {
                    let r = deque.remove(i).expect("index in bounds");
                    self.steals
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    flor_obs::instant(flor_obs::Category::Steal, "steal", r.start, r.end);
                    return Some(NextRange {
                        range: r,
                        stolen: true,
                    });
                }
            }
        }
        None
    }

    /// Ranges stolen so far.
    pub fn steals(&self) -> u64 {
        self.steals.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// One past the last global iteration (0 before seeding).
    pub fn n_iters(&self) -> u64 {
        self.state.lock().n_iters
    }
}

/// Cooperative cancellation flag shared between a replay's driver and its
/// workers. Workers poll it at range-pull and per-iteration boundaries and
/// bail out with [`crate::FlorError::Cancelled`]; setting it never blocks,
/// so it is safe to fire from an event loop or signal-adjacent context.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: std::sync::Arc<std::sync::atomic::AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-fired token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; wakes nothing by itself —
    /// workers notice at their next poll point.
    pub fn cancel(&self) {
        self.flag.store(true, std::sync::atomic::Ordering::Release);
    }

    /// True once [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(std::sync::atomic::Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_covering(n: u64, plans: &[WorkerPlan]) {
        let mut covered = Vec::new();
        for p in plans {
            assert!(p.work_start <= p.work_end);
            covered.extend(p.work_iters());
        }
        covered.sort_unstable();
        assert_eq!(
            covered,
            (0..n).collect::<Vec<_>>(),
            "plans must cover 0..{n} disjointly"
        );
    }

    #[test]
    fn even_partition() {
        let plans = plan(8, 4, InitMode::Strong);
        assert_eq!(plans.len(), 4);
        for p in &plans {
            assert_eq!(p.work_len(), 2);
        }
        assert_covering(8, &plans);
    }

    #[test]
    fn uneven_partition_front_loads_extras() {
        let plans = plan(10, 4, InitMode::Strong);
        let lens: Vec<u64> = plans.iter().map(WorkerPlan::work_len).collect();
        assert_eq!(lens, vec![3, 3, 2, 2]);
        assert_covering(10, &plans);
    }

    #[test]
    fn more_workers_than_iterations() {
        let plans = plan(3, 8, InitMode::Strong);
        assert_eq!(
            plans.len(),
            3,
            "workers beyond the iteration count are dropped"
        );
        assert_covering(3, &plans);
    }

    #[test]
    fn strong_init_reaches_back_to_zero() {
        let plans = plan(8, 4, InitMode::Strong);
        assert_eq!(plans[0].init_len(), 0);
        assert_eq!(plans[1].init_iters(), 0..2);
        assert_eq!(plans[3].init_iters(), 0..6);
    }

    #[test]
    fn weak_init_is_single_iteration() {
        let plans = plan(8, 4, InitMode::Weak);
        assert_eq!(plans[0].init_len(), 0);
        for p in &plans[1..] {
            assert_eq!(p.init_len(), 1);
            assert_eq!(p.init_start, p.work_start - 1);
        }
    }

    #[test]
    fn figure13_rsnt_bound() {
        // 200 epochs on 16 GPUs → max share ⌈200/16⌉ = 13 → 15.38×.
        let s = max_speedup(200, 16);
        assert!((s - 200.0 / 13.0).abs() < 1e-9);
        assert!((s - 15.3846).abs() < 1e-3);
    }

    #[test]
    fn figure10_rte_bound() {
        // 6 epoch-partitions on 4 GPUs → best replay time 2/6 = 33%.
        let s = max_speedup(6, 4);
        assert!((s - 3.0).abs() < 1e-9, "6/⌈6/4⌉ = 3 → 33% of vanilla");
    }

    #[test]
    fn single_worker_is_identity() {
        let plans = plan(5, 1, InitMode::Strong);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].work_iters(), 0..5);
        assert_eq!(plans[0].init_len(), 0);
        assert_eq!(max_speedup(5, 1), 1.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(plan(0, 4, InitMode::Strong).is_empty());
        assert!(plan(4, 0, InitMode::Strong).is_empty());
        assert_eq!(max_speedup(0, 4), 1.0);
    }

    #[test]
    fn workers_exceed_iterations_in_both_modes() {
        // G > n: exactly n single-iteration plans, ids 0..n, regardless of
        // how extreme the ratio is.
        for (n, g) in [(1u64, 2usize), (1, 64), (3, 8), (5, 1000)] {
            for mode in [InitMode::Strong, InitMode::Weak] {
                let plans = plan(n, g, mode);
                assert_eq!(plans.len(), n as usize, "n={n} g={g} {mode:?}");
                assert_covering(n, &plans);
                for (i, p) in plans.iter().enumerate() {
                    assert_eq!(p.pid, i);
                    assert_eq!(p.work_len(), 1, "n={n} g={g}: every share is one iter");
                }
                // Speedup saturates at n when workers outnumber iterations.
                assert!((max_speedup(n, g) - n as f64).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn zero_iterations_yield_no_plans_in_both_modes() {
        for g in [0usize, 1, 4, 64] {
            assert!(plan(0, g, InitMode::Strong).is_empty());
            assert!(plan(0, g, InitMode::Weak).is_empty());
        }
        assert!(plan_anchored(0, &std::collections::BTreeSet::from([0]), 4).is_empty());
        assert_eq!(max_speedup(0, 0), 1.0);
    }

    #[test]
    fn single_worker_degenerate_plan_has_no_init_segment() {
        for n in [1u64, 2, 7, 100] {
            for mode in [InitMode::Strong, InitMode::Weak] {
                let plans = plan(n, 1, mode);
                assert_eq!(plans.len(), 1, "n={n} {mode:?}");
                let p = &plans[0];
                assert_eq!(p.pid, 0);
                assert_eq!(p.work_iters(), 0..n);
                assert_eq!(p.init_len(), 0, "worker 0 never initializes");
                assert_eq!(p.init_iters(), 0..0);
            }
        }
    }

    #[test]
    fn one_iteration_many_workers_single_plan() {
        let plans = plan(1, 16, InitMode::Weak);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].work_iters(), 0..1);
        assert_eq!(plans[0].init_len(), 0);
    }

    #[test]
    fn anchored_plan_respects_boundaries() {
        use std::collections::BTreeSet;
        // Checkpoints every 15 iterations of 90 → anchors 0,15,30,…,75.
        let anchors: BTreeSet<u64> = (0..6).map(|i| i * 15).collect();
        let plans = plan_anchored(90, &anchors, 4);
        assert!(!plans.is_empty());
        assert_covering(90, &plans);
        for p in &plans {
            assert!(
                anchors.contains(&p.work_start),
                "work_start {} must be an anchor",
                p.work_start
            );
            if p.work_start > 0 {
                assert_eq!(p.init_start, p.work_start - 1);
            }
        }
    }

    #[test]
    fn anchored_plan_limits_parallelism_to_segments() {
        use std::collections::BTreeSet;
        // 6 checkpoint intervals (RTE-style) over 4 workers → ≤ 4 plans,
        // the largest covering at least 2 intervals.
        let anchors: BTreeSet<u64> = (0..6).map(|i| i * 33).collect();
        let plans = plan_anchored(198, &anchors, 4);
        assert!(plans.len() <= 4);
        assert_covering(198, &plans);
        let largest = plans.iter().map(WorkerPlan::work_len).max().unwrap();
        assert!(
            largest >= 66,
            "largest share {largest} covers ≥ 2 intervals"
        );
    }

    #[test]
    fn anchored_plan_under_extreme_interval_skew() {
        use std::collections::BTreeSet;
        // One checkpoint interval spans 1000 iterations, the rest are
        // single-iteration: plans must still cover disjointly, start on
        // anchors, and give the giant interval to exactly one worker.
        let mut anchors: BTreeSet<u64> = (0..5).collect(); // 0..4 singles
        anchors.insert(1004); // then [4, 1004) is one giant interval
        let n = 1008;
        for workers in [2usize, 4, 16] {
            let plans = plan_anchored(n, &anchors, workers);
            assert_covering(n, &plans);
            for p in &plans {
                assert!(anchors.contains(&p.work_start) || p.work_start == 0);
                assert!(p.work_len() > 0, "no empty plans under skew");
            }
            let giant = plans
                .iter()
                .filter(|p| p.work_iters().contains(&500))
                .count();
            assert_eq!(giant, 1, "the giant interval is atomic");
        }
        // More workers than segments: capped at the segment count.
        let plans = plan_anchored(n, &anchors, 64);
        assert!(plans.len() <= 6);
        assert_covering(n, &plans);
    }

    #[test]
    fn anchored_plan_with_dense_anchors_matches_plain() {
        use std::collections::BTreeSet;
        let anchors: BTreeSet<u64> = (0..20).collect();
        let plans = plan_anchored(20, &anchors, 4);
        assert_covering(20, &plans);
        assert_eq!(plans.len(), 4);
    }

    #[test]
    fn anchored_plan_single_anchor_is_sequential() {
        use std::collections::BTreeSet;
        let anchors: BTreeSet<u64> = [0].into_iter().collect();
        let plans = plan_anchored(10, &anchors, 4);
        assert_eq!(plans.len(), 1, "no checkpoints → no parallelism");
        assert_covering(10, &plans);
    }

    // ---- micro-range splitter & work-stealing queue ------------------------

    fn assert_ranges_cover(n: u64, ranges: &[MicroRange]) {
        let mut covered = Vec::new();
        for r in ranges {
            assert!(r.start < r.end, "no empty ranges: {r:?}");
            covered.extend(r.iters());
        }
        covered.sort_unstable();
        assert_eq!(
            covered,
            (0..n).collect::<Vec<_>>(),
            "ranges must cover 0..{n}"
        );
    }

    #[test]
    fn uniform_split_covers_and_balances() {
        let costs = vec![10u64; 64];
        let ranges = split_micro_ranges(64, 4, &costs, None);
        assert_ranges_cover(64, &ranges);
        assert!(
            ranges.len() >= 8 && ranges.len() <= 64,
            "uniform costs → several ranges per worker, got {}",
            ranges.len()
        );
    }

    #[test]
    fn skewed_split_isolates_expensive_iterations() {
        // One iteration 1000× the rest: it must land in a range of its own,
        // so a steal can move everything around it.
        let mut costs = vec![1u64; 32];
        costs[17] = 1000;
        let ranges = split_micro_ranges(32, 4, &costs, None);
        assert_ranges_cover(32, &ranges);
        let heavy = ranges
            .iter()
            .find(|r| r.iters().contains(&17))
            .expect("iteration 17 covered");
        assert_eq!(
            (heavy.start, heavy.end),
            (17, 18),
            "the 1000× iteration stands alone: {heavy:?}"
        );
    }

    #[test]
    fn zero_cost_iterations_do_not_degenerate_the_split() {
        let costs = vec![0u64; 20];
        let ranges = split_micro_ranges(20, 4, &costs, None);
        assert_ranges_cover(20, &ranges);
        // Zero costs are floored to 1, so the split is the uniform one, not
        // a single all-covering range and not 20 singletons per worker.
        assert!(ranges.len() > 1, "zero costs must not collapse the split");
    }

    #[test]
    fn split_with_more_workers_than_iterations() {
        let ranges = split_micro_ranges(3, 16, &[5, 5, 5], None);
        assert_ranges_cover(3, &ranges);
        assert_eq!(ranges.len(), 3, "one singleton range per iteration");
    }

    #[test]
    fn split_without_profile_falls_back_to_uniform() {
        // Empty cost slice = profile missing: every iteration costs 1.
        let ranges = split_micro_ranges(40, 4, &[], None);
        assert_ranges_cover(40, &ranges);
        let lens: Vec<u64> = ranges.iter().map(MicroRange::len).collect();
        let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
        assert!(max - min <= 2, "uniform fallback stays balanced: {lens:?}");
    }

    #[test]
    fn split_with_partial_profile_costs_missing_iterations_at_mean() {
        // Profile covers only the first 4 of 16 iterations (e.g. a block
        // whose loop ran longer at replay than at record).
        let costs = vec![100u64, 100, 100, 100];
        let ranges = split_micro_ranges(16, 2, &costs, None);
        assert_ranges_cover(16, &ranges);
        assert!(ranges.len() >= 4);
    }

    #[test]
    fn anchored_split_respects_boundaries_under_skew() {
        use std::collections::BTreeSet;
        let anchors: BTreeSet<u64> = [0u64, 10, 20, 30].into_iter().collect();
        let mut costs = vec![1u64; 40];
        costs[5] = 1000; // heavy iteration inside the first interval
        let ranges = split_micro_ranges(40, 4, &costs, Some(&anchors));
        assert_ranges_cover(40, &ranges);
        for r in &ranges {
            assert!(
                anchors.contains(&r.start),
                "range start {} must be an anchor",
                r.start
            );
        }
        // The heavy interval [0,10) cannot be split below the anchor
        // granularity — it stands alone instead.
        let heavy = ranges.iter().find(|r| r.iters().contains(&5)).unwrap();
        assert_eq!((heavy.start, heavy.end), (0, 10));
    }

    #[test]
    fn degenerate_split_inputs() {
        assert!(split_micro_ranges(0, 4, &[], None).is_empty());
        assert!(split_micro_ranges(4, 0, &[], None).is_empty());
    }

    #[test]
    fn seeding_is_contiguous_and_cost_balanced() {
        let mut costs = vec![1u64; 24];
        for c in costs.iter_mut().take(24).skip(20) {
            *c = 50; // tail-heavy skew
        }
        let deques = seed_cost_ranges(24, 4, &costs, None);
        assert_eq!(deques.len(), 4);
        // Contiguity: each deque's ranges chain, and deques chain globally.
        let mut pos = 0u64;
        for d in &deques {
            for r in d {
                assert_eq!(r.start, pos, "seeded ranges must chain contiguously");
                pos = r.end;
            }
        }
        assert_eq!(pos, 24);
        // Cost balance: the heavy tail is not all on one worker.
        let worker_cost = |d: &Vec<MicroRange>| -> u64 {
            d.iter()
                .flat_map(MicroRange::iters)
                .map(|g| costs[g as usize])
                .sum()
        };
        let max = deques.iter().map(worker_cost).max().unwrap();
        let total: u64 = costs.iter().sum();
        assert!(
            max <= total / 2,
            "seeding must spread cost: max {max} of total {total}"
        );
    }

    #[test]
    fn seeding_uniform_costs_reproduces_static_shares() {
        // On uniform costs the cost-balanced seeding must hand each worker
        // exactly the share the static planner would — stealing ties, it
        // never loses ground to seeding noise.
        let deques = seed_cost_ranges(200, 16, &[], None);
        let plans = plan(200, 16, InitMode::Strong);
        for (pid, plan) in plans.iter().enumerate() {
            let first = deques[pid].first().unwrap();
            let last = deques[pid].last().unwrap();
            assert_eq!(
                (first.start, last.end),
                (plan.work_start, plan.work_end),
                "worker {pid} share"
            );
        }
    }

    #[test]
    fn seed_with_more_workers_than_ranges_leaves_empty_deques() {
        let deques = seed_cost_ranges(3, 8, &[], None);
        assert_eq!(deques.len(), 8);
        let non_empty = deques.iter().filter(|d| !d.is_empty()).count();
        assert_eq!(non_empty, 3);
    }

    #[test]
    fn queue_static_mode_serves_only_own_deque() {
        let q = RangeQueue::new(2, false);
        q.seed_once(4, || {
            (
                vec![
                    vec![MicroRange { start: 0, end: 2 }],
                    vec![MicroRange { start: 2, end: 4 }],
                ],
                Vec::new(),
            )
        });
        assert_eq!(
            q.next(0, 0, true),
            Some(NextRange {
                range: MicroRange { start: 0, end: 2 },
                stolen: false
            })
        );
        assert_eq!(q.next(0, 2, true), None, "stealing disabled");
        assert!(q.next(1, 0, true).is_some());
        assert_eq!(q.steals(), 0);
    }

    #[test]
    fn queue_steals_from_most_loaded_victim_back() {
        let q = RangeQueue::new(2, true);
        q.seed_once(8, || {
            (
                vec![
                    vec![MicroRange { start: 0, end: 1 }],
                    vec![
                        MicroRange { start: 1, end: 3 },
                        MicroRange { start: 3, end: 5 },
                        MicroRange { start: 5, end: 8 },
                    ],
                ],
                Vec::new(),
            )
        });
        let own = q.next(0, 0, true).unwrap();
        assert!(!own.stolen);
        // Worker 0 drained: steals from worker 1's back, skipping the
        // pinned final range (5..8).
        let stolen = q.next(0, 1, true).unwrap();
        assert!(stolen.stolen);
        assert_eq!(stolen.range, MicroRange { start: 3, end: 5 });
        assert_eq!(q.steals(), 1);
        // The final range stays with its owner.
        let r1 = q.next(1, 0, true).unwrap();
        assert_eq!(r1.range, MicroRange { start: 1, end: 3 });
        let r2 = q.next(1, 3, true).unwrap();
        assert_eq!(r2.range, MicroRange { start: 5, end: 8 });
        assert!(!r2.stolen);
        // Nothing left for the thief: the final range is not stealable.
        assert_eq!(q.next(0, 5, true), None);
    }

    #[test]
    fn queue_prefers_forward_steals() {
        let q = RangeQueue::new(3, true);
        q.seed_once(9, || {
            (
                vec![
                    vec![MicroRange { start: 0, end: 3 }],
                    vec![MicroRange { start: 3, end: 6 }],
                    vec![MicroRange { start: 6, end: 9 }],
                ],
                Vec::new(),
            )
        });
        // Worker 2 takes its own (final) range first, then sits at state 9;
        // both remaining ranges are behind it — the backward pass still
        // serves one rather than idling the worker.
        assert!(!q.next(2, 0, true).unwrap().stolen);
        let behind = q.next(2, 9, true).unwrap();
        assert!(behind.stolen);
        // Worker 0 at state 0: 3..6 is ahead, preferred over nothing.
        let ahead = q.next(0, 0, true);
        let _ = ahead; // whichever range remains, it must be servable
    }

    #[test]
    fn no_backward_steals_without_rewind() {
        // With rewinds impossible (poisoned reuse: init re-executes instead
        // of restoring), a worker past a range must never be handed it.
        let q = RangeQueue::new(3, true);
        q.seed_once(9, || {
            (
                vec![
                    vec![MicroRange { start: 0, end: 3 }],
                    vec![
                        MicroRange { start: 3, end: 6 },
                        MicroRange { start: 6, end: 9 },
                    ],
                    vec![],
                ],
                Vec::new(),
            )
        });
        // Worker 2 (empty deque) steals forward work.
        let s = q.next(2, 0, false).unwrap();
        assert!(s.stolen);
        assert_eq!(s.range, MicroRange { start: 3, end: 6 });
        // At state 6 the only forward range is the final one: served as
        // last resort.
        let f = q.next(2, 6, false).unwrap();
        assert_eq!(f.range, MicroRange { start: 6, end: 9 });
        // At state 9 the remaining range 0..3 is behind — forward-only
        // returns None and the owner keeps its work.
        assert_eq!(q.next(2, 9, false), None);
        assert!(!q.next(0, 0, false).unwrap().stolen);
    }

    #[test]
    fn final_range_is_stolen_only_as_last_resort() {
        let q = RangeQueue::new(2, true);
        q.seed_once(6, || {
            (
                vec![
                    vec![MicroRange { start: 0, end: 2 }],
                    vec![
                        MicroRange { start: 2, end: 4 },
                        MicroRange { start: 4, end: 6 },
                    ],
                ],
                Vec::new(),
            )
        });
        assert!(!q.next(0, 0, true).unwrap().stolen);
        // Non-final work is preferred even though the final range sits at
        // the victim's back.
        let s1 = q.next(0, 2, true).unwrap();
        assert_eq!(s1.range, MicroRange { start: 2, end: 4 });
        assert!(s1.stolen);
        // Nothing else left anywhere: the final range is handed out so an
        // idle worker can absorb a heavy tail (its thief retires with the
        // final program state).
        let s2 = q.next(0, 4, true).unwrap();
        assert_eq!(s2.range, MicroRange { start: 4, end: 6 });
        assert!(s2.stolen);
        assert_eq!(q.next(1, 0, true), None, "owner finds its deque emptied");
    }

    #[test]
    fn queue_seed_once_is_idempotent() {
        let q = RangeQueue::new(1, true);
        assert!(q.seed_once(2, || (
            vec![vec![MicroRange { start: 0, end: 2 }]],
            Vec::new()
        )));
        assert!(!q.seed_once(2, || panic!("second seed must not run")));
        assert_eq!(q.n_iters(), 2);
        assert_eq!(q.seeded_span(0), Some(MicroRange { start: 0, end: 2 }));
    }

    #[test]
    fn profiled_bound_tightens_under_skew_and_matches_uniform() {
        // Uniform: the continuous relaxation — total/(total/G) = G — which
        // upper-bounds the integral count-based bound.
        let uniform = vec![7u64; 200];
        let u = max_speedup_profiled(&uniform, 16);
        assert!((u - 16.0).abs() < 1e-9, "uniform bound {u}");
        assert!(u >= max_speedup(200, 16));
        // Skew: one iteration dominates — bound collapses toward total/max.
        let mut skewed = vec![1u64; 100];
        skewed[0] = 1000;
        let b = max_speedup_profiled(&skewed, 16);
        assert!((b - 1099.0 / 1000.0).abs() < 1e-9, "bound {b}");
        assert!(b < max_speedup(100, 16), "profile-aware bound is tighter");
        // Degenerate inputs.
        assert_eq!(max_speedup_profiled(&[], 4), 1.0);
        assert_eq!(max_speedup_profiled(&[5], 0), 1.0);
    }

    #[test]
    fn property_partitions_cover_for_many_shapes() {
        for n in [1u64, 2, 3, 7, 16, 100, 200] {
            for g in [1usize, 2, 3, 4, 5, 16, 64] {
                let plans = plan(n, g, InitMode::Strong);
                assert_covering(n, &plans);
                let plans = plan(n, g, InitMode::Weak);
                assert_covering(n, &plans);
            }
        }
    }
}
