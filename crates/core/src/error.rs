//! Engine-wide error type.

use std::fmt;

/// Anything that can go wrong in record or replay.
#[derive(Debug)]
pub enum FlorError {
    /// Script failed to parse.
    Parse(flor_lang::ParseError),
    /// Runtime failure inside the interpreter (message, best-effort
    /// statement description).
    Runtime(String),
    /// Checkpoint store failure.
    Store(flor_chkpt::StoreError),
    /// Checkpoint payload failed to decode.
    Codec(flor_chkpt::CodecError),
    /// Replay configuration or state problem.
    Replay(String),
    /// Replay stopped early because its cancellation token fired.
    Cancelled,
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for FlorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlorError::Parse(e) => write!(f, "{e}"),
            FlorError::Runtime(m) => write!(f, "runtime error: {m}"),
            FlorError::Store(e) => write!(f, "{e}"),
            FlorError::Codec(e) => write!(f, "{e}"),
            FlorError::Replay(m) => write!(f, "replay error: {m}"),
            FlorError::Cancelled => write!(f, "replay cancelled"),
            FlorError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for FlorError {}

impl From<flor_lang::ParseError> for FlorError {
    fn from(e: flor_lang::ParseError) -> Self {
        FlorError::Parse(e)
    }
}

impl From<flor_chkpt::StoreError> for FlorError {
    fn from(e: flor_chkpt::StoreError) -> Self {
        FlorError::Store(e)
    }
}

impl From<flor_chkpt::CodecError> for FlorError {
    fn from(e: flor_chkpt::CodecError) -> Self {
        FlorError::Codec(e)
    }
}

impl From<std::io::Error> for FlorError {
    fn from(e: std::io::Error) -> Self {
        FlorError::Io(e)
    }
}

/// Shorthand for runtime errors.
pub fn rt(msg: impl Into<String>) -> FlorError {
    FlorError::Runtime(msg.into())
}
