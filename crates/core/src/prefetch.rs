//! Per-worker checkpoint prefetching for the replay hot path.
//!
//! A replay worker's restore schedule is fully known the moment its
//! [`WorkerPlan`](crate::parallel::WorkerPlan) is fixed: every main-loop
//! block restores once per initialization iteration, and once per work
//! iteration unless the block is probed. The [`Prefetcher`] walks that
//! schedule on a background thread, pulling each checkpoint through the
//! store's zero-copy [`get_bytes`](flor_chkpt::CheckpointStore::get_bytes)
//! path — so segment I/O (and decompression) overlaps with the
//! interpreter's own execution instead of serializing behind it, the
//! worker-thread analogue of the record phase's background materializer.
//!
//! Delta-chained checkpoints make the prefetcher pull *bases* ahead for
//! free: `get_bytes` resolves a chain entry by walking to its keyframe
//! (or to the store's per-block restore cache), so the background thread
//! absorbs the whole chain walk and leaves the restore cache warm — the
//! worker's later restores of deeper links in the same chain then pay a
//! single delta decode each, whether they hit the parked buffer or fall
//! through to a direct read.
//!
//! The restore path consumes buffers with [`Prefetcher::take`]; a miss
//! (not fetched yet, or the fetch failed) simply falls through to a direct
//! store read, which re-surfaces any error with full context. Fetched
//! buffers are refcounted [`Bytes`] slices of shared segment buffers, and
//! outstanding (fetched, not yet consumed) memory is capped so a worker
//! far behind its prefetcher can't balloon memory. The cap charges each
//! distinct *heap* backing allocation once at its full size
//! ([`Bytes::backing_len`]) — a tiny zero-copy slice pins its entire
//! segment buffer, so charging slice lengths would undercount retained
//! memory by orders of magnitude on fragmented stores. File-backed
//! (mmap'd) backings are the exception: their pages are clean page cache
//! the kernel can drop, so each slice charges only its own length
//! ([`Bytes::backing_is_file`]).

use flor_chkpt::{Bytes, CheckpointStore};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Cap on retained backing bytes of fetched-but-unconsumed payloads per
/// worker (each distinct backing allocation charged once, at full size).
pub const PREFETCH_BUDGET_BYTES: u64 = 64 << 20;

struct Shared {
    /// block → seq → fetched payload.
    ready: Mutex<HashMap<String, HashMap<u64, Bytes>>>,
    /// backing id → (outstanding slices of it, backing length). Charged
    /// into `outstanding` when the first slice arrives, released when the
    /// last is consumed.
    charged: Mutex<HashMap<usize, (usize, u64)>>,
    /// Keys the consumer already restored via a direct read before the
    /// fetch happened — skipped by the fetch thread so dead buffers can't
    /// eat the budget.
    skip: Mutex<HashMap<String, std::collections::HashSet<u64>>>,
    /// Backing bytes currently retained (backpressure signal).
    outstanding: AtomicU64,
    /// Cooperative cancellation (set on drop or early replay exit).
    stop: AtomicBool,
    /// Checkpoints fetched by the background thread.
    fetched: AtomicU64,
}

/// Background checkpoint reader for one replay worker.
pub struct Prefetcher {
    shared: Arc<Shared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Prefetcher {
    /// Spawns a prefetch thread that reads `keys` (the worker's restore
    /// schedule, in restore order) through `store.get_bytes`. Keys without
    /// a checkpoint and read errors are skipped — the consumer's fallback
    /// read owns error reporting.
    pub fn spawn(store: Arc<CheckpointStore>, keys: Vec<(String, u64)>) -> Prefetcher {
        let shared = Arc::new(Shared {
            ready: Mutex::new(HashMap::new()),
            charged: Mutex::new(HashMap::new()),
            skip: Mutex::new(HashMap::new()),
            outstanding: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            fetched: AtomicU64::new(0),
        });
        let worker = shared.clone();
        let handle = std::thread::spawn(move || {
            for (block, seq) in keys {
                if worker.stop.load(Ordering::Acquire) {
                    return;
                }
                // Backpressure: stay within the byte budget, yielding the
                // same way the materializer's flush barrier does.
                while worker.outstanding.load(Ordering::Acquire) > PREFETCH_BUDGET_BYTES {
                    if worker.stop.load(Ordering::Acquire) {
                        return;
                    }
                    std::thread::sleep(std::time::Duration::from_micros(50));
                }
                let skipped = |w: &Shared| {
                    w.skip
                        .lock()
                        .get(&block)
                        .is_some_and(|seqs| seqs.contains(&seq))
                };
                if skipped(&worker) || !store.contains(&block, seq) {
                    continue;
                }
                if let Ok(bytes) = store.get_bytes(&block, seq) {
                    // Check-and-park atomically under the skip lock: the
                    // consumer may have restored this key directly while we
                    // were reading, and `mark_consumed` re-takes after its
                    // skip insert — together that closes every interleaving
                    // where a buffer nobody will take stays parked (and
                    // pinned against the budget).
                    let skip_guard = worker.skip.lock();
                    if skip_guard
                        .get(&block)
                        .is_some_and(|seqs| seqs.contains(&seq))
                    {
                        continue;
                    }
                    {
                        let mut charged = worker.charged.lock();
                        let slot = charged.entry(bytes.backing_id()).or_insert((0, 0));
                        // File-backed (mmap'd segment) slices charge their
                        // own length: the backing pages are clean page
                        // cache the kernel can reclaim, not anonymous heap
                        // pinned by the slice. Heap backings still charge
                        // the full allocation once — a tiny slice pins the
                        // whole buffer.
                        let add = if bytes.backing_is_file() {
                            bytes.len() as u64
                        } else if slot.0 == 0 {
                            bytes.backing_len() as u64
                        } else {
                            0
                        };
                        slot.0 += 1;
                        slot.1 += add;
                        if add > 0 {
                            worker.outstanding.fetch_add(add, Ordering::AcqRel);
                        }
                    }
                    worker.fetched.fetch_add(1, Ordering::Relaxed);
                    worker
                        .ready
                        .lock()
                        .entry(block)
                        .or_default()
                        .insert(seq, bytes);
                    drop(skip_guard);
                }
            }
        });
        Prefetcher {
            shared,
            handle: Some(handle),
        }
    }

    /// Removes and returns the prefetched payload for `(block, seq)`, if
    /// the background thread already fetched it.
    pub fn take(&self, block: &str, seq: u64) -> Option<Bytes> {
        let bytes = {
            let mut ready = self.shared.ready.lock();
            ready.get_mut(block)?.remove(&seq)?
        };
        let mut charged = self.shared.charged.lock();
        if let Some(slot) = charged.get_mut(&bytes.backing_id()) {
            slot.0 -= 1;
            let sub = if bytes.backing_is_file() {
                (bytes.len() as u64).min(slot.1)
            } else if slot.0 == 0 {
                slot.1
            } else {
                0
            };
            slot.1 -= sub;
            if slot.0 == 0 {
                // Any residue (e.g. rounding of per-slice file charges)
                // releases with the last slice.
                self.shared
                    .outstanding
                    .fetch_sub(sub + slot.1, Ordering::AcqRel);
                charged.remove(&bytes.backing_id());
            } else if sub > 0 {
                self.shared.outstanding.fetch_sub(sub, Ordering::AcqRel);
            }
        }
        Some(bytes)
    }

    /// Tells the prefetcher that `(block, seq)` was restored via a direct
    /// read (the interpreter ran ahead of the fetch thread): a parked
    /// buffer for it is released immediately, and a not-yet-started fetch
    /// is skipped — otherwise a consistently-ahead worker would fill the
    /// whole budget with buffers nobody will ever take, stalling the
    /// prefetcher for the rest of the replay.
    pub fn mark_consumed(&self, block: &str, seq: u64) {
        if self.take(block, seq).is_some() {
            return;
        }
        self.shared
            .skip
            .lock()
            .entry(block.to_string())
            .or_default()
            .insert(seq);
        // The fetch thread parks under the skip lock, so any park not
        // visible to the first take happened before the insert above —
        // this second take releases it. After the insert, no new park for
        // this key can happen.
        let _ = self.take(block, seq);
    }

    /// Checkpoints the background thread has fetched so far.
    pub fn fetched(&self) -> u64 {
        self.shared.fetched.load(Ordering::Relaxed)
    }

    /// Backing bytes currently retained by unconsumed prefetches.
    pub fn outstanding_backing_bytes(&self) -> u64 {
        self.shared.outstanding.load(Ordering::Acquire)
    }

    /// Blocks until the prefetch schedule is fully drained (test hook).
    pub fn join(&mut self) {
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpstore(tag: &str) -> Arc<CheckpointStore> {
        let dir = std::env::temp_dir().join(format!(
            "flor-prefetch-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Arc::new(CheckpointStore::open(dir).unwrap())
    }

    #[test]
    fn prefetches_scheduled_keys_and_serves_takes() {
        let store = tmpstore("basic");
        for seq in 0..6u64 {
            store
                .put("sb_0", seq, format!("payload-{seq}").as_bytes())
                .unwrap();
        }
        let keys: Vec<_> = (0..6u64).map(|s| ("sb_0".to_string(), s)).collect();
        let mut p = Prefetcher::spawn(store, keys);
        p.join();
        assert_eq!(p.fetched(), 6);
        for seq in 0..6u64 {
            let b = p.take("sb_0", seq).expect("prefetched");
            assert_eq!(b.as_ref(), format!("payload-{seq}").as_bytes());
        }
        // Consumed: a second take misses.
        assert!(p.take("sb_0", 0).is_none());
    }

    #[test]
    fn missing_and_unknown_keys_are_skipped() {
        let store = tmpstore("missing");
        store.put("sb_0", 0, b"only this").unwrap();
        let keys = vec![
            ("sb_0".to_string(), 0),
            ("sb_0".to_string(), 9),
            ("sb_other".to_string(), 0),
        ];
        let mut p = Prefetcher::spawn(store, keys);
        p.join();
        assert_eq!(p.fetched(), 1);
        assert!(p.take("sb_0", 0).is_some());
        assert!(p.take("sb_0", 9).is_none());
    }

    #[test]
    fn mark_consumed_skips_future_fetches_and_releases_parked_ones() {
        let store = tmpstore("consumed");
        for seq in 0..2u64 {
            store
                .put("sb_0", seq, format!("p{seq}").as_bytes())
                .unwrap();
        }
        let mut p = Prefetcher::spawn(
            store,
            vec![("sb_0".to_string(), 0), ("sb_0".to_string(), 1)],
        );
        // Consumer ran ahead on seq 0. Whether this lands before or after
        // the fetch, the end state is the same: nothing parked for it.
        p.mark_consumed("sb_0", 0);
        p.join();
        assert!(p.take("sb_0", 0).is_none(), "consumed key is not parked");
        // Seq 1 was fetched normally; the ran-ahead release path empties
        // the budget even without a take.
        p.mark_consumed("sb_0", 1);
        assert!(p.take("sb_0", 1).is_none());
        assert_eq!(p.outstanding_backing_bytes(), 0);
    }

    #[test]
    fn budget_charges_shared_backings_once_and_releases_on_last_take() {
        // Heap-backed reads (SegmentRead::WholeFile) pin the whole segment
        // buffer per slice, so the backing is charged once at full size.
        let dir = std::env::temp_dir().join(format!(
            "flor-prefetch-test-backing-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(
            CheckpointStore::open_opts(
                dir,
                flor_chkpt::StoreOptions {
                    segment_read: flor_chkpt::SegmentRead::WholeFile,
                    ..flor_chkpt::StoreOptions::default()
                },
            )
            .unwrap(),
        );
        // Distinct incompressible payloads land raw-stored in one segment:
        // every fetched slice shares that segment's backing buffer.
        // (Distinct, not repeated — identical payloads would delta-chain
        // and reconstruct into private buffers instead of zero-copy
        // slices.)
        let payload = |seq: u64| -> Vec<u8> {
            let mut x = 0x9E3779B9u32 ^ ((seq as u32 + 1) << 8);
            (0..2048)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 17;
                    x ^= x << 5;
                    x as u8
                })
                .collect()
        };
        for seq in 0..4u64 {
            store.put("sb_0", seq, &payload(seq)).unwrap();
        }
        let keys: Vec<_> = (0..4u64).map(|s| ("sb_0".to_string(), s)).collect();
        let mut p = Prefetcher::spawn(store, keys);
        p.join();
        let outstanding = p.outstanding_backing_bytes();
        // One shared segment backing, charged once — not 4 × slice length,
        // and crucially not 4 × backing length.
        assert!(outstanding >= 4 * 2048, "{outstanding}");
        assert!(outstanding < 2 * 4 * 2048 + 4096, "{outstanding}");
        for seq in 0..3u64 {
            p.take("sb_0", seq).unwrap();
            assert_eq!(
                p.outstanding_backing_bytes(),
                outstanding,
                "backing stays charged while any slice of it is unconsumed"
            );
        }
        p.take("sb_0", 3).unwrap();
        assert_eq!(
            p.outstanding_backing_bytes(),
            0,
            "last take releases the backing"
        );
    }

    #[test]
    fn file_backed_slices_charge_their_own_length() {
        // Default (mmap) reads: slices of a mapped segment charge slice
        // length, release incrementally, and never pin the whole mapping's
        // size against the budget.
        let store = tmpstore("backing-mmap");
        let payload = |seq: u64| -> Vec<u8> {
            let mut x = 0x9E37_79B9u32 ^ ((seq as u32 + 1) << 8);
            (0..2048)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 17;
                    x ^= x << 5;
                    x as u8
                })
                .collect()
        };
        for seq in 0..4u64 {
            store.put("sb_0", seq, &payload(seq)).unwrap();
        }
        let keys: Vec<_> = (0..4u64).map(|s| ("sb_0".to_string(), s)).collect();
        let mut p = Prefetcher::spawn(store.clone(), keys);
        p.join();
        let first = p.take("sb_0", 0).unwrap();
        if !first.backing_is_file() {
            return; // mmap unavailable on this platform: heap fallback
        }
        let before = p.outstanding_backing_bytes();
        p.take("sb_0", 1).unwrap();
        let after = p.outstanding_backing_bytes();
        assert!(after < before, "per-slice release: {before} -> {after}");
        p.take("sb_0", 2).unwrap();
        p.take("sb_0", 3).unwrap();
        assert_eq!(p.outstanding_backing_bytes(), 0);
    }

    #[test]
    fn delta_chains_prefetch_fully_resolved() {
        // A worker partition often starts mid-chain (weak init lands on an
        // anchor, work iterations walk forward). The prefetcher must hand
        // back fully reconstructed payloads, having done the chain walk —
        // keyframe read plus delta decodes — on the background thread.
        let store = tmpstore("delta-chain");
        let payload = |v: u64| -> Vec<u8> {
            (0..1024u32)
                .flat_map(|i| {
                    let f =
                        (i as f32 * 0.07).sin() + if i % 11 == 0 { v as f32 * 0.01 } else { 0.0 };
                    f.to_le_bytes()
                })
                .collect()
        };
        for seq in 0..8u64 {
            store.put("sb_0", seq, &payload(seq)).unwrap();
        }
        assert!(store.stats().delta_entries >= 6, "{:?}", store.stats());
        // Schedule starts mid-chain: seq 3's chain walks back to the
        // keyframe; 4..8 each resolve one link off the warm restore cache.
        let keys: Vec<_> = (3..8u64).map(|s| ("sb_0".to_string(), s)).collect();
        let mut p = Prefetcher::spawn(store.clone(), keys);
        p.join();
        assert_eq!(p.fetched(), 5);
        for seq in 3..8u64 {
            let b = p.take("sb_0", seq).expect("prefetched");
            assert_eq!(b.as_ref(), &payload(seq)[..], "seq {seq}");
        }
        let s = store.stats();
        assert!(s.delta_reads >= 5, "{s:?}");
        assert!(
            s.restore_cache_hits >= 4,
            "sequential prefetch must ride the restore cache: {s:?}"
        );
    }

    #[test]
    fn drop_cancels_the_background_thread() {
        let store = tmpstore("cancel");
        store.put("sb_0", 0, &vec![1u8; 1024]).unwrap();
        let keys: Vec<_> = (0..10_000u64).map(|_| ("sb_0".to_string(), 0)).collect();
        let p = Prefetcher::spawn(store, keys);
        drop(p); // must not hang
    }
}
