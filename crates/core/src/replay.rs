//! The replay phase (paper §3.2) and deferred correctness checks (§5.2.2).
//!
//! "Model developers probe training execution data by adding logging
//! statements into the code. At analysis time, following the insertion of
//! hindsight logging statements, Flor recovers selected execution data via
//! fast re-execution […] combining partial and parallel replay."
//!
//! [`replay`] is the whole phase:
//!
//! 1. load the instrumented source saved at record time,
//! 2. instrument the *new* source identically and structurally diff the two
//!    — added log statements become probes, attributed to their enclosing
//!    SkipBlock; anything else poisons checkpoint reuse,
//! 3. run `G` parallel workers against a shared [`ReplayRuntime`]: each
//!    pulls cost-sized micro-ranges off the work-stealing queue (seeded
//!    contiguously to preserve strong/weak initialization semantics and
//!    checkpoint-restore locality; `--steal` lets drained workers take load
//!    off stragglers),
//! 4. stream completed ranges into the incremental merger, which emits the
//!    record-order prefix as soon as it is contiguous — no barrier join,
//! 5. run the deferred correctness check incrementally on that prefix: the
//!    replayed fingerprint must match the record log everywhere both
//!    produced output.

use crate::error::FlorError;
use crate::interp::{Interp, Mode, Phase, ReplayCtx, ReplayStats};
use crate::logstream::{LogEntry, LogStream, Section};
use crate::parallel::{plan, plan_anchored, InitMode, MicroRange, RangeQueue, WorkerPlan};
use crate::profile::{CostProfile, COST_PROFILE_ARTIFACT};
use crate::stream::{RangeSink, StreamEvent, StreamMsg, StreamingMerger};
use flor_analysis::instrument::instrument;
use flor_chkpt::CheckpointStore;
use flor_lang::ast::{Expr, Program, Stmt};
use flor_lang::{diff_programs, parse, ProbeSite};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::PathBuf;
use std::sync::Arc;

/// Knobs for a replay run.
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// Number of parallel workers (the paper's NGPUS).
    pub workers: usize,
    /// Worker initialization strategy (default Strong, as in the paper).
    pub init_mode: InitMode,
    /// Work-stealing over cost-sized micro-ranges. Off, each worker owns a
    /// static contiguous partition (the paper's §5.4 plan — the slowest
    /// worker gates completion). On, partitions are split into micro-ranges
    /// sized by the run's recorded cost profile, and drained workers steal
    /// off stragglers.
    pub steal: bool,
    /// Execute on the bytecode VM (default). Off, the tree-walking
    /// interpreter runs instead — the fallback and differential oracle;
    /// both executors produce byte-identical logs and final state.
    pub vm: bool,
    /// Compiled-module cache shared across replay jobs, keyed by
    /// `source_version`. None compiles fresh per job (still once, shared
    /// by all workers of the job).
    pub module_cache: Option<Arc<crate::vm::ModuleCache>>,
    /// Dependency-aware slicing (default on): statements outside the
    /// backward slice of the log statements are elided from execution —
    /// both executors run the same pruned program. Off (or when the
    /// slicer refuses: aliasing it can't track, rule-5 calls, impure
    /// hindsight diffs), the full program runs.
    pub slice: bool,
    /// Cooperative cancellation. When set, workers poll the token at
    /// range-pull and per-iteration boundaries and the replay fails fast
    /// with [`FlorError::Cancelled`] instead of running to completion.
    pub cancel: Option<crate::parallel::CancelToken>,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            workers: 1,
            init_mode: InitMode::Strong,
            steal: false,
            vm: true,
            module_cache: None,
            slice: true,
            cancel: None,
        }
    }
}

impl ReplayOptions {
    /// Replay with `workers` parallel workers, strong initialization.
    pub fn with_workers(workers: usize) -> Self {
        ReplayOptions {
            workers,
            ..Default::default()
        }
    }

    /// Replay with `workers` work-stealing workers.
    pub fn with_stealing(workers: usize) -> Self {
        ReplayOptions {
            workers,
            steal: true,
            ..Default::default()
        }
    }
}

/// Shared state of one replay run's worker pool: the work-stealing range
/// queue plus everything needed to seed it (done lazily by the first worker
/// to reach the main loop, since only workers know the iteration count).
pub struct ReplayRuntime {
    /// The micro-range queue workers pull from.
    pub queue: RangeQueue,
    /// The run's recorded per-iteration cost profile, if present.
    pub profile: Option<CostProfile>,
    /// Worker count.
    pub workers: usize,
    /// Whether stealing is enabled (mirrors [`RangeQueue`]'s flag; kept for
    /// seeding decisions).
    pub steal: bool,
    /// Live statement fraction of the slice being executed, in permille
    /// (1000 = unsliced). Prices executed iterations in cost seeding:
    /// the recorded profile measured the full body, but elision shrinks
    /// the work roughly proportionally.
    pub live_permille: u32,
    /// Cancellation token for this replay, if the caller wants one.
    pub cancel: Option<crate::parallel::CancelToken>,
}

impl ReplayRuntime {
    /// Runtime for `workers` workers.
    pub fn new(workers: usize, steal: bool, profile: Option<CostProfile>) -> Self {
        ReplayRuntime {
            queue: RangeQueue::new(workers, steal),
            profile,
            workers,
            steal,
            live_permille: 1000,
            cancel: None,
        }
    }

    /// True once this replay's cancellation token (if any) has fired.
    pub fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(|c| c.is_cancelled())
    }

    /// Computes the seed deques for an `n`-iteration main loop — called
    /// exactly once per replay, by whichever worker reaches the loop first
    /// (every worker would compute the same result).
    ///
    /// Static mode reproduces the legacy planner's contiguous segments
    /// verbatim (one range per worker). Stealing mode splits iterations
    /// into cost-sized micro-ranges — the cost of an iteration taken from
    /// the record-time profile when one exists, uniform otherwise — and
    /// seeds them contiguously, balanced by cost. Returns the deques plus
    /// the cost vector they were balanced by (the queue weighs victims
    /// with it).
    pub fn seed_ranges(&self, ctx: &ReplayCtx, n: u64) -> (Vec<Vec<MicroRange>>, Vec<u64>) {
        if !self.steal {
            let plans = match ctx.init_mode {
                InitMode::Strong => plan(n, self.workers, InitMode::Strong),
                InitMode::Weak => plan_anchored(n, &ctx.anchors(n), self.workers),
            };
            let mut deques: Vec<Vec<MicroRange>> = vec![Vec::new(); self.workers];
            for p in plans {
                deques[p.pid].push(MicroRange {
                    start: p.work_start,
                    end: p.work_end,
                });
            }
            return (deques, Vec::new());
        }
        // Will replay *execute* iterations (probed / poisoned / unmemoized)
        // or restore them? Determines which cost column of the profile
        // applies.
        let executes = ctx.force_execute_all
            || ctx.main_blocks.is_empty()
            || ctx
                .main_blocks
                .iter()
                .any(|b| ctx.probed_blocks.contains(b));
        let mut costs: Vec<u64> = self
            .profile
            .as_ref()
            .map(|p| p.replay_costs(n, executes))
            .unwrap_or_default();
        if executes && self.live_permille < 1000 {
            // Executed iterations run the slice, not the full recorded
            // body — price them accordingly so stealing stays balanced.
            for c in &mut costs {
                *c = crate::profile::sliced_cost(*c, self.live_permille);
            }
        }
        let anchors = match ctx.init_mode {
            InitMode::Strong => None,
            InitMode::Weak => Some(ctx.anchors(n)),
        };
        let deques = crate::parallel::seed_cost_ranges(n, self.workers, &costs, anchors.as_ref());
        (deques, costs)
    }
}

/// What a replay run produced.
pub struct ReplayReport {
    /// The merged hindsight log (record-order).
    pub log: Vec<LogEntry>,
    /// Probes detected by the source diff.
    pub probes: Vec<ProbeSite>,
    /// Non-hindsight source changes (forces full re-execution).
    pub other_changes: Vec<String>,
    /// Deferred-check anomalies: divergences between record and replay
    /// fingerprints.
    pub anomalies: Vec<String>,
    /// Aggregated SkipBlock restore/execute counters.
    pub stats: ReplayStats,
    /// Wall-clock time of the replay, ns.
    pub wall_ns: u64,
    /// Each worker's executed partition (None for workers with no share).
    pub worker_plans: Vec<Option<WorkerPlan>>,
}

impl ReplayReport {
    /// Probe outputs only: entries whose key never appears in the record
    /// log (the typical "what did I ask for in hindsight" view).
    pub fn hindsight_entries<'a>(&'a self, record_log: &[LogEntry]) -> Vec<&'a LogEntry> {
        let record_keys: HashSet<&str> = record_log.iter().map(|e| e.key.as_str()).collect();
        self.log
            .iter()
            .filter(|e| !record_keys.contains(e.key.as_str()))
            .collect()
    }
}

/// SkipBlock ids nested inside the main (partition-wrapped) loop.
pub(crate) fn main_loop_blocks(prog: &Program) -> Vec<String> {
    fn collect(body: &[Stmt], out: &mut Vec<String>) {
        for stmt in body {
            match stmt {
                Stmt::SkipBlock { id, body } => {
                    out.push(id.clone());
                    collect(body, out);
                }
                Stmt::For { body, .. } => collect(body, out),
                Stmt::If { then, orelse, .. } => {
                    collect(then, out);
                    collect(orelse, out);
                }
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    for stmt in &prog.body {
        if let Stmt::For { iter, body, .. } = stmt {
            let is_partitioned = matches!(
                iter,
                Expr::Call { func, .. }
                    if matches!(
                        func.as_ref(),
                        Expr::Attr { obj, name }
                            if name == "partition" && obj.as_name() == Some("flor")
                    )
            );
            if is_partitioned {
                collect(body, &mut out);
            }
        }
    }
    out
}

/// Replays a (possibly probed) training script against a recorded store.
pub fn replay(
    new_src: &str,
    store_root: impl Into<PathBuf>,
    opts: &ReplayOptions,
) -> Result<ReplayReport, FlorError> {
    let store = Arc::new(CheckpointStore::open(store_root.into())?);
    replay_with_store(new_src, store, opts)
}

/// [`replay`] over an already-open store handle. Long-lived services (the
/// registry's query scheduler) keep one handle per run and replay through
/// it repeatedly, skipping the manifest re-scan that `open` performs.
pub fn replay_with_store(
    new_src: &str,
    store: Arc<CheckpointStore>,
    opts: &ReplayOptions,
) -> Result<ReplayReport, FlorError> {
    replay_streaming(new_src, store, opts, |_| {})
}

/// [`replay_with_store`] with a streaming observer: `on_event` receives
/// record-order log-entry chunks as soon as the leading contiguous prefix
/// of iterations completes (long before the last worker finishes), plus
/// progress counters and incrementally-detected anomalies. The returned
/// report is identical to the non-streaming call — the final log is the
/// concatenation of the streamed chunks.
pub fn replay_streaming(
    new_src: &str,
    store: Arc<CheckpointStore>,
    opts: &ReplayOptions,
    on_event: impl FnMut(StreamEvent<'_>),
) -> Result<ReplayReport, FlorError> {
    let recorded_src = String::from_utf8(store.get_artifact("source.flr")?)
        .map_err(|_| crate::error::rt("recorded source is not valid UTF-8"))?;
    let recorded_prog = parse(&recorded_src)?;

    // Instrument the new source exactly as record did, then diff.
    let new_prog = parse(new_src)?;
    let inst = instrument(&new_prog);
    let diff = diff_programs(&recorded_prog, &inst.program);
    let probed_blocks: HashSet<String> = diff
        .probes
        .iter()
        .filter_map(|p| p.skipblock_id.clone())
        .collect();
    let force_execute_all = !diff.is_pure_hindsight();
    let main_blocks = main_loop_blocks(&inst.program);
    // Loop-carried state outside every skipblock changeset (e.g.
    // `carry = carry + boost` in the outer body) is repaired by no
    // checkpoint restore: a backward steal's rewound prefix would roll
    // it forward from the worker's already-advanced value and diverge
    // from the record. Detect it statically and keep steals
    // forward-only when present.
    let outer_carried = flor_analysis::outer_carried_state(&inst.program, &inst.blocks).is_some();
    // Poisoned reuse re-executes every iteration: weak init's anchor jump
    // is a checkpoint restore, which poisoning disables, so the only sound
    // worker initialization is strong rolling re-execution from 0.
    let init_mode = if force_execute_all {
        InitMode::Strong
    } else {
        opts.init_mode
    };

    // The record log (for the incremental deferred check) and the cost
    // profile (for micro-range sizing and the slicer's checkpoint-cut
    // precondition) are loaded before workers start.
    let record_log = LogStream::parse_text(
        &String::from_utf8(store.get_artifact("record_log.txt")?)
            .map_err(|_| crate::error::rt("record log is not valid UTF-8"))?,
    );
    let profile = store
        .get_artifact(COST_PROFILE_ARTIFACT)
        .ok()
        .and_then(|bytes| String::from_utf8(bytes).ok())
        .and_then(|text| CostProfile::parse_text(&text));

    // Dependency-aware slicing: compute the backward slice of the log
    // statements and elide everything outside it. Skipped when the
    // caller opted out or the diff isn't pure hindsight (a poisoned
    // replay re-executes everything, including non-cone statements
    // whose effects checkpoints would otherwise supersede); inert when
    // the slicer refuses (fallback) or finds nothing dead.
    let slice_plan = if opts.slice && !force_execute_all {
        let mut span = flor_obs::span(flor_obs::Category::Slice, "slice");
        let ts = flor_obs::clock::now_ns();
        let plan = flor_analysis::slice_program(
            &inst.program,
            &probed_blocks,
            &inst.blocks,
            checkpoint_cuts_provable(profile.as_ref(), &main_blocks, &store),
        );
        flor_obs::counter!("slice.compile_ns").add(flor_obs::clock::since_ns(ts));
        span.set_args(u64::from(plan.elided_stmts), u64::from(plan.region_stmts));
        Some(plan)
    } else {
        None
    };
    let (exec_prog, slice_suffix, statements_elided, live_permille) = match &slice_plan {
        Some(plan) if plan.is_active() => {
            let pruned = flor_lang::prune_program(&inst.program, &plan.dead);
            let hash = crate::record::fnv1a64(flor_lang::print_program(&pruned).as_bytes());
            (
                pruned,
                Some(format!("+s{hash:016x}")),
                u64::from(plan.elided_stmts),
                plan.live_permille(),
            )
        }
        _ => (inst.program.clone(), None, 0, 1000),
    };

    // Lower the instrumented program to bytecode once per replay job —
    // every worker executes the same shared module. When the caller
    // provides a module cache (the registry does), the compiled module is
    // reused across jobs keyed by the probed source's version (plus the
    // slice's content hash when one applies), so repeat hindsight queries
    // over one source version skip the pass entirely.
    let module = if opts.vm {
        let mut key = crate::record::source_version(new_src);
        if let Some(sfx) = &slice_suffix {
            key.push_str(sfx);
        }
        let dead = slice_plan
            .as_ref()
            .filter(|p| p.is_active())
            .map(|p| p.dead.clone())
            .unwrap_or_default();
        Some(match &opts.module_cache {
            Some(cache) => cache.get_or_compile_sliced(&key, &inst.program, &dead)?,
            None => crate::vm::compile_program_sliced(&inst.program, &dead)?,
        })
    } else {
        None
    };

    // Run the workers. Interpreter values are Rc-based (single-threaded by
    // design, like CPython); each worker owns a fresh interpreter inside
    // its thread — workers share nothing but the store and the range
    // queue, the coordination-free model of §5.4 plus one lock-guarded
    // steal point.
    let t0 = flor_obs::clock::now_ns();
    let delta_counters_before = store.delta_read_counters();
    let workers = opts.workers.max(1);
    let mut runtime = ReplayRuntime::new(workers, opts.steal, profile);
    runtime.live_permille = live_permille;
    runtime.cancel = opts.cancel.clone();
    let runtime = Arc::new(runtime);
    let (tx, rx) = std::sync::mpsc::channel::<StreamMsg>();
    let mut handles = Vec::with_capacity(workers);
    for pid in 0..workers {
        let prog = exec_prog.clone();
        let module = module.clone();
        let store = store.clone();
        let probed_blocks = probed_blocks.clone();
        let main_blocks = main_blocks.clone();
        let runtime = runtime.clone();
        let sink = RangeSink::new(tx.clone());
        handles.push(std::thread::spawn(
            move || -> Result<(ReplayStats, Option<WorkerPlan>), FlorError> {
                let ctx = ReplayCtx {
                    store,
                    pid,
                    workers,
                    init_mode,
                    probed_blocks,
                    force_execute_all,
                    outer_carried,
                    main_blocks,
                    phase: Phase::Work,
                    main_iter: None,
                    standalone_seq: HashMap::new(),
                    blocks_this_iter: HashSet::new(),
                    stats: ReplayStats::default(),
                    plan_used: None,
                    sample: None,
                    prefetcher: None,
                    runtime: Some(runtime),
                    sink: Some(sink.clone()),
                };
                let mut interp = Interp::new(Mode::Replay(Box::new(ctx)));
                match &module {
                    Some(m) => interp.run_vm(m)?,
                    None => interp.run(&prog)?,
                }
                let Mode::Replay(ctx) = interp.mode else {
                    unreachable!()
                };
                // Whatever the main loop didn't drain: preamble entries of
                // a loop-less program, and the postamble (suppressed — and
                // therefore empty — unless this worker owns the final
                // state).
                let leftover = interp.log.into_entries();
                let (pre, post): (Vec<LogEntry>, Vec<LogEntry>) = leftover
                    .into_iter()
                    .partition(|e| e.section == Section::Pre);
                sink.send(StreamMsg::Pre { pid, entries: pre });
                sink.send(StreamMsg::Post { entries: post });
                Ok((ctx.stats, ctx.plan_used))
            },
        ));
    }
    drop(tx);

    // Drive the incremental merger on this thread until every worker's
    // sink is gone; entries stream to the observer as prefixes complete.
    flor_obs::set_lane(flor_obs::trace::LANE_DRIVER, "driver");
    let mut merger = StreamingMerger::new(&record_log, t0, on_event);
    merger.run(&rx);

    let mut stats = ReplayStats::default();
    let mut worker_plans = Vec::with_capacity(workers);
    for h in handles {
        let (s, plan) = h
            .join()
            .map_err(|_| crate::error::rt("replay worker panicked"))??;
        stats.restored += s.restored;
        stats.executed += s.executed;
        stats.restore_ns += s.restore_ns;
        stats.prefetch_hits += s.prefetch_hits;
        stats.ranges_executed += s.ranges_executed;
        worker_plans.push(plan);
    }
    let (merged, mut anomalies, first_entry_ns) = merger.finish();
    stats.steals = runtime.queue.steals();
    stats.stream_first_entry_ns = first_entry_ns;
    stats.statements_elided = statements_elided;
    // 0 is the "no slice applied" sentinel (`slice_fraction` reads it as
    // 1.0); the runtime's cost math keeps the literal 1000 instead so a
    // full-cost iteration never collapses to the 1 ns floor.
    stats.slice_permille = if statements_elided > 0 {
        live_permille
    } else {
        0
    };
    // Attribute this replay's chain-resolution work (pooled store handles
    // carry counts from earlier replays; the diff is ours).
    let delta_counters_after = store.delta_read_counters();
    stats.delta_restores = delta_counters_after
        .0
        .saturating_sub(delta_counters_before.0);
    stats.chain_links = delta_counters_after
        .1
        .saturating_sub(delta_counters_before.1);
    let wall_ns = flor_obs::clock::since_ns(t0);

    if force_execute_all {
        anomalies.insert(
            0,
            format!(
                "source changed beyond hindsight logging ({} change(s)); \
                 checkpoints were not reused",
                diff.other_changes.len()
            ),
        );
    }

    Ok(ReplayReport {
        log: merged,
        probes: diff.probes,
        other_changes: diff.other_changes,
        anomalies,
        stats,
        wall_ns,
        worker_plans,
    })
}

/// The slicer's checkpoint-cut precondition, verified against the live
/// store: the recorded profile must claim every iteration fully
/// checkpointed *and* the store must still hold every main-loop block's
/// checkpoint at every profiled iteration. The profile only records what
/// record intended — a checkpoint lost since (manual pruning, GC of a
/// corrupt entry) silently re-executes its block at replay time, and a
/// cut computed under the restore assumption would have elided
/// statements that re-execution needs.
fn checkpoint_cuts_provable(
    profile: Option<&CostProfile>,
    main_blocks: &[String],
    store: &CheckpointStore,
) -> bool {
    profile.is_some_and(|p| {
        p.dense_checkpoints()
            && main_blocks
                .iter()
                .all(|b| (0..p.len() as u64).all(|g| store.contains(b, g)))
    })
}

/// Content fingerprint of the *semantic* replay a probed source induces
/// over a recorded source: the FNV hash of the canonical print of the
/// sliced (falling back to the full) instrumented program. Textually
/// different queries that parse, instrument, and slice to the same live
/// cone share a fingerprint — the registry keys its cross-query slice
/// cache with it, so a re-query pays parse+slice (microseconds) instead
/// of a replay. The checkpoint-cut precondition is re-derived against
/// `store` so the fingerprint names the plan replay itself would use.
/// Returns `None` when a source fails to parse or the diff is not pure
/// hindsight (poisoned replays are never memoized).
pub fn slice_fingerprint(
    recorded_src: &str,
    new_src: &str,
    store: &CheckpointStore,
    slice: bool,
) -> Option<u64> {
    let recorded_prog = parse(recorded_src).ok()?;
    let new_prog = parse(new_src).ok()?;
    let inst = instrument(&new_prog);
    let diff = diff_programs(&recorded_prog, &inst.program);
    if !diff.is_pure_hindsight() {
        return None;
    }
    let probed: HashSet<String> = diff
        .probes
        .iter()
        .filter_map(|p| p.skipblock_id.clone())
        .collect();
    let canonical = if slice {
        let profile = store
            .get_artifact(COST_PROFILE_ARTIFACT)
            .ok()
            .and_then(|bytes| String::from_utf8(bytes).ok())
            .and_then(|text| CostProfile::parse_text(&text));
        let dense =
            checkpoint_cuts_provable(profile.as_ref(), &main_loop_blocks(&inst.program), store);
        let plan = flor_analysis::slice_program(&inst.program, &probed, &inst.blocks, dense);
        if plan.is_active() {
            flor_lang::print_program(&flor_lang::prune_program(&inst.program, &plan.dead))
        } else {
            flor_lang::print_program(&inst.program)
        }
    } else {
        flor_lang::print_program(&inst.program)
    };
    Some(crate::record::fnv1a64(canonical.as_bytes()))
}

/// The deferred correctness check (paper §5.2.2): "at the end of replay, we
/// run diff, and warn the user if the replay logs differ from the record
/// logs in any way other than the statements added for hindsight logging."
///
/// Comparison semantics: for every `(key, section)` pair that produced
/// output in **both** runs, the value sequences must match exactly. Pairs
/// only in the record log were skipped by memoization (fine); pairs only in
/// the replay log are hindsight probes (fine). Probes should therefore use
/// fresh keys — reusing a recorded key inside a re-executed section is
/// reported as an anomaly.
pub fn deferred_check(record: &[LogEntry], replay: &[LogEntry]) -> Vec<String> {
    type KeySec = (String, Section);
    fn group(entries: &[LogEntry]) -> BTreeMap<KeySec, Vec<&str>> {
        let mut map: BTreeMap<KeySec, Vec<&str>> = BTreeMap::new();
        for e in entries {
            map.entry((e.key.clone(), e.section))
                .or_default()
                .push(e.value.as_str());
        }
        map
    }
    let rec = group(record);
    let rep = group(replay);
    let mut anomalies = Vec::new();
    for ((key, section), rec_vals) in &rec {
        if let Some(rep_vals) = rep.get(&(key.clone(), *section)) {
            if rec_vals != rep_vals {
                anomalies.push(format!(
                    "fingerprint divergence at key {key:?} {section:?}: \
                     record {rec_vals:?} vs replay {rep_vals:?}"
                ));
            }
        }
    }
    anomalies
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{record, tests::opts_exact};

    fn tmproot(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "flor-replay-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    const TRAIN_SRC: &str = crate::record::tests::TRAIN_SRC;

    /// TRAIN_SRC with an outer-loop probe (outside the skipblock).
    fn outer_probed() -> String {
        let probed = TRAIN_SRC.replace(
            "    log(\"loss\", avg.mean())\n",
            "    log(\"loss\", avg.mean())\n    log(\"hindsight_wnorm\", net.weight_norm())\n",
        );
        assert_ne!(probed, TRAIN_SRC, "probe marker must match");
        probed
    }

    /// TRAIN_SRC with an inner-loop probe (inside the skipblock).
    fn inner_probed() -> String {
        let probed = TRAIN_SRC.replace(
            "        optimizer.step()\n",
            "        optimizer.step()\n        log(\"hindsight_gnorm\", net.grad_norm())\n",
        );
        assert_ne!(probed, TRAIN_SRC, "probe marker must match");
        probed
    }

    #[test]
    fn unchanged_replay_matches_record_exactly() {
        let root = tmproot("unchanged");
        let rec = record(TRAIN_SRC, &opts_exact(&root)).unwrap();
        let rep = replay(TRAIN_SRC, &root, &ReplayOptions::default()).unwrap();
        assert!(rep.anomalies.is_empty(), "{:?}", rep.anomalies);
        assert!(rep.probes.is_empty());
        assert_eq!(rep.log, rec.log);
        // All 6 epochs restored, none executed: pure physical recovery.
        assert_eq!(rep.stats.restored, 6);
        assert_eq!(rep.stats.executed, 0);
        // Prefetched restores are a subset of restores (how many land is
        // a race between the prefetcher and the interpreter).
        assert!(rep.stats.prefetch_hits <= rep.stats.restored);
    }

    /// A fine-tuning-regime script (the paper's RTE/CoLA-miniature): a
    /// frozen backbone with 20k ballast weights dominates checkpoint
    /// size, while SGD only moves the small trainable head. Successive
    /// Loop End Checkpoints are therefore near-identical — the workload
    /// delta chains exist for. (TRAIN_SRC trains every weight from
    /// scratch at lr=0.1; its checkpoints rewrite most payload bytes per
    /// epoch, and the store correctly keeps those as keyframes.)
    const FINETUNE_SRC: &str = "\
import flor
data = synth_data(n=60, dim=8, classes=3, spread=0.25, seed=7)
loader = dataloader(data, batch_size=20, seed=7)
net = finetune(input=8, hidden=32, classes=3, ballast=20000, seed=7)
optimizer = sgd(net, lr=0.01)
criterion = cross_entropy()
avg = meter()
for epoch in range(6):
    avg.reset()
    for batch in loader.epoch():
        waste = busy(2)
        optimizer.zero_grad()
        preds = net.forward(batch)
        loss = criterion.forward(preds, batch)
        grad = criterion.backward()
        net.backward(grad)
        optimizer.step()
        avg.update(loss)
    log(\"loss\", avg.mean())
acc = evaluate(net, data)
log(\"accuracy\", acc)
";

    #[test]
    fn delta_chained_record_replays_bit_identically() {
        // Fine-tuning epochs drift checkpoints slightly, so record lands
        // most of them as delta frames; replay must restore through the
        // chains bit-for-bit and attribute the chain work in its stats.
        let root = tmproot("delta-chain");
        let rec = record(FINETUNE_SRC, &opts_exact(&root)).unwrap();
        let store = CheckpointStore::open_read_only(&root).unwrap();
        let s = store.stats();
        drop(store);
        assert!(
            s.delta_entries >= 3,
            "fine-tuning checkpoints should chain: {s:?}"
        );
        // Every weight still moves each epoch (the mantissa lanes stay
        // random), so the win here is real but bounded — unlike the
        // sparse-drift fixtures that reach multiples.
        assert!(s.stored_bytes * 10 < s.raw_bytes * 9, "{s:?}");
        let rep = replay(FINETUNE_SRC, &root, &ReplayOptions::default()).unwrap();
        assert!(rep.anomalies.is_empty(), "{:?}", rep.anomalies);
        assert_eq!(rep.log, rec.log);
        assert_eq!(rep.stats.restored, 6);
        assert!(
            rep.stats.delta_restores >= 3,
            "chain restores must be attributed: {:?}",
            rep.stats
        );
        assert!(rep.stats.chain_links >= rep.stats.delta_restores);
    }

    #[test]
    fn outer_probe_skips_all_inner_loops() {
        let root = tmproot("outer");
        let rec = record(TRAIN_SRC, &opts_exact(&root)).unwrap();
        let rep = replay(&outer_probed(), &root, &ReplayOptions::default()).unwrap();
        assert!(rep.anomalies.is_empty(), "{:?}", rep.anomalies);
        assert_eq!(rep.probes.len(), 1);
        assert_eq!(rep.probes[0].skipblock_id, None, "outer probe");
        // Partial replay: every training loop restored.
        assert_eq!(rep.stats.restored, 6);
        assert_eq!(rep.stats.executed, 0);
        // The probe produced one value per epoch.
        let hindsight = rep.hindsight_entries(&rec.log);
        assert_eq!(hindsight.len(), 6);
        assert!(hindsight.iter().all(|e| e.key == "hindsight_wnorm"));
    }

    #[test]
    fn inner_probe_reexecutes_training_loops() {
        let root = tmproot("inner");
        let rec = record(TRAIN_SRC, &opts_exact(&root)).unwrap();
        let rep = replay(&inner_probed(), &root, &ReplayOptions::default()).unwrap();
        assert!(rep.anomalies.is_empty(), "{:?}", rep.anomalies);
        assert_eq!(rep.probes.len(), 1);
        assert_eq!(rep.probes[0].skipblock_id.as_deref(), Some("sb_0"));
        // Probed blocks re-execute.
        assert_eq!(rep.stats.executed, 6);
        assert_eq!(rep.stats.restored, 0);
        // 3 batches per epoch × 6 epochs of grad-norm probes.
        let hindsight = rep.hindsight_entries(&rec.log);
        assert_eq!(hindsight.len(), 18);
    }

    #[test]
    fn inner_probe_replay_reproduces_recorded_fingerprint() {
        // Re-executed loops must produce bit-identical losses.
        let root = tmproot("fingerprint");
        let rec = record(TRAIN_SRC, &opts_exact(&root)).unwrap();
        let rep = replay(&inner_probed(), &root, &ReplayOptions::default()).unwrap();
        let rec_losses: Vec<_> = rec.log.iter().filter(|e| e.key == "loss").collect();
        let rep_losses: Vec<_> = rep.log.iter().filter(|e| e.key == "loss").collect();
        assert_eq!(rec_losses, rep_losses);
    }

    #[test]
    fn stealing_replay_merges_to_identical_log() {
        // The cost-aware work-stealing executor must produce the exact
        // sequential log for every worker count and both probe positions.
        let root = tmproot("steal");
        record(TRAIN_SRC, &opts_exact(&root)).unwrap();
        for probed in [inner_probed(), outer_probed()] {
            let seq = replay(&probed, &root, &ReplayOptions::default()).unwrap();
            for workers in [2usize, 3, 4, 8] {
                let par = replay(&probed, &root, &ReplayOptions::with_stealing(workers)).unwrap();
                assert!(
                    par.anomalies.is_empty(),
                    "{workers} workers: {:?}",
                    par.anomalies
                );
                assert_eq!(par.log, seq.log, "{workers}-worker stealing merge");
                assert!(par.stats.ranges_executed >= 1);
            }
        }
    }

    #[test]
    fn stealing_weak_init_matches_strong() {
        let root = tmproot("steal-weak");
        record(TRAIN_SRC, &opts_exact(&root)).unwrap();
        let strong = replay(&inner_probed(), &root, &ReplayOptions::with_stealing(3)).unwrap();
        let weak = replay(
            &inner_probed(),
            &root,
            &ReplayOptions {
                workers: 3,
                init_mode: InitMode::Weak,
                steal: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(weak.anomalies.is_empty(), "{:?}", weak.anomalies);
        assert_eq!(weak.log, strong.log);
    }

    #[test]
    fn stealing_poisoned_reuse_matches_static() {
        // Non-hindsight edits poison checkpoint reuse; the stealing
        // executor must full-re-execute to the same log the static one
        // does, and still surface the poisoning anomaly.
        let root = tmproot("steal-poison");
        record(TRAIN_SRC, &opts_exact(&root)).unwrap();
        let edited = TRAIN_SRC.replace("lr=0.1", "lr=0.05");
        let stat = replay(&edited, &root, &ReplayOptions::with_workers(3)).unwrap();
        let steal = replay(&edited, &root, &ReplayOptions::with_stealing(3)).unwrap();
        assert_eq!(steal.log, stat.log);
        assert!(!steal.anomalies.is_empty(), "poisoning must be surfaced");
        assert!(
            steal.anomalies[0].contains("source changed"),
            "{:?}",
            steal.anomalies
        );
        assert_eq!(steal.stats.restored, 0);
        // Weak init anchors on checkpoint restores, which poisoning
        // disables — replay must fall back to strong rolling
        // re-execution and still match, static or stealing.
        for steal_on in [false, true] {
            let weak = replay(
                &edited,
                &root,
                &ReplayOptions {
                    workers: 3,
                    init_mode: InitMode::Weak,
                    steal: steal_on,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(weak.log, stat.log, "weak+poisoned steal={steal_on}");
            assert_eq!(weak.stats.restored, 0);
        }
    }

    #[test]
    fn record_persists_cost_profile_artifact() {
        let root = tmproot("profile-artifact");
        record(TRAIN_SRC, &opts_exact(&root)).unwrap();
        let store = CheckpointStore::open(&root).unwrap();
        let text = String::from_utf8(
            store
                .get_artifact(crate::profile::COST_PROFILE_ARTIFACT)
                .unwrap(),
        )
        .unwrap();
        let profile = crate::profile::CostProfile::parse_text(&text).unwrap();
        assert_eq!(profile.len(), 6, "one entry per epoch");
        for it in &profile.iters {
            assert!(it.compute_ns > 0);
            assert!(
                it.fully_checkpointed(),
                "adaptivity off → every epoch checkpointed"
            );
        }
    }

    #[test]
    fn streaming_replay_delivers_entries_and_progress() {
        let root = tmproot("streaming");
        record(TRAIN_SRC, &opts_exact(&root)).unwrap();
        let store = Arc::new(CheckpointStore::open(&root).unwrap());
        let mut streamed: Vec<LogEntry> = Vec::new();
        let mut progress_seen = 0u64;
        let mut last_total = 0u64;
        let report = replay_streaming(
            &inner_probed(),
            store,
            &ReplayOptions::with_stealing(3),
            |ev| match ev {
                crate::stream::StreamEvent::Entries(chunk) => {
                    streamed.extend(chunk.iter().cloned())
                }
                crate::stream::StreamEvent::Progress {
                    iterations_done,
                    iterations_total,
                    ..
                } => {
                    progress_seen += 1;
                    assert!(iterations_done <= iterations_total.max(iterations_done));
                    last_total = iterations_total;
                }
                crate::stream::StreamEvent::Anomaly(a) => panic!("unexpected anomaly: {a}"),
            },
        )
        .unwrap();
        assert_eq!(
            streamed, report.log,
            "streamed chunks concatenate to the final log"
        );
        assert!(progress_seen >= 1, "at least one progress event per range");
        assert_eq!(last_total, 6);
        assert!(report.stats.stream_first_entry_ns > 0);
        assert!(
            report.stats.stream_first_entry_ns <= report.wall_ns,
            "first entry must not be after the replay finished"
        );
    }

    #[test]
    fn parallel_replay_merges_to_identical_log() {
        let root = tmproot("parallel");
        record(TRAIN_SRC, &opts_exact(&root)).unwrap();
        let seq = replay(&inner_probed(), &root, &ReplayOptions::default()).unwrap();
        for workers in [2usize, 3, 4] {
            let par = replay(
                &inner_probed(),
                &root,
                &ReplayOptions::with_workers(workers),
            )
            .unwrap();
            assert!(
                par.anomalies.is_empty(),
                "{workers} workers: {:?}",
                par.anomalies
            );
            assert_eq!(
                par.log, seq.log,
                "{workers}-worker merge must equal sequential replay"
            );
        }
    }

    #[test]
    fn parallel_plans_partition_the_epochs() {
        let root = tmproot("plans");
        record(TRAIN_SRC, &opts_exact(&root)).unwrap();
        let rep = replay(&inner_probed(), &root, &ReplayOptions::with_workers(3)).unwrap();
        let mut covered: Vec<u64> = rep
            .worker_plans
            .iter()
            .flatten()
            .flat_map(|p| p.work_iters())
            .collect();
        covered.sort_unstable();
        assert_eq!(covered, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn weak_init_matches_strong_init() {
        let root = tmproot("weak");
        record(TRAIN_SRC, &opts_exact(&root)).unwrap();
        let strong = replay(&inner_probed(), &root, &ReplayOptions::with_workers(3)).unwrap();
        let weak = replay(
            &inner_probed(),
            &root,
            &ReplayOptions {
                workers: 3,
                init_mode: InitMode::Weak,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(weak.anomalies.is_empty(), "{:?}", weak.anomalies);
        assert_eq!(weak.log, strong.log);
    }

    #[test]
    fn non_hindsight_change_forces_full_reexecution() {
        let root = tmproot("poison");
        record(TRAIN_SRC, &opts_exact(&root)).unwrap();
        let edited = TRAIN_SRC.replace("lr=0.1", "lr=0.05");
        let rep = replay(&edited, &root, &ReplayOptions::default()).unwrap();
        assert!(!rep.other_changes.is_empty());
        assert!(!rep.anomalies.is_empty(), "change must be surfaced");
        // No checkpoint reuse…
        assert_eq!(rep.stats.restored, 0);
        assert_eq!(rep.stats.executed, 6);
    }

    #[test]
    fn corrupted_checkpoint_surfaces_as_error_or_anomaly() {
        let root = tmproot("corrupt");
        record(TRAIN_SRC, &opts_exact(&root)).unwrap();
        // Corrupt the middle half of every checkpoint segment on disk:
        // several epochs' payloads are guaranteed to be hit.
        for entry in std::fs::read_dir(root.join("seg")).unwrap() {
            let path = entry.unwrap().path();
            let mut bytes = std::fs::read(&path).unwrap();
            let n = bytes.len();
            for b in &mut bytes[n / 4..3 * n / 4] {
                *b ^= 0xff;
            }
            std::fs::write(&path, &bytes).unwrap();
        }
        // Restoring it must error loudly (CRC), not silently diverge.
        let result = replay(TRAIN_SRC, &root, &ReplayOptions::default());
        assert!(result.is_err(), "corrupt checkpoint must not restore");
    }

    #[test]
    fn deferred_check_semantics() {
        use Section::*;
        let rec = vec![
            LogEntry {
                key: "loss".into(),
                value: "0.5".into(),
                section: Iter(0),
            },
            LogEntry {
                key: "loss".into(),
                value: "0.4".into(),
                section: Iter(1),
            },
            LogEntry {
                key: "skipped".into(),
                value: "x".into(),
                section: Iter(0),
            },
        ];
        // Replay skipped "skipped", re-produced loss@0, added a probe.
        let rep_ok = vec![
            LogEntry {
                key: "loss".into(),
                value: "0.5".into(),
                section: Iter(0),
            },
            LogEntry {
                key: "loss".into(),
                value: "0.4".into(),
                section: Iter(1),
            },
            LogEntry {
                key: "probe".into(),
                value: "p".into(),
                section: Iter(0),
            },
        ];
        assert!(deferred_check(&rec, &rep_ok).is_empty());
        // Divergent value → anomaly.
        let rep_bad = vec![LogEntry {
            key: "loss".into(),
            value: "0.9".into(),
            section: Iter(0),
        }];
        let anomalies = deferred_check(&rec, &rep_bad);
        assert_eq!(anomalies.len(), 1);
        assert!(anomalies[0].contains("loss"));
    }
}
