//! Runtime values and the ML object graph.
//!
//! FlorScript has Python reference semantics: objects ([`Obj`]) live behind
//! `Rc<RefCell<…>>`, so `optimizer = sgd(net, …)` makes the optimizer hold
//! the *same* model the variable `net` names. That aliasing is what makes
//! the paper's changeset augmentation load-bearing: `optimizer.step()`
//! really does mutate `net` through the shared reference (§5.2.1).
//!
//! Every value knows how to lower itself to a checkpointable [`CVal`]
//! (`snapshot`) and how to restore from one (`restore`). Restoration is
//! *in-place* for objects: replay re-executes the script preamble, so the
//! objects already exist with the right architecture and aliases; loading a
//! checkpoint only overwrites their state — exactly the paper's "applying
//! the side-effects to the program state".

use crate::error::{rt, FlorError};
use flor_chkpt::{ByteSource, BytesMut, CVal};
use flor_ml::metrics::Meter;
use flor_ml::swa::SwaAverager;
use flor_ml::{
    CrossEntropyLoss, DataLoader, Optimizer, Scheduler, Sequential, StateDict,
    SyntheticClassification, SyntheticTokens,
};
use flor_tensor::Tensor;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Zero-copy tensor payload handle: holds the tensor's refcounted slab
/// (an `Arc` bump to create) and produces the `Tensor::to_bytes` encoding
/// only when the background materializer encodes the checkpoint. This is
/// what makes `snapshot()` O(#objects) on the training thread instead of
/// O(bytes) — the fork()-style handoff of the paper's Figure 5.
struct TensorPayload(Tensor);

impl ByteSource for TensorPayload {
    fn len(&self) -> usize {
        self.0.payload_len()
    }
    fn write_to(&self, buf: &mut BytesMut) {
        self.0.write_payload(buf);
    }
}

/// Lowers a tensor to a deferred checkpoint leaf without copying its slab.
fn tensor_cval(t: &Tensor) -> CVal {
    CVal::lazy(TensorPayload(t.clone()))
}

/// A FlorScript runtime value.
#[derive(Clone)]
pub enum Value {
    /// `None`.
    None,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// Tensor (immutable value semantics).
    Tensor(Tensor),
    /// List (reference semantics, like Python).
    List(Rc<RefCell<Vec<Value>>>),
    /// Tuple (value semantics).
    Tuple(Vec<Value>),
    /// Heap object (model, optimizer, loader, …) with reference semantics.
    Obj(Rc<RefCell<Obj>>),
}

impl Value {
    /// Wraps an object.
    pub fn obj(o: Obj) -> Value {
        Value::Obj(Rc::new(RefCell::new(o)))
    }

    /// Builds a list value.
    pub fn list(items: Vec<Value>) -> Value {
        Value::List(Rc::new(RefCell::new(items)))
    }

    /// Truthiness, Python style.
    pub fn truthy(&self) -> bool {
        match self {
            Value::None => false,
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(x) => *x != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::Tensor(t) => t.numel() > 0,
            Value::List(l) => !l.borrow().is_empty(),
            Value::Tuple(t) => !t.is_empty(),
            Value::Obj(_) => true,
        }
    }

    /// Numeric view (ints widen to floats).
    pub fn as_f64(&self) -> Result<f64, FlorError> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(x) => Ok(*x),
            Value::Bool(b) => Ok(*b as i64 as f64),
            other => Err(rt(format!("expected a number, found {}", other.kind()))),
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Result<i64, FlorError> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Bool(b) => Ok(*b as i64),
            other => Err(rt(format!("expected an integer, found {}", other.kind()))),
        }
    }

    /// Short type name for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::None => "None",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::Tensor(_) => "tensor",
            Value::List(_) => "list",
            Value::Tuple(_) => "tuple",
            Value::Obj(o) => o.borrow().kind(),
        }
    }

    /// Canonical display form — used by the log stream, so it must be
    /// deterministic. Floats use Rust's shortest-roundtrip formatting.
    pub fn display(&self) -> String {
        match self {
            Value::None => "None".into(),
            Value::Bool(true) => "True".into(),
            Value::Bool(false) => "False".into(),
            Value::Int(i) => i.to_string(),
            Value::Float(x) => format!("{x}"),
            Value::Str(s) => s.clone(),
            Value::Tensor(t) => format!("tensor{} norm={}", t.shape(), t.norm()),
            Value::List(l) => {
                let items: Vec<String> = l.borrow().iter().map(Value::display).collect();
                format!("[{}]", items.join(", "))
            }
            Value::Tuple(t) => {
                let items: Vec<String> = t.iter().map(Value::display).collect();
                format!("({})", items.join(", "))
            }
            Value::Obj(o) => o.borrow().display(),
        }
    }

    /// Cheap estimate (no cloning) of the snapshot's byte size — the input
    /// to adaptive checkpointing's pre-materialization cost prediction.
    pub fn estimate_snapshot_bytes(&self) -> usize {
        match self {
            Value::None | Value::Bool(_) => 8,
            Value::Int(_) | Value::Float(_) => 16,
            Value::Str(s) => s.len() + 16,
            Value::Tensor(t) => t.numel() * 4 + 32,
            Value::List(items) => {
                items
                    .borrow()
                    .iter()
                    .map(Value::estimate_snapshot_bytes)
                    .sum::<usize>()
                    + 16
            }
            Value::Tuple(items) => {
                items
                    .iter()
                    .map(Value::estimate_snapshot_bytes)
                    .sum::<usize>()
                    + 16
            }
            Value::Obj(o) => match &*o.borrow() {
                Obj::Model(m) => m.numel() * 4 + 64,
                Obj::Optim { inner, .. } => inner.state_numel() * 4 + 64,
                Obj::Sched { .. } => 64,
                Obj::Dataset(_) => 16,
                Obj::Loader { .. } => 48,
                Obj::Loss(_) => 16,
                Obj::Swa(s) => s.average().map(|sd| sd.numel() * 4).unwrap_or(0) + 32,
                Obj::Meter(_) => 32,
                Obj::Batch(b) => b.x.numel() * 4 + b.y.len() * 8 + 32,
            },
        }
    }

    /// Lowers the value to a checkpointable tree.
    pub fn snapshot(&self) -> Result<CVal, FlorError> {
        Ok(match self {
            Value::None => CVal::map(vec![("t", CVal::Str("none".into()))]),
            Value::Bool(b) => {
                CVal::map(vec![("t", CVal::Str("bool".into())), ("v", CVal::Bool(*b))])
            }
            Value::Int(i) => CVal::map(vec![("t", CVal::Str("int".into())), ("v", CVal::I64(*i))]),
            Value::Float(x) => {
                CVal::map(vec![("t", CVal::Str("float".into())), ("v", CVal::F64(*x))])
            }
            Value::Str(s) => CVal::map(vec![
                ("t", CVal::Str("str".into())),
                ("v", CVal::Str(s.clone())),
            ]),
            Value::Tensor(t) => CVal::map(vec![
                ("t", CVal::Str("tensor".into())),
                ("v", tensor_cval(t)),
            ]),
            Value::List(items) => CVal::map(vec![
                ("t", CVal::Str("list".into())),
                (
                    "v",
                    CVal::List(
                        items
                            .borrow()
                            .iter()
                            .map(Value::snapshot)
                            .collect::<Result<_, _>>()?,
                    ),
                ),
            ]),
            Value::Tuple(items) => CVal::map(vec![
                ("t", CVal::Str("tuple".into())),
                (
                    "v",
                    CVal::List(
                        items
                            .iter()
                            .map(Value::snapshot)
                            .collect::<Result<_, _>>()?,
                    ),
                ),
            ]),
            Value::Obj(o) => {
                let obj = o.borrow();
                CVal::map(vec![
                    ("t", CVal::Str("obj".into())),
                    ("kind", CVal::Str(obj.kind().into())),
                    ("v", obj.snapshot()?),
                ])
            }
        })
    }

    /// Rebuilds a *plain* value from a snapshot, or — for object snapshots —
    /// restores in place into `existing` (which must be an aliasing-correct
    /// object created by re-executing the preamble).
    pub fn restore(cval: &CVal, existing: Option<&Value>) -> Result<Value, FlorError> {
        let tag = match cval.get("t") {
            Some(CVal::Str(s)) => s.as_str(),
            _ => return Err(rt("malformed value snapshot: missing tag")),
        };
        let v = cval.get("v");
        Ok(match tag {
            "none" => Value::None,
            "bool" => match v {
                Some(CVal::Bool(b)) => Value::Bool(*b),
                _ => return Err(rt("malformed bool snapshot")),
            },
            "int" => match v {
                Some(CVal::I64(i)) => Value::Int(*i),
                _ => return Err(rt("malformed int snapshot")),
            },
            "float" => match v {
                Some(CVal::F64(x)) => Value::Float(*x),
                _ => return Err(rt("malformed float snapshot")),
            },
            "str" => match v {
                Some(CVal::Str(s)) => Value::Str(s.clone()),
                _ => return Err(rt("malformed str snapshot")),
            },
            "tensor" => match v.and_then(CVal::as_bytes) {
                Some(b) => Value::Tensor(
                    Tensor::from_bytes(b.as_ref()).ok_or_else(|| rt("corrupt tensor snapshot"))?,
                ),
                None => return Err(rt("malformed tensor snapshot")),
            },
            "list" => match v {
                Some(CVal::List(items)) => Value::list(
                    items
                        .iter()
                        .map(|i| Value::restore(i, None))
                        .collect::<Result<_, _>>()?,
                ),
                _ => return Err(rt("malformed list snapshot")),
            },
            "tuple" => match v {
                Some(CVal::List(items)) => Value::Tuple(
                    items
                        .iter()
                        .map(|i| Value::restore(i, None))
                        .collect::<Result<_, _>>()?,
                ),
                _ => return Err(rt("malformed tuple snapshot")),
            },
            "obj" => {
                let payload = v.ok_or_else(|| rt("malformed object snapshot"))?;
                match existing {
                    Some(Value::Obj(o)) => {
                        o.borrow_mut().restore(payload)?;
                        existing.unwrap().clone()
                    }
                    Some(other) => {
                        return Err(rt(format!(
                            "cannot restore object snapshot into a {}",
                            other.kind()
                        )))
                    }
                    None => {
                        // Self-contained object kinds can be rebuilt from
                        // their snapshot alone; aliased kinds (model,
                        // optimizer, scheduler, loader) need the preamble to
                        // have re-created them with the right references.
                        let kind = match cval.get("kind") {
                            Some(CVal::Str(k)) => k.as_str(),
                            _ => return Err(rt("object snapshot missing kind")),
                        };
                        let mut obj = match kind {
                            "batch" => Obj::Batch(Batch {
                                x: Tensor::zeros([0]),
                                y: Vec::new(),
                            }),
                            "meter" => Obj::Meter(Meter::new()),
                            "loss" => Obj::Loss(CrossEntropyLoss::new()),
                            "swa" => Obj::Swa(SwaAverager::new()),
                            other => {
                                return Err(rt(format!(
                                    "cannot restore a {other} without an existing object \
                                     (aliased kinds are re-created by re-executing the preamble)"
                                )))
                            }
                        };
                        obj.restore(payload)?;
                        Value::obj(obj)
                    }
                }
            }
            other => return Err(rt(format!("unknown snapshot tag {other:?}"))),
        })
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display())
    }
}

/// A mini-batch: features plus integer targets.
#[derive(Clone)]
pub struct Batch {
    /// Features `[batch, …]` (or token ids for text models).
    pub x: Tensor,
    /// Target classes.
    pub y: Vec<usize>,
}

/// The dataset variants scripts can build.
pub enum DatasetObj {
    /// Gaussian-mixture classification features.
    Classification(SyntheticClassification),
    /// Token-sequence classification.
    Tokens(SyntheticTokens),
}

impl DatasetObj {
    /// Number of examples.
    pub fn len(&self) -> usize {
        match self {
            DatasetObj::Classification(d) => d.len(),
            DatasetObj::Tokens(d) => d.len(),
        }
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes the examples at `indices`.
    pub fn gather(&self, indices: &[usize]) -> Batch {
        let (x, y) = match self {
            DatasetObj::Classification(d) => d.gather(indices),
            DatasetObj::Tokens(d) => d.gather(indices),
        };
        Batch { x, y }
    }
}

/// Heap objects: the ML library surface bound into the interpreter.
pub enum Obj {
    /// A neural network.
    Model(Sequential),
    /// An optimizer; holds a *reference* to its model (the aliasing edge the
    /// changeset augmentation follows).
    Optim {
        /// The optimizer implementation.
        inner: Box<dyn Optimizer>,
        /// The model this optimizer mutates.
        model: Rc<RefCell<Obj>>,
    },
    /// A learning-rate scheduler; holds a reference to its optimizer.
    Sched {
        /// The schedule implementation.
        inner: Box<dyn Scheduler>,
        /// The optimizer this scheduler mutates.
        optimizer: Rc<RefCell<Obj>>,
    },
    /// A dataset (immutable after construction — snapshot is empty).
    Dataset(DatasetObj),
    /// A shuffling data loader over a dataset; its RNG words are state.
    Loader {
        /// Batching/shuffling machinery.
        inner: DataLoader,
        /// The dataset batches are gathered from.
        dataset: Rc<RefCell<Obj>>,
    },
    /// Cross-entropy criterion (transient caches only — snapshot is empty).
    Loss(CrossEntropyLoss),
    /// Stochastic weight averaging state.
    Swa(SwaAverager),
    /// Running-average meter.
    Meter(Meter),
    /// A mini-batch (loop-scoped in practice).
    Batch(Batch),
}

impl Obj {
    /// Short kind name (used in snapshots and diagnostics).
    pub fn kind(&self) -> &'static str {
        match self {
            Obj::Model(_) => "model",
            Obj::Optim { .. } => "optimizer",
            Obj::Sched { .. } => "scheduler",
            Obj::Dataset(_) => "dataset",
            Obj::Loader { .. } => "loader",
            Obj::Loss(_) => "loss",
            Obj::Swa(_) => "swa",
            Obj::Meter(_) => "meter",
            Obj::Batch(_) => "batch",
        }
    }

    fn display(&self) -> String {
        match self {
            Obj::Model(m) => format!("<model {} params={}>", m.name(), m.numel()),
            Obj::Optim { inner, .. } => format!("<optimizer lr={}>", inner.lr()),
            Obj::Sched { inner, .. } => format!("<scheduler lr={}>", inner.current_lr()),
            Obj::Dataset(d) => format!("<dataset n={}>", d.len()),
            Obj::Loader { inner, .. } => {
                format!("<loader batches={}>", inner.batches_per_epoch())
            }
            Obj::Loss(_) => "<cross_entropy>".into(),
            Obj::Swa(s) => format!("<swa count={}>", s.count()),
            Obj::Meter(m) => format!("<meter mean={}>", m.mean()),
            Obj::Batch(b) => format!("<batch size={}>", b.y.len()),
        }
    }

    /// Serializes the object's mutable state.
    pub fn snapshot(&self) -> Result<CVal, FlorError> {
        Ok(match self {
            Obj::Model(m) => state_dict_to_cval(&m.state_dict()),
            Obj::Optim { inner, .. } => state_dict_to_cval(&inner.state_dict()),
            Obj::Sched { inner, .. } => state_dict_to_cval(&inner.state_dict()),
            Obj::Dataset(_) => CVal::Unit, // deterministic, reconstructed by preamble
            Obj::Loader { inner, .. } => {
                let (s, i) = inner.rng_state();
                CVal::map(vec![
                    ("rng_state", CVal::I64(s as i64)),
                    ("rng_inc", CVal::I64(i as i64)),
                ])
            }
            Obj::Loss(_) => CVal::Unit, // per-step caches never cross a block boundary
            Obj::Swa(s) => {
                let avg = match s.average() {
                    Some(sd) => state_dict_to_cval(sd),
                    None => CVal::Unit,
                };
                CVal::map(vec![("count", CVal::I64(s.count() as i64)), ("avg", avg)])
            }
            Obj::Meter(m) => CVal::map(vec![
                ("mean", CVal::F64(m.mean() as f64)),
                ("count", CVal::I64(m.count() as i64)),
            ]),
            Obj::Batch(b) => CVal::map(vec![
                ("x", tensor_cval(&b.x)),
                (
                    "y",
                    CVal::List(b.y.iter().map(|&c| CVal::I64(c as i64)).collect()),
                ),
            ]),
        })
    }

    /// Restores the object's mutable state in place.
    pub fn restore(&mut self, cval: &CVal) -> Result<(), FlorError> {
        match self {
            Obj::Model(m) => m.load_state_dict(&cval_to_state_dict(cval)?),
            Obj::Optim { inner, .. } => inner.load_state_dict(&cval_to_state_dict(cval)?),
            Obj::Sched { inner, .. } => inner.load_state_dict(&cval_to_state_dict(cval)?),
            Obj::Dataset(_) => {}
            Obj::Loader { inner, .. } => {
                let s = cval
                    .get("rng_state")
                    .and_then(|v| match v {
                        CVal::I64(i) => Some(*i as u64),
                        _ => None,
                    })
                    .ok_or_else(|| rt("malformed loader snapshot"))?;
                let i = cval
                    .get("rng_inc")
                    .and_then(|v| match v {
                        CVal::I64(i) => Some(*i as u64),
                        _ => None,
                    })
                    .ok_or_else(|| rt("malformed loader snapshot"))?;
                inner.restore_rng(s, i);
            }
            Obj::Loss(_) => {}
            Obj::Swa(s) => {
                let count = match cval.get("count") {
                    Some(CVal::I64(c)) => *c as u32,
                    _ => return Err(rt("malformed swa snapshot")),
                };
                let avg = match cval.get("avg") {
                    Some(CVal::Unit) | None => None,
                    Some(m) => Some(cval_to_state_dict(m)?),
                };
                *s = SwaAverager::restore(count, avg);
            }
            Obj::Meter(m) => {
                let mean = match cval.get("mean") {
                    Some(CVal::F64(x)) => *x as f32,
                    _ => return Err(rt("malformed meter snapshot")),
                };
                let count = match cval.get("count") {
                    Some(CVal::I64(c)) => *c as u64,
                    _ => return Err(rt("malformed meter snapshot")),
                };
                *m = Meter::restore(mean, count);
            }
            Obj::Batch(b) => {
                let x = match cval.get("x").and_then(CVal::as_bytes) {
                    Some(bytes) => Tensor::from_bytes(bytes.as_ref())
                        .ok_or_else(|| rt("corrupt batch tensor"))?,
                    None => return Err(rt("malformed batch snapshot")),
                };
                let y = match cval.get("y") {
                    Some(CVal::List(items)) => items
                        .iter()
                        .map(|i| match i {
                            CVal::I64(c) => Ok(*c as usize),
                            _ => Err(rt("malformed batch targets")),
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                    _ => return Err(rt("malformed batch snapshot")),
                };
                *b = Batch { x, y };
            }
        }
        Ok(())
    }
}

/// StateDict → CVal map of tensor bytes.
pub fn state_dict_to_cval(sd: &StateDict) -> CVal {
    CVal::Map(
        sd.iter()
            .map(|(name, t)| (name.to_string(), tensor_cval(t)))
            .collect(),
    )
}

/// CVal map of tensor bytes → StateDict.
pub fn cval_to_state_dict(cval: &CVal) -> Result<StateDict, FlorError> {
    match cval {
        CVal::Map(pairs) => {
            let mut sd = StateDict::new();
            for (name, v) in pairs {
                match v.as_bytes() {
                    Some(b) => {
                        let t = Tensor::from_bytes(b.as_ref())
                            .ok_or_else(|| rt(format!("corrupt tensor for {name:?}")))?;
                        sd.insert(name.clone(), t);
                    }
                    None => return Err(rt(format!("non-tensor entry {name:?} in state dict"))),
                }
            }
            Ok(sd)
        }
        _ => Err(rt("state dict snapshot must be a map")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flor_ml::models::mlp;
    use flor_ml::Sgd;
    use flor_tensor::Pcg64;

    #[test]
    fn plain_value_snapshot_roundtrip() {
        for v in [
            Value::None,
            Value::Bool(true),
            Value::Int(-42),
            Value::Float(1.5),
            Value::Str("hello".into()),
            Value::Tensor(Tensor::from_slice(&[1.0, 2.0])),
            Value::Tuple(vec![Value::Int(1), Value::Str("a".into())]),
        ] {
            let snap = v.snapshot().unwrap();
            let back = Value::restore(&snap, None).unwrap();
            assert_eq!(v.display(), back.display());
        }
    }

    #[test]
    fn list_snapshot_roundtrip() {
        let v = Value::list(vec![Value::Int(1), Value::Float(2.5)]);
        let back = Value::restore(&v.snapshot().unwrap(), None).unwrap();
        assert_eq!(back.display(), "[1, 2.5]");
    }

    #[test]
    fn model_snapshot_restores_weights_in_place() {
        let mut rng = Pcg64::seeded(1);
        let m1 = mlp(4, 8, 2, 1, &mut rng);
        let v1 = Value::obj(Obj::Model(m1));
        let snap = v1.snapshot().unwrap();

        let mut rng2 = Pcg64::seeded(2);
        let m2 = mlp(4, 8, 2, 1, &mut rng2);
        let v2 = Value::obj(Obj::Model(m2));
        // Different seeds → different weights.
        assert_ne!(v1.snapshot().unwrap(), v2.snapshot().unwrap());

        let restored = Value::restore(&snap, Some(&v2)).unwrap();
        assert_eq!(restored.snapshot().unwrap(), snap);
        // Restoration is in place: v2 itself changed.
        assert_eq!(v2.snapshot().unwrap(), snap);
    }

    #[test]
    fn object_snapshot_without_existing_fails() {
        let mut rng = Pcg64::seeded(1);
        let v = Value::obj(Obj::Model(mlp(4, 8, 2, 1, &mut rng)));
        let snap = v.snapshot().unwrap();
        assert!(Value::restore(&snap, None).is_err());
    }

    #[test]
    fn optimizer_aliases_model() {
        let mut rng = Pcg64::seeded(3);
        let model_rc = Rc::new(RefCell::new(Obj::Model(mlp(4, 8, 2, 1, &mut rng))));
        let opt = Obj::Optim {
            inner: Box::new(Sgd::new(0.1, 0.0, 0.0)),
            model: model_rc.clone(),
        };
        // Mutating through the optimizer's reference is visible via the
        // original handle.
        if let Obj::Optim { model, .. } = &opt {
            if let Obj::Model(m) = &mut *model.borrow_mut() {
                m.visit_params_mut(&mut |p| p.value.map_inplace(|_| 9.0));
            }
        }
        let guard = model_rc.borrow();
        if let Obj::Model(m) = &*guard {
            let mut all_nine = true;
            m.visit_params(&mut |p| all_nine &= p.value.data().iter().all(|&x| x == 9.0));
            assert!(all_nine);
        }
    }

    #[test]
    fn loader_snapshot_restores_rng() {
        let rng = Pcg64::seeded(4);
        let data = SyntheticClassification::generate(20, 4, 2, 0.3, 7);
        let ds = Rc::new(RefCell::new(Obj::Dataset(DatasetObj::Classification(data))));
        let mut loader = Obj::Loader {
            inner: DataLoader::new(20, 4, 7),
            dataset: ds,
        };
        // Advance, snapshot, advance again, restore, re-advance.
        let _ = rng; // unused
        let (e1, snap, e2) = if let Obj::Loader { inner, .. } = &mut loader {
            let e1 = inner.next_epoch();
            let snap = loader.snapshot().unwrap();
            let (e2,) = if let Obj::Loader { inner, .. } = &mut loader {
                (inner.next_epoch(),)
            } else {
                unreachable!()
            };
            (e1, snap, e2)
        } else {
            unreachable!()
        };
        assert_ne!(e1, e2);
        loader.restore(&snap).unwrap();
        if let Obj::Loader { inner, .. } = &mut loader {
            assert_eq!(inner.next_epoch(), e2, "restored RNG must replay epoch 2");
        }
    }

    #[test]
    fn truthiness() {
        assert!(!Value::None.truthy());
        assert!(!Value::Int(0).truthy());
        assert!(Value::Int(1).truthy());
        assert!(!Value::Str(String::new()).truthy());
        assert!(Value::Str("x".into()).truthy());
    }

    #[test]
    fn display_is_deterministic() {
        let v = Value::Float(0.1 + 0.2);
        assert_eq!(v.display(), Value::Float(0.1 + 0.2).display());
    }
}
