//! The SkipBlock runtime — the paper's §4.2 language construct.
//!
//! A SkipBlock "always applies the side-effects of the enclosed loop to the
//! program state, but does so in one of two ways: (a) by executing the
//! enclosed loop, or (b) by skipping the loop and instead loading the
//! memoized side-effects from its materialized Loop End Checkpoint."
//!
//! Parameterized branching, by mode and phase:
//!
//! | Mode / phase | probed | checkpoint exists | action |
//! |---|---|---|---|
//! | Vanilla            | —   | —   | execute |
//! | Record             | —   | —   | execute, then maybe materialize (Eq. 4) |
//! | Replay / Init      | any | yes | **restore** (probe output belongs to other workers) |
//! | Replay / Init      | any | no  | execute (fills gaps left by periodic checkpointing) |
//! | Replay / Work      | yes | any | execute (memoization captures only final state, "not the intermediate states") |
//! | Replay / Work      | no  | yes | restore |
//! | Replay / Work      | no  | no  | execute |
//!
//! Non-hindsight source changes (`force_execute_all`) poison every
//! checkpoint: all blocks execute.

use crate::error::{rt, FlorError};
use crate::interp::{Interp, Mode, Phase};
use crate::oracle::EnvOracle;
use crate::value::Value;
use flor_analysis::augment_changeset;
use flor_chkpt::{encode, encode_into, BytesMut, CVal, Payload, SerializeSnapshot};
use flor_lang::ast::Stmt;
use std::sync::Arc;

/// Sequence-number base for SkipBlocks executed outside the main loop,
/// keeping them disjoint from main-loop iteration numbers.
const STANDALONE_BASE: u64 = 1 << 48;

/// A built checkpoint payload handed to the background materializer.
/// Building it is O(#objects) on the caller — tensor leaves are lazy
/// handles to refcounted slabs ([`flor_chkpt::LazyBytes`]), so no payload
/// bytes are copied on the training thread. Serialization (the tagged
/// encoding, including producing the tensor bytes) runs in the background
/// worker into a pooled buffer, mirroring the paper's fork() split.
pub struct CValSnapshot {
    cval: CVal,
    objects: usize,
}

impl CValSnapshot {
    /// Wraps a lowered value tree of `objects` logical objects.
    pub fn new(cval: CVal, objects: usize) -> Self {
        CValSnapshot { cval, objects }
    }
}

impl SerializeSnapshot for CValSnapshot {
    fn serialize(&self) -> Vec<u8> {
        encode(&self.cval)
    }
    fn serialize_into(&self, buf: &mut BytesMut) {
        encode_into(&self.cval, buf);
    }
    fn approx_bytes(&self) -> usize {
        self.cval.approx_bytes()
    }
    fn object_count(&self) -> usize {
        self.objects
    }
}

/// A skipblock body, abstracted over the executor (tree statements or a
/// compiled VM instruction range), mirroring `interp::LoopBody`.
pub(crate) enum BlockBody<'a> {
    /// Walk the AST statements.
    Tree(&'a [Stmt]),
    /// Execute a compiled instruction range on the VM.
    Vm {
        /// First instruction of the body.
        start: usize,
        /// One past the last instruction of the body.
        end: usize,
    },
}

fn exec_block_body(interp: &mut Interp, body: &BlockBody<'_>) -> Result<(), FlorError> {
    match body {
        BlockBody::Tree(b) => interp.exec_body(b),
        BlockBody::Vm { start, end } => interp.vm_run_range(*start, *end),
    }
}

/// Executes a `skipblock "id":` statement in the interpreter's current mode.
pub fn exec_skipblock(interp: &mut Interp, id: &str, body: &[Stmt]) -> Result<(), FlorError> {
    exec_skipblock_impl(interp, id, &BlockBody::Tree(body))
}

/// VM entry point: executes the skipblock whose compiled body is
/// `ops[start..end]` in the interpreter's current mode.
pub(crate) fn exec_skipblock_vm(
    interp: &mut Interp,
    id: &str,
    start: usize,
    end: usize,
) -> Result<(), FlorError> {
    exec_skipblock_impl(interp, id, &BlockBody::Vm { start, end })
}

fn exec_skipblock_impl(
    interp: &mut Interp,
    id: &str,
    body: &BlockBody<'_>,
) -> Result<(), FlorError> {
    match &interp.mode {
        Mode::Vanilla => exec_block_body(interp, body),
        Mode::Record(_) => exec_record(interp, id, body),
        Mode::Replay(_) => exec_replay(interp, id, body),
    }
}

/// Computes this execution's sequence number: the global main-loop
/// iteration when inside the main loop, a standalone counter otherwise.
fn next_seq(
    main_iter: Option<u64>,
    standalone: &mut std::collections::HashMap<String, u64>,
    blocks_this_iter: &mut std::collections::HashSet<String>,
    id: &str,
) -> Result<u64, FlorError> {
    match main_iter {
        Some(g) => {
            if !blocks_this_iter.insert(id.to_string()) {
                return Err(rt(format!(
                    "skipblock {id:?} executed more than once in main-loop iteration {g}; \
                     flor-rs supports at most one execution per epoch per block"
                )));
            }
            Ok(g)
        }
        None => {
            let counter = standalone.entry(id.to_string()).or_insert(0);
            let seq = STANDALONE_BASE + *counter;
            *counter += 1;
            Ok(seq)
        }
    }
}

fn exec_record(interp: &mut Interp, id: &str, body: &BlockBody<'_>) -> Result<(), FlorError> {
    let mut span = flor_obs::span(flor_obs::Category::Record, "record_block");
    // 1. Execute the enclosed loop, timing its compute (C_i).
    let t0 = flor_obs::clock::now_ns();
    exec_block_body(interp, body)?;
    let compute_ns = flor_obs::clock::since_ns(t0);
    flor_obs::histogram!("record.compute_ns").observe(compute_ns);

    let Mode::Record(ctx) = &mut interp.mode else {
        unreachable!("exec_record outside record mode")
    };
    let seq = next_seq(
        ctx.main_iter,
        &mut ctx.standalone_seq,
        &mut ctx.blocks_this_iter,
        id,
    )?;
    span.set_args(seq, compute_ns);

    // 2. Changeset: static analysis result, augmented at runtime with
    //    library knowledge over the live object graph (paper §5.2.1).
    //    With lean checkpointing disabled (ablation), every bound name is
    //    captured instead.
    let env = &interp.env;
    let augmented = if ctx.lean {
        let static_cs = ctx.static_changesets.get(id).cloned().unwrap_or_default();
        augment_changeset(&static_cs, &EnvOracle::new(env))
    } else {
        let mut names: Vec<String> = env.names().map(str::to_string).collect();
        names.sort_unstable();
        names
    };

    // 3. Predict the materialization cost from a cheap size estimate.
    let est_bytes: usize = augmented
        .iter()
        .filter_map(|name| env.try_get(name))
        .map(|v| v.estimate_snapshot_bytes())
        .sum();
    let est_m = ctx.controller.estimate_materialize_ns(id, est_bytes as u64);

    // 4. Joint invariant (Eq. 4): materialize only if it keeps both the
    //    record-overhead and replay-latency invariants.
    if ctx.controller.should_materialize(id, compute_ns, est_m) {
        let t1 = flor_obs::clock::now_ns();
        let mut pairs: Vec<(String, CVal)> = Vec::with_capacity(augmented.len());
        for name in &augmented {
            if let Some(v) = env.try_get(name) {
                pairs.push((name.clone(), v.snapshot()?));
            }
        }
        let objects = pairs.len();
        let payload = CValSnapshot::new(CVal::Map(pairs), objects);
        ctx.materializer
            .submit(id, seq, Payload::Deferred(Arc::new(payload)));
        // M_i observed: the caller-visible cost (snapshot build + submit).
        // The serialize+compress+write runs in the background, exactly the
        // cost the paper's fork() hides from the training thread.
        let main_ns = flor_obs::clock::since_ns(t1);
        ctx.controller
            .observe_materialize(id, main_ns.max(1), est_bytes as u64);
        // Auto-tune the store's compression effort from the same ε budget
        // that gates materialization: overhead well under budget buys
        // smaller checkpoints (higher effort); overhead over budget sheds
        // compression cost first, before the controller starts dropping
        // checkpoints outright. `set_compression_effort` is a no-op when
        // the level is unchanged.
        if ctx.controller.is_adaptive() {
            let overhead = ctx.controller.record_overhead();
            let eps = ctx.controller.epsilon();
            let effort = ctx.store.compression_effort();
            if overhead > eps && effort > flor_chkpt::compress::MIN_EFFORT {
                ctx.store.set_compression_effort(effort - 1);
            } else if overhead < 0.5 * eps && effort < flor_chkpt::compress::MAX_EFFORT {
                ctx.store.set_compression_effort(effort + 1);
            }
        }
        if let Some(g) = ctx.main_iter {
            ctx.profile.observe(g, compute_ns, Some(main_ns.max(1)));
        }
    } else if let Some(g) = ctx.main_iter {
        ctx.profile.observe(g, compute_ns, None);
    }
    Ok(())
}

fn exec_replay(interp: &mut Interp, id: &str, body: &BlockBody<'_>) -> Result<(), FlorError> {
    // Decide while holding the replay context.
    let (do_execute, seq) = {
        let Mode::Replay(ctx) = &mut interp.mode else {
            unreachable!("exec_replay outside replay mode")
        };
        let seq = next_seq(
            ctx.main_iter,
            &mut ctx.standalone_seq,
            &mut ctx.blocks_this_iter,
            id,
        )?;
        let exists = ctx.store.contains(id, seq);
        let probed = ctx.probed_blocks.contains(id);
        let do_execute = match ctx.phase {
            // Initialization: restore whenever possible; probes don't
            // matter (their output belongs to other workers' partitions).
            Phase::Init => ctx.force_execute_all || !exists,
            // Work: "Flor skips memoized code-blocks on replay, unless
            // their internals are probed" (Figure 1).
            Phase::Work => ctx.force_execute_all || probed || !exists,
        };
        (do_execute, seq)
    };

    if do_execute {
        // Re-executing a block during replay regenerates its log records —
        // hindsight logging's deferred record work, so cat = Record.
        let mut span = flor_obs::span(flor_obs::Category::Record, "exec_block");
        span.set_args(seq, 0);
        exec_block_body(interp, body)?;
        if let Mode::Replay(ctx) = &mut interp.mode {
            ctx.stats.executed += 1;
        }
        return Ok(());
    }

    // Restore the Loop End Checkpoint (physical recovery). The payload
    // arrives as a refcounted `Bytes` — ideally one the worker's
    // prefetcher already pulled while earlier iterations interpreted; a
    // prefetch miss falls through to a direct zero-copy store read.
    let mut span = flor_obs::span(flor_obs::Category::RestoreChain, "restore");
    span.set_args(seq, 0);
    let t0 = flor_obs::clock::now_ns();
    let payload_bytes = {
        let Mode::Replay(ctx) = &mut interp.mode else {
            unreachable!()
        };
        let fetch = flor_obs::span(flor_obs::Category::Prefetch, "payload_wait");
        let bytes = match ctx.prefetcher.as_ref().and_then(|p| p.take(id, seq)) {
            Some(bytes) => {
                ctx.stats.prefetch_hits += 1;
                bytes
            }
            None => {
                let bytes = ctx.store.get_bytes(id, seq)?;
                // We beat the prefetcher to this key: release/skip its
                // fetch so dead buffers can't exhaust the budget.
                if let Some(p) = &ctx.prefetcher {
                    p.mark_consumed(id, seq);
                }
                bytes
            }
        };
        drop(fetch);
        bytes
    };
    let cval = flor_chkpt::decode(payload_bytes.as_ref())?;
    let CVal::Map(pairs) = cval else {
        return Err(rt(format!(
            "checkpoint {id:?}.{seq} has a malformed payload"
        )));
    };
    // Restored names bind through the interpreter's name boundary: with
    // a VM frame live they land in the compiled module's slots (where
    // the instruction stream reads them); otherwise in the `Env`. Object
    // restores mutate in place through the `Rc`, so an allocation
    // aliased by both a slot and the env stays consistent either way.
    for (name, snap) in &pairs {
        let existing = interp.lookup_name(name);
        let restored = Value::restore(snap, existing)?;
        interp.bind_name(name, restored);
    }
    if let Mode::Replay(ctx) = &mut interp.mode {
        let restore_ns = flor_obs::clock::since_ns(t0);
        flor_obs::histogram!("replay.restore_ns").observe(restore_ns);
        ctx.stats.restored += 1;
        ctx.stats.restore_ns += restore_ns;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::AdaptiveController;
    use crate::interp::{RecordCtx, ReplayCtx, ReplayStats};
    use crate::parallel::InitMode;
    use flor_chkpt::{CheckpointStore, Materializer, Strategy};
    use flor_lang::parse;
    use std::collections::{HashMap, HashSet};
    use std::path::PathBuf;

    fn tmproot(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "flor-sb-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn record_ctx(store: Arc<CheckpointStore>, changesets: HashMap<String, Vec<String>>) -> Mode {
        Mode::Record(Box::new(RecordCtx {
            store: store.clone(),
            materializer: Materializer::new(store, Strategy::ForkBatched, 2),
            controller: AdaptiveController::default(),
            static_changesets: changesets,
            lean: true,
            main_iter: None,
            standalone_seq: HashMap::new(),
            blocks_this_iter: HashSet::new(),
            profile: crate::profile::ProfileBuilder::new(),
        }))
    }

    fn replay_ctx(store: Arc<CheckpointStore>, probed: &[&str]) -> Mode {
        Mode::Replay(Box::new(ReplayCtx {
            store,
            pid: 0,
            workers: 1,
            init_mode: InitMode::Strong,
            probed_blocks: probed.iter().map(|s| s.to_string()).collect(),
            force_execute_all: false,
            outer_carried: false,
            main_blocks: vec!["sb_0".into()],
            phase: Phase::Work,
            main_iter: None,
            standalone_seq: HashMap::new(),
            blocks_this_iter: HashSet::new(),
            stats: ReplayStats::default(),
            plan_used: None,
            sample: None,
            prefetcher: None,
            runtime: None,
            sink: None,
        }))
    }

    /// A standalone (non-main-loop) skipblock accumulating into `acc`.
    /// `busy(…)` keeps compute above checkpoint cost so the adaptive
    /// controller materializes deterministically.
    const SRC: &str = "\
acc = 0
skipblock \"sb_0\":
    for i in range(5):
        w = busy(1)
        acc = acc + i
log(\"acc\", acc)
";

    #[test]
    fn record_then_skip_on_replay() {
        let store = Arc::new(CheckpointStore::open(tmproot("basic")).unwrap());
        let prog = parse(SRC).unwrap();
        // Record: executes and checkpoints {acc}.
        let mut rec = Interp::new(record_ctx(
            store.clone(),
            HashMap::from([("sb_0".to_string(), vec!["acc".to_string()])]),
        ));
        rec.run(&prog).unwrap();
        assert_eq!(rec.env.get("acc").unwrap().as_i64().unwrap(), 10);
        assert!(store.contains("sb_0", STANDALONE_BASE));

        // Replay unprobed: block restores instead of executing.
        let mut rep = Interp::new(replay_ctx(store.clone(), &[]));
        rep.run(&prog).unwrap();
        assert_eq!(rep.env.get("acc").unwrap().as_i64().unwrap(), 10);
        if let Mode::Replay(ctx) = &rep.mode {
            assert_eq!(ctx.stats.restored, 1);
            assert_eq!(ctx.stats.executed, 0);
        }
        assert_eq!(rec.log.entries(), rep.log.entries());
    }

    #[test]
    fn probed_block_reexecutes() {
        let store = Arc::new(CheckpointStore::open(tmproot("probed")).unwrap());
        let prog = parse(SRC).unwrap();
        let mut rec = Interp::new(record_ctx(
            store.clone(),
            HashMap::from([("sb_0".to_string(), vec!["acc".to_string()])]),
        ));
        rec.run(&prog).unwrap();

        let mut rep = Interp::new(replay_ctx(store, &["sb_0"]));
        rep.run(&prog).unwrap();
        if let Mode::Replay(ctx) = &rep.mode {
            assert_eq!(ctx.stats.executed, 1, "probed blocks must re-execute");
            assert_eq!(ctx.stats.restored, 0);
        }
        assert_eq!(rep.env.get("acc").unwrap().as_i64().unwrap(), 10);
    }

    #[test]
    fn prefetched_restore_is_consumed_and_counted() {
        let store = Arc::new(CheckpointStore::open(tmproot("prefetch")).unwrap());
        let prog = parse(SRC).unwrap();
        let mut rec = Interp::new(record_ctx(
            store.clone(),
            HashMap::from([("sb_0".to_string(), vec!["acc".to_string()])]),
        ));
        rec.run(&prog).unwrap();

        let mut mode = replay_ctx(store.clone(), &[]);
        if let Mode::Replay(ctx) = &mut mode {
            let mut p = crate::prefetch::Prefetcher::spawn(
                store.clone(),
                vec![("sb_0".to_string(), STANDALONE_BASE)],
            );
            // Drain the schedule so the hit is deterministic.
            p.join();
            assert_eq!(p.fetched(), 1);
            ctx.prefetcher = Some(p);
        }
        let mut rep = Interp::new(mode);
        rep.run(&prog).unwrap();
        if let Mode::Replay(ctx) = &rep.mode {
            assert_eq!(ctx.stats.restored, 1);
            assert_eq!(
                ctx.stats.prefetch_hits, 1,
                "restore must consume the prefetch"
            );
        }
        assert_eq!(rep.env.get("acc").unwrap().as_i64().unwrap(), 10);
    }

    #[test]
    fn missing_checkpoint_falls_back_to_execution() {
        let store = Arc::new(CheckpointStore::open(tmproot("missing")).unwrap());
        let prog = parse(SRC).unwrap();
        // No record pass at all: replay must still produce correct state.
        let mut rep = Interp::new(replay_ctx(store, &[]));
        rep.run(&prog).unwrap();
        assert_eq!(rep.env.get("acc").unwrap().as_i64().unwrap(), 10);
        if let Mode::Replay(ctx) = &rep.mode {
            assert_eq!(ctx.stats.executed, 1);
        }
    }

    #[test]
    fn force_execute_all_ignores_checkpoints() {
        let store = Arc::new(CheckpointStore::open(tmproot("force")).unwrap());
        let prog = parse(SRC).unwrap();
        let mut rec = Interp::new(record_ctx(
            store.clone(),
            HashMap::from([("sb_0".to_string(), vec!["acc".to_string()])]),
        ));
        rec.run(&prog).unwrap();
        let mut mode = replay_ctx(store, &[]);
        if let Mode::Replay(ctx) = &mut mode {
            ctx.force_execute_all = true;
        }
        let mut rep = Interp::new(mode);
        rep.run(&prog).unwrap();
        if let Mode::Replay(ctx) = &rep.mode {
            assert_eq!(ctx.stats.executed, 1);
            assert_eq!(ctx.stats.restored, 0);
        }
    }

    #[test]
    fn vanilla_mode_is_transparent() {
        let prog = parse(SRC).unwrap();
        let mut interp = Interp::new(Mode::Vanilla);
        interp.run(&prog).unwrap();
        assert_eq!(interp.env.get("acc").unwrap().as_i64().unwrap(), 10);
    }

    #[test]
    fn standalone_seq_increments_across_executions() {
        let src = "\
acc = 0
for rep in range(3):
    skipblock \"sb_0\":
        for i in range(2):
            w = busy(1)
            acc = acc + 1
";
        // The outer loop is a plain loop (not the main partition loop), so
        // the block executes 3 times with standalone sequence numbers.
        let store = Arc::new(CheckpointStore::open(tmproot("seq")).unwrap());
        let prog = parse(src).unwrap();
        let mut rec = Interp::new(record_ctx(
            store.clone(),
            HashMap::from([("sb_0".to_string(), vec!["acc".to_string()])]),
        ));
        rec.run(&prog).unwrap();
        assert_eq!(store.count("sb_0"), 3);
        // Replay restores all three in order.
        let mut rep = Interp::new(replay_ctx(store, &[]));
        rep.run(&prog).unwrap();
        assert_eq!(rep.env.get("acc").unwrap().as_i64().unwrap(), 6);
        if let Mode::Replay(ctx) = &rep.mode {
            assert_eq!(ctx.stats.restored, 3);
        }
    }

    #[test]
    fn model_state_roundtrips_through_checkpoint() {
        let src = "\
data = synth_data(n=40, dim=4, classes=2, seed=3)
loader = dataloader(data, batch_size=10, seed=3)
net = mlp(input=4, hidden=8, classes=2, depth=1, seed=3)
optimizer = sgd(net, lr=0.1)
criterion = cross_entropy()
skipblock \"sb_0\":
    for batch in loader.epoch():
        waste = busy(1)
        optimizer.zero_grad()
        preds = net.forward(batch)
        loss = criterion.forward(preds, batch)
        grad = criterion.backward()
        net.backward(grad)
        optimizer.step()
w = net.weight_norm()
log(\"w\", w)
";
        let store = Arc::new(CheckpointStore::open(tmproot("model")).unwrap());
        let prog = parse(src).unwrap();
        let changesets = HashMap::from([(
            "sb_0".to_string(),
            vec![
                "loader".to_string(),
                "optimizer".to_string(),
                "net".to_string(),
                "criterion".to_string(),
            ],
        )]);
        let mut rec = Interp::new(record_ctx(store.clone(), changesets));
        rec.run(&prog).unwrap();

        let mut rep = Interp::new(replay_ctx(store, &[]));
        rep.run(&prog).unwrap();
        // The restored weight norm must match the recorded one bit-for-bit.
        assert_eq!(
            rec.env.get("w").unwrap().as_f64().unwrap(),
            rep.env.get("w").unwrap().as_f64().unwrap()
        );
        if let Mode::Replay(ctx) = &rep.mode {
            assert_eq!(ctx.stats.restored, 1);
        }
    }
}
