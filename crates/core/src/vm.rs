//! The bytecode replay VM.
//!
//! Executes [`flor_lang::compile::Module`]s — flat instruction streams
//! with a constant pool and slot-resolved variables — in place of the
//! tree-walking interpreter on the replay hot path. The tree-walker
//! stays available (`ReplayOptions.vm = false`) as the fallback and the
//! differential oracle: both executors route every value-level operation
//! through the same shared helpers in [`crate::interp`], so results and
//! error strings agree byte-for-byte.
//!
//! Execution model:
//!
//! - **One frame per run.** [`Interp::run_vm`] installs a [`VmFrame`]
//!   (materialized constant pool, `Vec<Option<Value>>` slots, operand
//!   stack, iterator frames) and dispatches `ops[0..]`. Variable access
//!   is a vector index — no `String` hashing in the inner loop.
//! - **Re-enterable ranges.** Skipblock and main-loop bodies are inlined
//!   instruction ranges; the work-stealing replay executor re-enters the
//!   VM at an iteration boundary via `vm_run_range`, with
//!   checkpoint-restored values bound into slots through the
//!   [`Interp::bind_name`] boundary.
//! - **`Env` at the boundary only.** Checkpoint restore/materialization
//!   and post-run inspection see names, not slots: restores write
//!   through `bind_name`, and a successful run flushes slots back into
//!   the `Env` so callers observe the same final state the tree-walker
//!   would leave.
//!
//! Compiled modules are cached in a [`ModuleCache`] keyed by
//! `source_version` (the same content address the registry's query cache
//! uses), so repeated hindsight queries over one source version skip
//! compilation entirely — `vm.compile` stays flat while
//! `vm.module_cache_hits` climbs.

use crate::error::{rt, FlorError};
use crate::interp::{
    bin_op_fast, bin_op_values, index_value, items_of, store_attr_value, store_index_value,
    unary_op_value, unpack_values, CallArgs, Interp, LoopBody, Mode,
};
use crate::skipblock;
use crate::value::Value;
use flor_lang::ast::{Program, UnaryOp};
use flor_lang::compile::{compile_sliced, Const, Module, Op, StmtPath};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, PoisonError};

/// One snapshot-iterating loop in flight (a plain `for`, not the
/// partitioned main loop).
#[derive(Debug)]
struct IterFrame {
    items: Vec<Value>,
    idx: usize,
}

/// Execution state of one VM run: the module being executed, its
/// materialized constant pool, variable slots, operand stack, and
/// iterator frames.
pub struct VmFrame {
    /// The compiled module (shared, immutable).
    pub module: Arc<Module>,
    consts: Vec<Value>,
    slots: Vec<Option<Value>>,
    stack: Vec<Value>,
    iters: Vec<IterFrame>,
    dispatched: u64,
}

/// Materializes a pool constant as a runtime value.
fn const_value(c: &Const) -> Value {
    match c {
        Const::Int(i) => Value::Int(*i),
        Const::Float(x) => Value::Float(*x),
        Const::Str(s) => Value::Str(s.clone()),
        Const::Bool(b) => Value::Bool(*b),
        Const::None => Value::None,
    }
}

/// Compiles a program to a shareable module, tracing the pass
/// (`compile` span) and counting it (`vm.compile`, `vm.compile_ns`).
pub fn compile_program(prog: &Program) -> Result<Arc<Module>, FlorError> {
    compile_program_sliced(prog, &HashSet::new())
}

/// Compiles a program with dead-statement elision: statements whose
/// paths are in `dead` (the slicer's output) lower to nothing. Elided
/// statement counts feed `vm.elided_ops`.
pub fn compile_program_sliced(
    prog: &Program,
    dead: &HashSet<StmtPath>,
) -> Result<Arc<Module>, FlorError> {
    let mut span = flor_obs::span(flor_obs::Category::Compile, "compile");
    let t0 = flor_obs::clock::now_ns();
    let (module, elided) = compile_sliced(prog, dead).map_err(|e| rt(e.to_string()))?;
    let ns = flor_obs::clock::since_ns(t0);
    flor_obs::counter!("vm.compile").inc();
    flor_obs::counter!("vm.compile_ns").add(ns);
    if elided > 0 {
        flor_obs::counter!("vm.elided_ops").add(u64::from(elided));
    }
    span.set_args(module.ops.len() as u64, module.slot_count() as u64);
    Ok(Arc::new(module))
}

/// Compiled-module cache keyed by `source_version` (the FNV content
/// address of the source text — the same key family the registry's
/// query cache uses). One entry per source version ever replayed; a hit
/// skips the compile pass entirely.
#[derive(Debug, Default)]
pub struct ModuleCache {
    modules: Mutex<HashMap<String, Arc<Module>>>,
}

impl ModuleCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached module for `source_version`, compiling and
    /// inserting on miss. Hits bump `vm.module_cache_hits`.
    pub fn get_or_compile(
        &self,
        source_version: &str,
        prog: &Program,
    ) -> Result<Arc<Module>, FlorError> {
        if let Some(m) = self
            .modules
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(source_version)
        {
            flor_obs::counter!("vm.module_cache_hits").inc();
            return Ok(m.clone());
        }
        let module = compile_program(prog)?;
        self.modules
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(source_version.to_string(), module.clone());
        Ok(module)
    }

    /// Sliced-compile variant of [`ModuleCache::get_or_compile`]. The
    /// caller keys by `source_version` *plus* the slice's content hash
    /// (`<version>+s<hash>`), so a full module and differently-sliced
    /// modules of the same source coexist.
    pub fn get_or_compile_sliced(
        &self,
        key: &str,
        prog: &Program,
        dead: &HashSet<StmtPath>,
    ) -> Result<Arc<Module>, FlorError> {
        if let Some(m) = self
            .modules
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(key)
        {
            flor_obs::counter!("vm.module_cache_hits").inc();
            return Ok(m.clone());
        }
        let module = compile_program_sliced(prog, dead)?;
        self.modules
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key.to_string(), module.clone());
        Ok(module)
    }

    /// Number of cached modules.
    pub fn len(&self) -> usize {
        self.modules
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when no module is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Interp {
    /// Executes a compiled module to completion on the VM.
    ///
    /// Semantically equivalent to [`Interp::run`] over the program the
    /// module was compiled from, for Vanilla and Replay modes. Record
    /// mode is rejected: materialization reads the environment by name
    /// mid-run, which is exactly the boundary the VM moves — recording
    /// always tree-walks.
    pub fn run_vm(&mut self, module: &Arc<Module>) -> Result<(), FlorError> {
        if matches!(self.mode, Mode::Record(_)) {
            return Err(rt(
                "the bytecode VM does not support record mode; record runs tree-walk",
            ));
        }
        let mut slots: Vec<Option<Value>> = vec![None; module.slot_count()];
        // Pre-seed slots from any pre-bound environment (direct
        // embedders); a fresh interpreter starts empty.
        for (i, name) in module.slot_names.iter().enumerate() {
            if let Some(v) = self.env.try_get(name) {
                slots[i] = Some(v.clone());
            }
        }
        self.vm = Some(Box::new(VmFrame {
            module: module.clone(),
            consts: module.consts.iter().map(const_value).collect(),
            slots,
            stack: Vec::with_capacity(16),
            iters: Vec::new(),
            dispatched: 0,
        }));
        let vanilla = matches!(self.mode, Mode::Vanilla);
        let t0 = flor_obs::clock::now_ns();
        let result = self.vm_run_range(0, module.ops.len());
        if vanilla {
            flor_obs::histogram!("vm.exec_ns").observe(flor_obs::clock::since_ns(t0));
        }
        let frame = self.vm.take().expect("vm frame still installed");
        flor_obs::counter!("vm.dispatch").add(frame.dispatched);
        if result.is_ok() {
            // Boundary flush: bound slots become env entries so callers
            // (replay drivers, tests, the native layer) observe the same
            // final state the tree-walker leaves behind.
            for (i, v) in frame.slots.into_iter().enumerate() {
                if let Some(v) = v {
                    self.env.set(frame.module.slot_names[i].clone(), v);
                }
            }
        }
        result
    }

    /// Binds a name through the executor boundary: into the live VM
    /// frame's slot when one exists for it, else into the `Env`.
    /// Checkpoint restore writes through here.
    pub(crate) fn bind_name(&mut self, name: &str, value: Value) {
        if let Some(frame) = self.vm.as_mut() {
            if let Some(&slot) = frame.module.slot_of.get(name) {
                frame.slots[slot as usize] = Some(value);
                return;
            }
        }
        self.env.set(name.to_string(), value);
    }

    /// Reads a name through the executor boundary (slot first, then
    /// `Env`). Checkpoint restore reads the existing value through here
    /// to restore objects in place.
    pub(crate) fn lookup_name(&self, name: &str) -> Option<&Value> {
        if let Some(frame) = self.vm.as_ref() {
            if let Some(&slot) = frame.module.slot_of.get(name) {
                return frame.slots[slot as usize].as_ref();
            }
        }
        self.env.try_get(name)
    }

    /// Writes the main-loop variable's slot (per-iteration binding).
    pub(crate) fn vm_set_slot(&mut self, slot: u16, value: Value) {
        let frame = self.vm.as_mut().expect("vm frame installed");
        frame.slots[slot as usize] = Some(value);
    }

    #[inline]
    fn vm_frame(&mut self) -> &mut VmFrame {
        self.vm.as_mut().expect("vm frame installed")
    }

    #[inline]
    fn vm_pop(&mut self) -> Value {
        self.vm_frame().stack.pop().expect("vm stack underflow")
    }

    #[inline]
    fn vm_push(&mut self, v: Value) {
        self.vm_frame().stack.push(v);
    }

    /// Pops the top `n` stack values, preserving push order.
    #[inline]
    fn vm_pop_n(&mut self, n: usize) -> Vec<Value> {
        let stack = &mut self.vm_frame().stack;
        stack.split_off(stack.len() - n)
    }

    /// Executes `ops[start..end)` of the installed frame's module. The
    /// unit of VM execution: a whole program, a skipblock body, or one
    /// main-loop iteration (which is how stolen ranges re-enter at an
    /// iteration boundary).
    pub(crate) fn vm_run_range(&mut self, start: usize, end: usize) -> Result<(), FlorError> {
        let module = self.vm_frame().module.clone();
        let mut dispatched = 0u64;
        let result = self.vm_dispatch(&module, start, end, &mut dispatched);
        self.vm_frame().dispatched += dispatched;
        result
    }

    fn vm_dispatch(
        &mut self,
        module: &Arc<Module>,
        start: usize,
        end: usize,
        dispatched: &mut u64,
    ) -> Result<(), FlorError> {
        let ops = &module.ops;
        let mut pc = start;
        while pc < end {
            // Tight tier: one frame borrow covers a run of pure stack ops.
            // Re-borrowing `self.vm` per operand (pop, push, pop…) is the
            // dominant dispatch cost at this op granularity, so every op
            // that only touches the frame works on `frame` directly. The
            // six ops that need `&mut self` — calls, attribute reads, the
            // main loop, skipblocks — break out and release the borrow;
            // error paths early-return, which releases it the same way.
            let deferred = 'tight: {
                let frame = self.vm.as_mut().expect("vm frame installed");
                while pc < end {
                    *dispatched += 1;
                    let op = ops[pc];
                    pc += 1;
                    match op {
                        Op::Const(i) => frame.stack.push(frame.consts[i as usize].clone()),
                        Op::LoadSlot(i) => match &frame.slots[i as usize] {
                            Some(v) => frame.stack.push(v.clone()),
                            None => return Err(unbound(module, i)),
                        },
                        Op::StoreSlot(i) => {
                            let v = frame.stack.pop().expect("vm stack underflow");
                            frame.slots[i as usize] = Some(v);
                        }
                        Op::LoadFlor => frame.stack.push(Value::Str("<module flor>".into())),
                        Op::MakeList(n) => {
                            let items = frame.stack.split_off(frame.stack.len() - n as usize);
                            frame.stack.push(Value::list(items));
                        }
                        Op::MakeTuple(n) => {
                            let items = frame.stack.split_off(frame.stack.len() - n as usize);
                            frame.stack.push(Value::Tuple(items));
                        }
                        Op::Neg => {
                            let v = frame.stack.pop().expect("vm stack underflow");
                            frame.stack.push(unary_op_value(UnaryOp::Neg, v)?);
                        }
                        Op::Not => {
                            let v = frame.stack.pop().expect("vm stack underflow");
                            frame.stack.push(unary_op_value(UnaryOp::Not, v)?);
                        }
                        Op::Bin(op) => {
                            let r = frame.stack.pop().expect("vm stack underflow");
                            let l = frame.stack.pop().expect("vm stack underflow");
                            frame.stack.push(bin_op_values(op, l, r)?);
                        }
                        // The fused binary ops evaluate by reference
                        // straight out of slots / the constant pool —
                        // `bin_op_fast` covers the numeric cases without
                        // a clone, and everything else falls back to the
                        // same `bin_op_values` the tree-walker uses.
                        Op::BinSS { op, a, b } => {
                            let l = match &frame.slots[a as usize] {
                                Some(v) => v,
                                None => return Err(unbound(module, a)),
                            };
                            let r = match &frame.slots[b as usize] {
                                Some(v) => v,
                                None => return Err(unbound(module, b)),
                            };
                            let v = match bin_op_fast(op, l, r) {
                                Some(v) => v,
                                None => bin_op_values(op, l.clone(), r.clone())?,
                            };
                            frame.stack.push(v);
                        }
                        Op::BinSC { op, a, c } => {
                            let l = match &frame.slots[a as usize] {
                                Some(v) => v,
                                None => return Err(unbound(module, a)),
                            };
                            let r = &frame.consts[c as usize];
                            let v = match bin_op_fast(op, l, r) {
                                Some(v) => v,
                                None => bin_op_values(op, l.clone(), r.clone())?,
                            };
                            frame.stack.push(v);
                        }
                        Op::BinCS { op, c, b } => {
                            let l = &frame.consts[c as usize];
                            let r = match &frame.slots[b as usize] {
                                Some(v) => v,
                                None => return Err(unbound(module, b)),
                            };
                            let v = match bin_op_fast(op, l, r) {
                                Some(v) => v,
                                None => bin_op_values(op, l.clone(), r.clone())?,
                            };
                            frame.stack.push(v);
                        }
                        Op::BinTS { op, b } => {
                            let r = match &frame.slots[b as usize] {
                                Some(v) => v,
                                None => return Err(unbound(module, b)),
                            };
                            let l = frame.stack.last().expect("vm stack underflow");
                            let v = match bin_op_fast(op, l, r) {
                                Some(v) => v,
                                None => {
                                    let r = r.clone();
                                    let l = frame.stack.pop().expect("vm stack underflow");
                                    frame.stack.push(bin_op_values(op, l, r)?);
                                    continue;
                                }
                            };
                            *frame.stack.last_mut().expect("vm stack underflow") = v;
                        }
                        Op::BinTC { op, c } => {
                            let r = &frame.consts[c as usize];
                            let l = frame.stack.last().expect("vm stack underflow");
                            let v = match bin_op_fast(op, l, r) {
                                Some(v) => v,
                                None => {
                                    let r = r.clone();
                                    let l = frame.stack.pop().expect("vm stack underflow");
                                    frame.stack.push(bin_op_values(op, l, r)?);
                                    continue;
                                }
                            };
                            *frame.stack.last_mut().expect("vm stack underflow") = v;
                        }
                        Op::Jump(t) => pc = t as usize,
                        Op::JumpIfFalse(t) => {
                            let v = frame.stack.pop().expect("vm stack underflow");
                            if !v.truthy() {
                                pc = t as usize;
                            }
                        }
                        Op::AndJump(t) => {
                            let top = frame.stack.last().expect("vm stack underflow");
                            if top.truthy() {
                                frame.stack.pop();
                            } else {
                                pc = t as usize;
                            }
                        }
                        Op::OrJump(t) => {
                            let top = frame.stack.last().expect("vm stack underflow");
                            if top.truthy() {
                                pc = t as usize;
                            } else {
                                frame.stack.pop();
                            }
                        }
                        Op::Pop => {
                            frame.stack.pop().expect("vm stack underflow");
                        }
                        Op::Index => {
                            let idx = frame.stack.pop().expect("vm stack underflow");
                            let recv = frame.stack.pop().expect("vm stack underflow");
                            frame.stack.push(index_value(recv, idx)?);
                        }
                        Op::StoreIndex => {
                            let idx = frame.stack.pop().expect("vm stack underflow");
                            let recv = frame.stack.pop().expect("vm stack underflow");
                            let value = frame.stack.pop().expect("vm stack underflow");
                            store_index_value(recv, idx, value)?;
                        }
                        Op::StoreAttr(i) => {
                            let recv = frame.stack.pop().expect("vm stack underflow");
                            let value = frame.stack.pop().expect("vm stack underflow");
                            store_attr_value(recv, &module.names[i as usize], value)?;
                        }
                        Op::Unpack(n) => {
                            let v = frame.stack.pop().expect("vm stack underflow");
                            let items = unpack_values(v, n as usize)?;
                            // Reverse so the first target's value is on top.
                            frame.stack.extend(items.into_iter().rev());
                        }
                        Op::GetIter => {
                            let v = frame.stack.pop().expect("vm stack underflow");
                            let items = items_of(v)?;
                            frame.iters.push(IterFrame { items, idx: 0 });
                        }
                        Op::ForIter { slot, exit } => {
                            let iter = frame.iters.last_mut().expect("iter frame installed");
                            if iter.idx < iter.items.len() {
                                let item = iter.items[iter.idx].clone();
                                iter.idx += 1;
                                frame.slots[slot as usize] = Some(item);
                            } else {
                                frame.iters.pop();
                                pc = exit as usize;
                            }
                        }
                        Op::Fail(i) => return Err(rt(module.names[i as usize].clone())),
                        Op::LoadAttr(_)
                        | Op::CallLog(_)
                        | Op::CallBuiltin(_)
                        | Op::CallMethod(_)
                        | Op::MainLoop(_)
                        | Op::SkipBlock(_) => break 'tight Some(op),
                    }
                }
                None
            };
            // Deferred tier: the frame borrow is released; these ops go
            // back through the `vm_pop`/`vm_push` helpers because the
            // `&mut self` call in the middle forbids holding it.
            match deferred {
                None => break,
                Some(Op::LoadAttr(i)) => {
                    let recv = self.vm_pop();
                    let v = self.read_attr(recv, &module.names[i as usize])?;
                    self.vm_push(v);
                }
                Some(Op::CallLog(argc)) => {
                    let vals = self.vm_pop_n(argc as usize);
                    let r = self.log_values(vals)?;
                    self.vm_push(r);
                }
                Some(Op::CallBuiltin(ci)) => {
                    let spec = &module.calls[ci as usize];
                    let vals = self.vm_pop_n(spec.args.len());
                    let args = build_call_args(module, ci, vals);
                    let name = &module.names[spec.name as usize];
                    let r = self.call_builtin(name, args)?;
                    self.vm_push(r);
                }
                Some(Op::CallMethod(ci)) => {
                    let spec = &module.calls[ci as usize];
                    let vals = self.vm_pop_n(spec.args.len());
                    let recv = self.vm_pop();
                    let args = build_call_args(module, ci, vals);
                    let name = &module.names[spec.name as usize];
                    let r = self.call_method(recv, name, args)?;
                    self.vm_push(r);
                }
                Some(Op::MainLoop(li)) => {
                    let info = module.loops[li as usize];
                    let iterable = self.vm_pop();
                    let items = items_of(iterable)?;
                    self.exec_main_loop_impl(
                        &LoopBody::Vm {
                            var_slot: info.var_slot,
                            start: info.body_start,
                            end: info.body_end,
                        },
                        items,
                    )?;
                    pc = info.body_end;
                }
                Some(Op::SkipBlock(bi)) => {
                    let info = &module.blocks[bi as usize];
                    skipblock::exec_skipblock_vm(self, &info.id, info.body_start, info.body_end)?;
                    pc = info.body_end;
                }
                Some(op) => unreachable!("pure op {op:?} cannot defer"),
            }
        }
        Ok(())
    }
}

/// The unbound-slot error, shared by `LoadSlot` and the fused binary
/// ops so every executor path reports the identical message.
#[cold]
fn unbound(module: &Module, slot: u16) -> FlorError {
    let name = &module.slot_names[slot as usize];
    rt(format!("name {name:?} is not defined"))
}

/// Rebuilds the positional/keyword split for call site `ci` from the
/// popped argument values (source evaluation order is the stack order).
fn build_call_args(module: &Module, ci: u16, vals: Vec<Value>) -> CallArgs {
    let spec = &module.calls[ci as usize];
    let mut pos = Vec::with_capacity(vals.len());
    let mut kw = Vec::new();
    for (v, kw_name) in vals.into_iter().zip(&spec.args) {
        match kw_name {
            Some(n) => kw.push((module.names[*n as usize].clone(), v)),
            None => pos.push(v),
        }
    }
    CallArgs::new(pos, kw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flor_lang::parse;

    fn run_both(src: &str) -> (Interp, Interp) {
        let prog = parse(src).expect("parse");
        let mut tree = Interp::new(Mode::Vanilla);
        tree.run(&prog).expect("tree run");
        let module = compile_program(&prog).expect("compile");
        let mut vm = Interp::new(Mode::Vanilla);
        vm.run_vm(&module).expect("vm run");
        (tree, vm)
    }

    fn assert_same_outcome(src: &str) {
        let prog = parse(src).expect("parse");
        let mut tree = Interp::new(Mode::Vanilla);
        let tree_res = tree.run(&prog);
        let module = compile_program(&prog).expect("compile");
        let mut vm = Interp::new(Mode::Vanilla);
        let vm_res = vm.run_vm(&module);
        match (&tree_res, &vm_res) {
            (Ok(()), Ok(())) => assert_envs_equal(&tree, &vm),
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string(), "error parity"),
            other => panic!("outcome mismatch for {src:?}: {other:?}"),
        }
        assert_eq!(tree.log.entries(), vm.log.entries(), "log parity");
    }

    fn assert_envs_equal(a: &Interp, b: &Interp) {
        let mut na: Vec<&str> = a.env.names().collect();
        let mut nb: Vec<&str> = b.env.names().collect();
        na.sort_unstable();
        nb.sort_unstable();
        assert_eq!(na, nb, "bound names");
        for n in na {
            assert_eq!(
                a.env.get(n).unwrap().display(),
                b.env.get(n).unwrap().display(),
                "value of {n:?}"
            );
        }
    }

    #[test]
    fn arithmetic_and_slots_match_tree_walker() {
        let (tree, vm) =
            run_both("x = 3\ny = x * 2 + 1\nz = y / 2\nw = y % 4\ns = \"a\" + \"b\"\nq = -x\n");
        assert_envs_equal(&tree, &vm);
        assert_eq!(vm.env.get("y").unwrap().as_i64().unwrap(), 7);
        assert_eq!(vm.env.get("s").unwrap().display(), "ab");
    }

    #[test]
    fn control_flow_and_loops_match() {
        assert_same_outcome(
            "acc = 0\nfor i in range(10):\n    if i % 2 == 0:\n        acc = acc + i\n    else:\n        acc = acc - 1\nlog(\"acc\", acc)\n",
        );
    }

    #[test]
    fn short_circuit_keeps_deciding_value() {
        assert_same_outcome(
            "a = 0 and boom\nb = 1 or boom\nc = 0 or 7\nd = 2 and 3\nlog(\"v\", a, b, c, d)\n",
        );
    }

    #[test]
    fn lists_tuples_unpack_subscript_match() {
        assert_same_outcome(
            "xs = [1, 2, 3]\nt = (4, 5)\na, b = t\nxs[0] = b\nxs[-1] = a\nfirst = xs[0]\nlog(\"xs\", xs, first)\n",
        );
    }

    #[test]
    fn log_key_and_joining_match() {
        assert_same_outcome("log(3, 1.5, \"x\", True)\nlog(\"k\")\n");
    }

    #[test]
    fn errors_match_tree_walker() {
        for src in [
            "x = undefined_name\n",
            "x = 1 / 0\n",
            "x = 1 % 0\n",
            "x = [1][5]\n",
            "x = (1, 2)[9]\n",
            "x = -\"s\"\n",
            "a, b = 3\n",
            "a, b = (1, 2, 3)\n",
            "x = \"s\"[0]\n",
            "log()\n",
            "x = nofunc(1)\n",
            "for i in 3:\n    x = 1\n",
        ] {
            assert_same_outcome(src);
        }
    }

    #[test]
    fn flor_sentinel_and_builtin_calls_match() {
        assert_same_outcome(
            "m = flor\nflor = 5\nn = flor\nxs = flor.partition(range(3))\nlog(\"m\", m, n, xs)\n",
        );
    }

    #[test]
    fn ctor_seed_sequence_matches_tree_walker() {
        // Constructors without seed= draw from the shared deterministic
        // counter; both executors must consume it in the same order.
        assert_same_outcome(
            "d = synth_data(n=8, dim=2, classes=2)\nnet = mlp(input=2, hidden=3, classes=2, depth=1)\nw = net.weight_norm()\nlog(\"w\", w)\n",
        );
    }

    #[test]
    fn training_loop_matches_tree_walker() {
        assert_same_outcome(
            "data = synth_data(n=24, dim=4, classes=2, seed=3)\nloader = dataloader(data, batch_size=8, seed=3)\nnet = mlp(input=4, hidden=6, classes=2, depth=1, seed=3)\noptimizer = sgd(net, lr=0.1)\ncriterion = cross_entropy()\navg = meter()\nfor epoch in range(3):\n    avg.reset()\n    for batch in loader.epoch():\n        optimizer.zero_grad()\n        preds = net.forward(batch)\n        loss = criterion.forward(preds, batch)\n        grad = criterion.backward()\n        net.backward(grad)\n        optimizer.step()\n        avg.update(loss)\n    log(\"loss\", avg.mean())\nlog(\"final\", net.weight_norm())\n",
        );
    }

    #[test]
    fn main_loop_vanilla_matches_tree_walker() {
        assert_same_outcome(
            "acc = 0\nfor epoch in flor.partition(range(6)):\n    acc = acc + epoch\n    log(\"acc\", acc)\nlog(\"done\", acc)\n",
        );
    }

    #[test]
    fn record_mode_is_rejected() {
        let prog = parse("x = 1\n").unwrap();
        let module = compile_program(&prog).unwrap();
        let dir = std::env::temp_dir().join(format!(
            "flor-vm-rec-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(flor_chkpt::CheckpointStore::open(dir).unwrap());
        let mut interp = Interp::new(Mode::Record(Box::new(crate::interp::RecordCtx {
            store: store.clone(),
            materializer: flor_chkpt::Materializer::new(
                store,
                flor_chkpt::Strategy::ForkBatched,
                2,
            ),
            controller: crate::adaptive::AdaptiveController::default(),
            static_changesets: Default::default(),
            lean: true,
            main_iter: None,
            standalone_seq: Default::default(),
            blocks_this_iter: Default::default(),
            profile: crate::profile::ProfileBuilder::new(),
        })));
        let err = interp.run_vm(&module).unwrap_err();
        assert!(err.to_string().contains("record"), "got: {err}");
    }

    #[test]
    fn module_cache_compiles_once_per_version() {
        let prog = parse("x = 1\ny = x + 1\n").unwrap();
        let cache = ModuleCache::new();
        let before = flor_obs::metrics::counter("vm.compile").get();
        let a = cache.get_or_compile("v1", &prog).unwrap();
        let b = cache.get_or_compile("v1", &prog).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second fetch is the cached module");
        assert_eq!(cache.len(), 1);
        let after = flor_obs::metrics::counter("vm.compile").get();
        assert_eq!(after - before, 1, "one compile for two fetches");
    }
}
